//! # ShiftEx — shift-aware mixture-of-experts middleware for federated learning
//!
//! A from-scratch Rust reproduction of *"Shift Happens: Mixture of Experts
//! based Continual Adaptation in Federated Learning"* (MIDDLEWARE 2025).
//!
//! Streaming federated learning deployments face covariate and label shift:
//! party data distributions change between stream windows, and a single
//! global model degrades. ShiftEx detects both kinds of shift from privacy-
//! preserving aggregate statistics (MMD over penultimate-layer embeddings,
//! JSD over label histograms), clusters shifted parties by latent profile,
//! reuses specialised experts through a latent memory, spawns new experts
//! for unseen regimes, and consolidates redundant ones.
//!
//! This crate is a facade that re-exports the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `shiftex-core` | the ShiftEx framework (Algorithms 1–2, Eq. 2) |
//! | [`fl`] | `shiftex-fl` | federated runtime: parties, rounds, FedAvg/FedProx |
//! | [`flips`] | `shiftex-flips` | FLIPS label-balanced participant selection |
//! | [`baselines`] | `shiftex-baselines` | FedProx, OORT, Fielding, FedDrift |
//! | [`detect`] | `shiftex-detect` | MMD / JSD detectors + threshold calibration |
//! | [`cluster`] | `shiftex-cluster` | k-means + Davies–Bouldin model selection |
//! | [`data`] | `shiftex-data` | synthetic shifted-stream datasets |
//! | [`stream`] | `shiftex-stream` | tumbling/sliding windows, shift schedules |
//! | [`nn`] | `shiftex-nn` | neural-network substrate with embeddings |
//! | [`tensor`] | `shiftex-tensor` | matrix math + seedable distributions |
//! | [`tee`] | `shiftex-tee` | simulated trusted execution environment |
//! | [`experiments`] | `shiftex-experiments` | the paper's evaluation harness |
//!
//! # Quickstart
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use shiftex::core::{ShiftEx, ShiftExConfig};
//! use shiftex::data::{Corruption, ImageShape, PrototypeGenerator, Regime};
//! use shiftex::fl::{Party, PartyId};
//! use shiftex::nn::ArchSpec;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let gen = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 4, &mut rng);
//!
//! // A small federation on the clean distribution.
//! let mut parties: Vec<Party> = (0..8)
//!     .map(|i| Party::new(PartyId(i),
//!                         gen.generate_uniform(40, &mut rng),
//!                         gen.generate_uniform(20, &mut rng)))
//!     .collect();
//!
//! // Bootstrap a global model, then let fog arrive for half the parties.
//! let spec = ArchSpec::mlp("quickstart", 64, &[24, 12], 4);
//! let mut shiftex = ShiftEx::new(ShiftExConfig::default(), spec, &mut rng);
//! shiftex.bootstrap(&parties, 3, &mut rng);
//!
//! let fog = Regime::corrupted(Corruption::Fog, 5);
//! for (i, p) in parties.iter_mut().enumerate() {
//!     let (train, test) = if i < 4 {
//!         (gen.generate_with_regime(40, &fog, &mut rng),
//!          gen.generate_with_regime(20, &fog, &mut rng))
//!     } else {
//!         (gen.generate_uniform(40, &mut rng), gen.generate_uniform(20, &mut rng))
//!     };
//!     p.advance_window(train, test);
//! }
//! let report = shiftex.process_window(&parties, &mut rng);
//! assert!(report.cov_shifted.len() >= 2, "the fog cohort is detected");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use shiftex_baselines as baselines;
pub use shiftex_cluster as cluster;
pub use shiftex_core as core;
pub use shiftex_data as data;
pub use shiftex_detect as detect;
pub use shiftex_experiments as experiments;
pub use shiftex_fl as fl;
pub use shiftex_flips as flips;
pub use shiftex_nn as nn;
pub use shiftex_stream as stream;
pub use shiftex_tee as tee;
pub use shiftex_tensor as tensor;
