//! Offline stand-in for `serde_json`.
//!
//! Implements the API surface this workspace uses — [`to_vec`], [`to_string`],
//! [`from_slice`], [`from_str`], [`Error`] — over the vendored `serde` crate's
//! [`Value`] tree with a recursive-descent JSON parser and a standard emitter.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error from JSON serialisation or deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to a JSON string.
///
/// # Errors
///
/// Never fails for this workspace's types; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialises a value to a JSON byte vector.
///
/// # Errors
///
/// Never fails for this workspace's types; the `Result` mirrors serde_json.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialises a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse(input)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserialises a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(input).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn emit(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{}` on f64 is the shortest round-trip representation; add
                // `.0` so integral floats re-parse as floats (serde_json's
                // behaviour does not matter here — our reader coerces).
                let s = n.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(k, out);
                out.push(':');
                emit(v, out);
            }
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar: validate at most the next
                    // four bytes, not the whole remaining input (which would
                    // make string parsing quadratic).
                    let rest = &self.bytes[self.pos..];
                    let window = &rest[..rest.len().min(4)];
                    let c = match std::str::from_utf8(window) {
                        Ok(text) => text.chars().next().unwrap(),
                        // A trailing scalar can be cut off by the 4-byte
                        // window; the valid prefix still holds ≥ 1 scalar
                        // unless the leading byte itself is invalid.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(e) => {
                            return Err(Error::new(format!("invalid UTF-8 in string: {e}")));
                        }
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
    }

    #[test]
    fn vec_roundtrips() {
        let v = vec![0.25f32, 1.0, -3.5];
        let text = to_string(&v).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = "line\n\"quoted\"\\backslash".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Vec<f32>>("not json").is_err());
        assert!(from_str::<Vec<f32>>("[1,").is_err());
        assert!(from_slice::<bool>(b"tru").is_err());
    }

    #[test]
    fn trailing_garbage_errors() {
        assert!(from_str::<bool>("true false").is_err());
    }
}
