//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! non-poisoning API, implemented over `std::sync`. A poisoned std lock
//! (panicked holder) is treated as still usable, matching parking_lot's
//! semantics of never poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(1u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
    }
}
