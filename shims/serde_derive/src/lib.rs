//! Offline stand-in for `serde_derive`.
//!
//! Emits `Serialize` / `Deserialize` impls over the vendored `serde` crate's
//! `Value` data model. The parser is hand-rolled over `proc_macro` token
//! trees (no `syn`/`quote` in the offline environment) and supports exactly
//! the shapes this workspace derives on: non-generic structs with named
//! fields, tuple structs, and enums with unit / tuple / struct variants —
//! no `#[serde(...)]` attributes.
//!
//! Wire shapes match real serde's defaults: structs are JSON objects,
//! newtypes are transparent, enums are externally tagged (unit variants as
//! bare strings).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        fields: Vec<String>,
    },
    TupleStruct {
        arity: usize,
    },
    UnitStruct,
    Enum {
        variants: Vec<(String, VariantShape)>,
    },
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&str, &Shape) -> String) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => gen(&name, &shape)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos)?;
    skip_visibility(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok((name, Shape::NamedStruct { fields }))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream())?;
                Ok((name, Shape::TupleStruct { arity }))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok((name, Shape::Enum { variants }))
            }
            other => Err(format!("expected enum body for `{name}`, got {other:?}")),
        },
        other => Err(format!("cannot derive serde impls for `{other}` items")),
    }
}

/// Skips attributes (doc comments, derives, …), rejecting `#[serde(...)]`:
/// real serde would change the wire format for those, so silently ignoring
/// them would let code compile with a schema the author didn't declare.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> Result<(), String> {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1; // '#'
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            if g.delimiter() == Delimiter::Bracket {
                if matches!(g.stream().into_iter().next(),
                    Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                {
                    return Err(
                        "the offline serde shim does not support #[serde(...)] attributes; \
                         remove the attribute or extend shims/serde_derive"
                            .to_string(),
                    );
                }
                *pos += 1;
            }
        }
    }
    Ok(())
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Advances past a type (or any token run) until a comma at angle-bracket
/// depth zero, leaving `pos` on the comma (or at the end).
fn skip_until_toplevel_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    let mut prev_minus = false;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' if !prev_minus => angle_depth -= 1,
                _ => {}
            }
            prev_minus = p.as_char() == '-';
        } else {
            prev_minus = false;
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let field = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
        }
        skip_until_toplevel_comma(&tokens, &mut pos);
        pos += 1; // the comma (or past the end)
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut arity = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        arity += 1;
        skip_until_toplevel_comma(&tokens, &mut pos);
        pos += 1;
    }
    Ok(arity)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // Skip a `= discriminant` and trailing comma.
        skip_until_toplevel_comma(&tokens, &mut pos);
        pos += 1;
        variants.push((name, shape));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct { arity: 0 } | Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(__f0))])"
                    ),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Seq(::std::vec![{}]))])",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Map(::std::vec![{}]))])",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { fields } => format!(
            "let __map = __value.as_map().ok_or_else(|| \
             ::serde::DeError::expected(\"object\", __value))?; \
             ::std::result::Result::Ok({name} {{ {} }})",
            fields
                .iter()
                .map(|f| format!("{f}: {}", named_field_expr("__map", f)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Shape::TupleStruct { arity: 0 } => {
            format!("::std::result::Result::Ok({name}())")
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::TupleStruct { arity: 1 } => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
        ),
        Shape::TupleStruct { arity } => format!(
            "let __items = __value.as_seq().ok_or_else(|| \
             ::serde::DeError::expected(\"array\", __value))?; \
             if __items.len() != {arity} {{ \
             return ::std::result::Result::Err(::serde::DeError::custom(\
             ::std::format!(\"expected {arity} elements for {name}, got {{}}\", __items.len()))); }} \
             ::std::result::Result::Ok({name}({}))",
            (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Shape::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, vs)| matches!(vs, VariantShape::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| {
                    let build = match vs {
                        VariantShape::Unit => format!("::std::result::Result::Ok({name}::{v})"),
                        VariantShape::Tuple(1) => format!(
                            "::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(__inner)?))"
                        ),
                        VariantShape::Tuple(arity) => format!(
                            "{{ let __items = __inner.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\"array\", __inner))?; \
                             if __items.len() != {arity} {{ \
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"wrong tuple arity for variant\")); }} \
                             ::std::result::Result::Ok({name}::{v}({})) }}",
                            (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        VariantShape::Named(fields) => format!(
                            "{{ let __map = __inner.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", __inner))?; \
                             ::std::result::Result::Ok({name}::{v} {{ {} }}) }}",
                            fields
                                .iter()
                                .map(|f| format!("{f}: {}", named_field_expr("__map", f)))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    };
                    format!("{v:?} => {build}")
                })
                .collect();
            format!(
                "match __value {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {unit}{unit_sep} \
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))) }}, \
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__tag, __inner) = &__entries[0]; \
                 match __tag.as_str() {{ \
                 {tagged}, \
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))) }} }}, \
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"enum variant\", __other)) }}",
                unit = unit_arms.join(", "),
                unit_sep = if unit_arms.is_empty() { "" } else { "," },
                tagged = tagged_arms.join(", "),
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}

/// Expression deserialising one named field, treating a missing key as
/// `Value::Null` so `Option` fields default to `None`.
fn named_field_expr(map: &str, field: &str) -> String {
    format!(
        "match {map}.iter().find(|(__k, _)| __k == {field:?}) {{ \
         ::std::option::Option::Some((_, __v)) => ::serde::Deserialize::from_value(__v)?, \
         ::std::option::Option::None => \
         ::serde::Deserialize::from_value(&::serde::Value::Null).map_err(|_| \
         ::serde::DeError::custom(::std::concat!(\"missing field `\", {field:?}, \"`\")))?, \
         }}"
    )
}
