//! Offline stand-in for `crossbeam`: the [`thread::scope`] and
//! [`channel::unbounded`] APIs this workspace uses, implemented over
//! `std::thread::scope` and `std::sync::mpsc`.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with crossbeam's closure signature (`|scope| ...` where
    //! each `spawn` closure also receives the scope).

    /// Result of a joined scoped thread; `Err` carries the panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle passed to [`scope`] closures and to every spawned
    /// closure, allowing nested spawns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope again so it
        /// can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning borrowing threads. All spawned threads
    /// are joined when the closure returns.
    ///
    /// # Errors
    ///
    /// Mirrors crossbeam's signature; with this std-backed implementation an
    /// unjoined child panic propagates as a panic rather than an `Err`, which
    /// is indistinguishable for callers that `.expect()` the result.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Multi-producer channels backed by `std::sync::mpsc`.

    /// Sending half of an unbounded channel.
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// Receiving half of an unbounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;
    /// Error returned when the receiving half has disconnected.
    pub type SendError<T> = std::sync::mpsc::SendError<T>;

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
