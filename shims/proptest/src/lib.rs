//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! `name in strategy` arguments, range strategies over primitive numerics,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert!` family. Cases are generated deterministically (seeded per
//! case index) and there is **no shrinking** — a failing case panics with the
//! generated inputs visible in the assertion message.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps this deterministic suite
        // fast while still exercising a broad input spread.
        Self { cases: 64 }
    }
}

/// Deterministic RNG used to generate case inputs.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the `case`-th input of the property named `property`. The
    /// property name is hashed into the seed so distinct properties draw
    /// decorrelated input streams (still fully deterministic per property).
    pub fn for_case(case: u32, property: &str) -> Self {
        // FNV-1a over the property name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in property.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            inner: StdRng::seed_from_u64(h ^ u64::from(case)),
        }
    }
}

/// A generator of typed test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.inner.random_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.inner.random_range(*self.start()..=*self.end())
    }
}

/// Strategy over a type's full value domain (shim: `bool` only, which is
/// all this workspace draws through `any`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates arbitrary values of `T`, mirroring `proptest::prelude::any`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.inner.random_range(0u8..2) == 1
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `None` or `Some(inner)` (50/50 in the shim).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner`'s values in `Option`, mirroring `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.inner.random_range(0u8..2) == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *range.start(),
                hi: *range.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of inputs drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.inner.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a property over generated inputs (panics on failure; no
/// shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__case, stringify!($name));
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, f in -1.0f32..1.0, k in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn vec_sizes_respect_bounds(
            exact in crate::collection::vec(0u64..5, 7),
            ranged in crate::collection::vec(0.0f32..1.0, 1..4),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((1..4).contains(&ranged.len()));
        }
    }
}
