//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! `benchmark_group`/`bench_function`/`bench_with_input`, [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros — with
//! a simple median-of-samples wall-clock harness instead of criterion's full
//! statistical machinery. Results print as `name ... median time/iter` lines,
//! enough to track BENCH_*.json trajectories until the real crate is
//! available. Benches must set `harness = false`, exactly as with real
//! criterion.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Ignored by the shim; accepted for API compatibility.
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Converts `self` into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on a fresh `setup()` value per iteration; only the
    /// `routine` portion is measured.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

/// The bench-name filter: the first non-flag CLI argument, matching real
/// criterion's substring filtering (`cargo bench -- mmd` runs only labels
/// containing "mmd").
fn name_filter() -> Option<&'static str> {
    static FILTER: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

/// Optional sample-count cap from `SHIFTEX_BENCH_SAMPLES`, the quick-mode
/// hook the bench-runner's CI smoke invocation uses: a value of `2` turns a
/// full statistical run into a does-it-still-run check while keeping every
/// label on stdout for the JSON report.
fn sample_cap() -> Option<usize> {
    static CAP: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SHIFTEX_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(filter) = name_filter() {
        if !label.contains(filter) {
            return;
        }
    }
    let sample_size = sample_cap().map_or(sample_size, |cap| sample_size.min(cap));
    // Calibrate the per-sample iteration count so one sample takes ~2 ms.
    let mut calibrate = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibrate);
    let per_iter = calibrate.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<Duration> = (0..sample_size)
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            bencher.elapsed / iters as u32
        })
        .collect();
    samples.sort();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("{label:<50} median {median:>12?}  (range {lo:?} .. {hi:?}, {iters} iters/sample)");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
