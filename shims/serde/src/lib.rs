//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this workspace vendors a
//! self-serialisation layer with serde's public spelling: `Serialize` /
//! `Deserialize` traits plus same-named derive macros. Instead of serde's
//! visitor architecture, types convert to and from a JSON-shaped [`Value`]
//! tree; `serde_json` (also vendored) renders that tree to text and parses it
//! back. The derive macros emit externally-tagged enums and transparent
//! newtypes, matching the wire shapes real serde would produce for the types
//! in this workspace (which use no `#[serde(...)]` attributes).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped data model: the intermediate form between typed values and
/// wire text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Standard "wrong shape" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::custom(format!("expected {what}, got {}", kind_of(got)))
    }
}

fn kind_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::I64(_) | Value::U64(_) => "integer",
        Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "array",
        Value::Map(_) => "object",
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

pub mod de {
    //! Deserialisation helpers, mirroring serde's module layout.

    pub use super::DeError as Error;

    /// Marker for types deserialisable without borrowing from the input —
    /// with this shim's owned data model, every [`Deserialize`](super::Deserialize)
    /// type qualifies.
    pub trait DeserializeOwned: super::Deserialize {}

    impl<T: super::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialisation helpers, mirroring serde's module layout.

    pub use super::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match *value {
                    Value::I64(n) => n as i128,
                    Value::U64(n) => n as i128,
                    Value::F64(n) if n.fract() == 0.0 => n as i128,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 { Value::I64(wide as i64) } else { Value::U64(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u128 = match *value {
                    Value::I64(n) if n >= 0 => n as u128,
                    Value::U64(n) => n as u128,
                    Value::F64(n) if n.fract() == 0.0 && n >= 0.0 => n as u128,
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::F64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    ref other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_seq().ok_or_else(|| DeError::expected("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, got {} elements", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Map keys must render as JSON object keys (strings).
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the string does not parse as `Self`.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::custom(format!("bad integer key {key:?}")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrips_through_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::I64(3)), Ok(Some(3)));
    }

    #[test]
    fn integers_coerce_within_range() {
        assert_eq!(u8::from_value(&Value::I64(200)), Ok(200));
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u32, 2.5f64).to_value();
        assert_eq!(v, Value::Seq(vec![Value::I64(1), Value::F64(2.5)]));
        assert_eq!(<(u32, f64)>::from_value(&v), Ok((1u32, 2.5f64)));
    }
}
