//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, deterministic implementation of the parts of `rand` it uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`SeedableRng`],
//! and the [`Rng`] extension methods `random`, `random_range`, `random_bool`
//! and `fill`. Swap in the real crate by deleting this shim and pointing the
//! workspace manifests back at crates.io.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, mirroring rand 0.9's `Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a primitive type uniformly over its full range
    /// (for floats: uniform in `[0, 1)`).
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::from_rng(self) < p
    }

    /// Fills `dest` with sampled values.
    fn fill<T: FromRng>(&mut self, dest: &mut [T])
    where
        Self: Sized,
    {
        for slot in dest {
            *slot = T::from_rng(self);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable directly from raw RNG output.
pub trait FromRng {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for usize {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform-over-range sampler.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = widening_reduce(rng.next_u64(), span);
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let draw = widening_reduce(rng.next_u64(), span);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform `u64` onto `[0, span)` via widening multiply (Lemire-style
/// reduction without the rejection loop; bias is < 2^-64 * span, negligible
/// for simulation workloads).
fn widening_reduce(word: u64, span: u128) -> u128 {
    ((word as u128) * span) >> 64
}

macro_rules! impl_uniform_float {
    ($($t:ty : $bits:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let unit = <$t>::from_rng(rng);
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                // Closed unit interval: divide by 2^bits - 1 so `unit` can
                // reach exactly 1.0 and the documented [lo, hi] contract
                // (matching real rand's inclusive float ranges) holds.
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (((1u64 << $bits) - 1) as $t);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32: 24, f64: 53);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ seeded with
    /// SplitMix64, matching the statistical quality the simulations need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(2u64..=5);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should spread across [0, 1)");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
