//! Offline stand-in for the `bytes` crate: [`Bytes`], a cheaply cloneable,
//! immutable, contiguous byte container backed by `Arc<[u8]>`.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::from(bytes),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: Arc::from(data),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Self::from(data.into_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"hi").to_vec(), b"hi".to_vec());
    }
}
