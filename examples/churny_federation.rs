//! Churny federation: the same job run under the paper's clean synchronous
//! protocol and under a deployment-grade scenario — parties joining late,
//! leaving for good, dropping out mid-round, straggling past the deadline —
//! with staleness-aware buffered aggregation absorbing the chaos.
//!
//! ```text
//! cargo run --release --example churny_federation
//! ```

use rand::{rngs::StdRng, SeedableRng};
use shiftex::data::{ImageShape, PrototypeGenerator};
use shiftex::fl::{
    AsyncSpec, ChurnSpec, FederatedJob, LatePolicy, Party, PartyId, RoundConfig, ScenarioEngine,
    ScenarioSpec, StragglerSpec, UniformSelector,
};
use shiftex::nn::{ArchSpec, Sequential};

const ROUNDS: usize = 12;

fn population(rng: &mut StdRng) -> Vec<Party> {
    let gen = PrototypeGenerator::new(ImageShape::new(1, 6, 6), 4, rng);
    (0..20)
        .map(|i| {
            Party::new(
                PartyId(i),
                gen.generate_uniform(24, rng),
                gen.generate_uniform(12, rng),
            )
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let spec = ArchSpec::mlp("churny", 36, &[16], 4);
    let init = Sequential::build(&spec, &mut rng).params_flat();
    let cfg = RoundConfig {
        participants_per_round: 10,
        ..RoundConfig::default()
    };

    // 1. The paper's protocol: synchronous, everyone always available.
    let mut job = FederatedJob::new(spec.clone(), population(&mut rng), cfg);
    let ids: Vec<PartyId> = job.party_ids();
    let mut engine = ScenarioEngine::new(ScenarioSpec::sync(1), &ids);
    let mut rng_run = StdRng::seed_from_u64(2);
    let clean = job.run_rounds_scenario(
        init.clone(),
        ROUNDS,
        &mut UniformSelector,
        &mut engine,
        &mut rng_run,
    );
    println!(
        "clean sync     : accuracy {:.1}%, {} updates delivered, 0 lost",
        clean.accuracy_per_round.last().unwrap() * 100.0,
        clean.totals.delivered
    );

    // 2. Same job under churn + stragglers + async buffered aggregation.
    let scenario = ScenarioSpec::sync(1)
        .with_churn(ChurnSpec {
            join_fraction: 0.25,  // a quarter of the fleet arrives late…
            join_ramp_rounds: 4,  // …during the first four rounds
            leave_fraction: 0.15, // some leave for good
            leave_after: 6,
            horizon: ROUNDS,
            dropout: 0.15, // and anyone can crash mid-round
        })
        .with_stragglers(StragglerSpec::uniform(0.8, 1.0, LatePolicy::Defer))
        .with_async(AsyncSpec {
            min_buffer: 4,
            staleness_alpha: 0.5,
            max_staleness: 3,
            server_lr: 1.0,
        });
    let mut job = FederatedJob::new(spec, population(&mut rng), cfg);
    let mut engine = ScenarioEngine::new(scenario, &ids);
    let mut rng_run = StdRng::seed_from_u64(2);
    let churny = job.run_rounds_scenario(
        init,
        ROUNDS,
        &mut UniformSelector,
        &mut engine,
        &mut rng_run,
    );

    let t = churny.totals;
    println!(
        "churny async   : accuracy {:.1}%, {} delivered / {} dropped mid-round / {} deferred / {} stale",
        churny.accuracy_per_round.last().unwrap() * 100.0,
        t.delivered,
        t.dropped_churn,
        t.deferred,
        t.stale_dropped
    );
    let comm = job.ledger().totals();
    println!(
        "comm ledger    : {} ok messages, {} aborted uploads ({} B wasted)",
        comm.messages, comm.aborted_messages, comm.aborted_up_bytes
    );
    for row in churny.participation.iter().take(4) {
        println!(
            "  round {:>2}: live {:>2}, selected {}, delivered {}, lost {}",
            row.round,
            row.live,
            row.delta.selected,
            row.delta.delivered,
            row.delta.dropped_churn + row.delta.dropped_late
        );
    }
    println!("  …");
}
