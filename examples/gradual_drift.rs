//! Gradual drift (§2.1 of the paper): "a sequence of small shifts that
//! accumulate and degrade model performance over time … requiring sustained
//! monitoring". Per-window thresholding misses each small step; the CUSUM
//! [`DriftMonitor`](shiftex::detect::DriftMonitor) accumulates the
//! sub-threshold MMD scores and raises the alarm, at which point the
//! federation re-routes the drifted parties to a specialist expert.
//!
//! ```text
//! cargo run --release --example gradual_drift
//! ```

use rand::{rngs::StdRng, SeedableRng};
use shiftex::core::{ShiftEx, ShiftExConfig};
use shiftex::data::{Corruption, ImageShape, PrototypeGenerator, Regime, RegimeId};
use shiftex::detect::DriftMonitor;
use shiftex::fl::{Party, PartyId};
use shiftex::nn::ArchSpec;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let gen = PrototypeGenerator::new(ImageShape::new(3, 8, 8), 8, &mut rng);
    let spec = ArchSpec::resnet18_lite(shiftex::nn::InputShape { c: 3, h: 8, w: 8 }, 8, 24);

    let n = 10;
    let drifting: Vec<usize> = (0..n / 2).collect(); // first half drifts
    let mut parties: Vec<Party> = (0..n)
        .map(|i| {
            Party::new(
                PartyId(i),
                gen.generate_uniform(40, &mut rng),
                gen.generate_uniform(20, &mut rng),
            )
        })
        .collect();

    let cfg = ShiftExConfig {
        participants_per_round: 6,
        ..ShiftExConfig::default()
    };
    let mut shiftex = ShiftEx::new(cfg, spec, &mut rng);
    shiftex.bootstrap(&parties, 12, &mut rng);
    println!(
        "W0 clear: accuracy {:.1}%\n",
        shiftex.evaluate(&parties) * 100.0
    );

    // Fog rolls in *gradually*: severity ramps 1 → 5 over five windows.
    // The drift monitor watches the drifting parties' mean MMD per window.
    let mut monitor: Option<DriftMonitor> = None;
    for (window, severity) in (1u8..=5).enumerate() {
        let regime =
            Regime::corrupted(Corruption::Fog, severity).with_id(RegimeId(severity as u32));
        for (i, p) in parties.iter_mut().enumerate() {
            let r = if drifting.contains(&i) {
                regime.clone()
            } else {
                Regime::clear()
            };
            p.advance_window(
                gen.generate_with_regime(40, &r, &mut rng),
                gen.generate_with_regime(20, &r, &mut rng),
            );
        }
        let report = shiftex.process_window(&parties, &mut rng);
        // Initialise the CUSUM reference at the calibrated noise level.
        let mon = monitor.get_or_insert_with(|| {
            DriftMonitor::new(report.delta_cov * 0.3, report.delta_cov * 2.0)
        });
        let mean_mmd: f32 = {
            let scores: Vec<f32> = shiftex
                .party_stats()
                .filter(|s| drifting.contains(&s.party.0))
                .map(|s| s.mmd)
                .collect();
            scores.iter().sum::<f32>() / scores.len().max(1) as f32
        };
        let alarm = mon.observe(mean_mmd.max(0.0));
        for _ in 0..6 {
            ShiftEx::train_round(&mut shiftex, &parties, &mut rng);
        }
        println!(
            "W{} fog severity {severity}: mean MMD {:.4} (δ_cov {:.4}) | window detector: {:>2} \
             parties | CUSUM pressure {:.3}{} | acc {:.1}% | {} experts",
            window + 1,
            mean_mmd,
            report.delta_cov,
            report.cov_shifted.len(),
            mon.pressure(),
            if alarm { "  << DRIFT ALARM" } else { "" },
            shiftex.evaluate(&parties) * 100.0,
            shiftex.num_experts()
        );
    }

    println!(
        "\nEarly windows sit below the per-window threshold — only the CUSUM\n\
         accumulator sees the slow build-up; once severity grows, the window\n\
         detector fires too and the drifting cohort gets its own expert."
    );
}
