//! Satellite land-use monitoring (the paper's FMoW motivation): a federation
//! of ground stations classifies land use from satellite imagery while
//! seasonal weather regimes sweep across regions — and *recur*, letting
//! ShiftEx's latent memory reuse experts instead of retraining.
//!
//! ```text
//! cargo run --release --example satellite_monitoring
//! ```

use rand::{rngs::StdRng, SeedableRng};
use shiftex::core::{ShiftEx, ShiftExConfig};
use shiftex::data::{Corruption, ImageShape, PrototypeGenerator, Regime, RegimeId};
use shiftex::fl::{Party, PartyId};
use shiftex::nn::ArchSpec;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let gen = PrototypeGenerator::new(ImageShape::new(3, 8, 8), 10, &mut rng);
    let spec = ArchSpec::densenet121_lite(shiftex::nn::InputShape { c: 3, h: 8, w: 8 }, 10, 24);

    let n = 10;
    let mut parties: Vec<Party> = (0..n)
        .map(|i| {
            Party::new(
                PartyId(i),
                gen.generate_uniform(40, &mut rng),
                gen.generate_uniform(20, &mut rng),
            )
        })
        .collect();

    let cfg = ShiftExConfig {
        participants_per_round: 6,
        ..ShiftExConfig::default()
    };
    let mut shiftex = ShiftEx::new(cfg, spec, &mut rng);
    shiftex.bootstrap(&parties, 12, &mut rng);
    println!(
        "W0 (clear summer imagery): accuracy {:.1}%",
        shiftex.evaluate(&parties) * 100.0
    );

    // Seasons: winter frost arrives, clears, then *returns* next year.
    let frost = Regime::corrupted(Corruption::Frost, 5).with_id(RegimeId(1));
    let seasons: [(&str, Option<&Regime>, &[usize]); 4] = [
        (
            "W1 winter: frost over northern stations",
            Some(&frost),
            &[0, 1, 2, 3, 4],
        ),
        ("W2 spring: skies clear again", None, &[0, 1, 2, 3, 4]),
        (
            "W3 next winter: frost returns",
            Some(&frost),
            &[0, 1, 2, 3, 4],
        ),
        ("W4 stable winter", Some(&frost), &[0, 1, 2, 3, 4]),
    ];

    for (label, regime, affected) in seasons {
        for (i, p) in parties.iter_mut().enumerate() {
            let r = if affected.contains(&i) {
                regime.cloned().unwrap_or_else(Regime::clear)
            } else {
                Regime::clear()
            };
            p.advance_window(
                gen.generate_with_regime(40, &r, &mut rng),
                gen.generate_with_regime(20, &r, &mut rng),
            );
        }
        let report = shiftex.process_window(&parties, &mut rng);
        for _ in 0..6 {
            ShiftEx::train_round(&mut shiftex, &parties, &mut rng);
        }
        println!(
            "{label}\n  detected {:>2} shifted | created {:?} | reused {:?} | accuracy {:.1}% | {} experts",
            report.cov_shifted.len(),
            report.created,
            report.reused,
            shiftex.evaluate(&parties) * 100.0,
            shiftex.num_experts()
        );
    }

    println!(
        "\nThe frost expert created in W1 is *reused* when frost recurs in W3 —\n\
         the latent-memory mechanism that gives ShiftEx its 22–95% faster\n\
         adaptation on recurring regimes."
    );
}
