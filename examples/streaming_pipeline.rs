//! The middleware view: a party-side stream pipeline (the Kafka/Flink role
//! in the paper's architecture, §3.2) ingesting timestamped records into
//! tumbling windows, plus the privacy path — shift statistics sealed into a
//! simulated TEE for enclave-side thresholding (§5.3).
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```

use rand::{rngs::StdRng, SeedableRng};
use shiftex::data::{Corruption, ImageShape, PrototypeGenerator, Regime};
use shiftex::stream::{stream_window, WindowSpec, WindowedIngest};
use shiftex::tee::Enclave;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let gen = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 4, &mut rng);

    // --- Stream layer: records arrive continuously; the engine cuts
    // tumbling windows of 100 time units.
    let spec = WindowSpec::tumbling(100);
    let mut engine = WindowedIngest::new(spec);
    let mut emitted = Vec::new();

    // Two windows of clear data, then fog rolls in.
    for (w, regime) in [
        (0u64, Regime::clear()),
        (1, Regime::clear()),
        (2, Regime::corrupted(Corruption::Fog, 5)),
    ] {
        let records = stream_window(&gen, &regime, w * 100, (w + 1) * 100, 60, &mut rng);
        for r in records {
            emitted.extend(engine.ingest(r));
        }
    }
    emitted.extend(engine.flush());
    for w in &emitted {
        println!(
            "window {} emitted with {} records",
            w.index,
            w.records.len()
        );
    }

    // --- Detection layer: MMD between consecutive windows' raw features.
    use shiftex::detect::{mmd2_biased, RbfKernel};
    use shiftex::tensor::Matrix;
    let as_matrix = |records: &[shiftex::stream::Record]| {
        let rows: Vec<Vec<f32>> = records.iter().map(|r| r.x.clone()).collect();
        Matrix::from_vec(rows.len(), rows[0].len(), rows.concat())
    };
    let w0 = as_matrix(&emitted[0].records);
    let w1 = as_matrix(&emitted[1].records);
    let w2 = as_matrix(&emitted[2].records);
    let kernel = RbfKernel::median_heuristic(&w0, &w0);
    let stable = mmd2_biased(&w0, &w1, &kernel);
    let shifted = mmd2_biased(&w1, &w2, &kernel);
    println!("\nMMD(W0, W1) = {stable:.4}   (same regime)");
    println!("MMD(W1, W2) = {shifted:.4}   (fog arrived)");

    // --- Privacy layer: the scores cross the trust boundary sealed; the
    // enclave applies the threshold without the aggregator seeing raw stats.
    let enclave = Enclave::new(0xd00d, 0.05);
    println!("\nenclave measurement: {:016x}", enclave.measurement());
    let sealed = enclave.seal_value(&vec![stable, shifted]);
    let verdicts = enclave
        .run(&sealed, |scores: Vec<f32>| {
            scores.into_iter().map(|s| s > 0.05).collect::<Vec<bool>>()
        })
        .expect("enclave call");
    let verdicts: Vec<bool> = enclave.unseal_value(&verdicts).expect("unseal");
    println!("enclave verdicts (shift detected?): {verdicts:?}");
    let costs = enclave.costs();
    println!(
        "enclave costs: {} call(s), {} bytes, {:.3} ms simulated overhead",
        costs.calls,
        costs.bytes_processed,
        costs.overhead_seconds * 1000.0
    );
}
