//! Label shift in a healthcare federation (the paper's §2.2 example):
//! disease prevalence varies by season, changing each clinic's label
//! distribution while the imaging itself stays stable. ShiftEx detects the
//! change via JSD on label histograms and rebalances training with FLIPS.
//!
//! ```text
//! cargo run --release --example label_shift_hospitals
//! ```

use rand::{rngs::StdRng, SeedableRng};
use shiftex::core::{ShiftEx, ShiftExConfig};
use shiftex::data::{ImageShape, PrototypeGenerator, Regime};
use shiftex::fl::{Party, PartyId};
use shiftex::nn::ArchSpec;
use shiftex::tensor::rngx;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let classes = 6; // six condition categories
    let gen = PrototypeGenerator::new(ImageShape::new(1, 8, 8), classes, &mut rng);
    let spec = ArchSpec::lenet5_lite(shiftex::nn::InputShape { c: 1, h: 8, w: 8 }, classes, 24);

    let n = 10;
    let mut parties: Vec<Party> = (0..n)
        .map(|i| {
            Party::new(
                PartyId(i),
                gen.generate_uniform(48, &mut rng),
                gen.generate_uniform(24, &mut rng),
            )
        })
        .collect();

    let cfg = ShiftExConfig {
        participants_per_round: 6,
        ..ShiftExConfig::default()
    };
    let mut shiftex = ShiftEx::new(cfg, spec, &mut rng);
    shiftex.bootstrap(&parties, 12, &mut rng);
    println!(
        "W0 (balanced case mix): accuracy {:.1}%",
        shiftex.evaluate(&parties) * 100.0
    );

    // Flu season: half the clinics see a heavy skew towards classes 0–1,
    // with covariates (the imaging) unchanged.
    for season in 1..=3 {
        for (i, p) in parties.iter_mut().enumerate() {
            let regime = if i < n / 2 {
                let skew = rngx::dirichlet(&mut rng, 0.25, classes);
                Regime::clear().with_label_dist(skew)
            } else {
                Regime::clear()
            };
            p.advance_window(
                gen.generate_with_regime(48, &regime, &mut rng),
                gen.generate_with_regime(24, &regime, &mut rng),
            );
        }
        let report = shiftex.process_window(&parties, &mut rng);
        for _ in 0..6 {
            ShiftEx::train_round(&mut shiftex, &parties, &mut rng);
        }
        println!(
            "season {season}: {} label-shifted clinics (δ_label = {:.3}), \
             {} covariate-shifted, accuracy {:.1}%",
            report.label_shifted.len(),
            report.delta_label,
            report.cov_shifted.len(),
            shiftex.evaluate(&parties) * 100.0
        );
    }

    println!(
        "\nLabel shift is detected from histograms alone — no expert split is\n\
         needed (the input distribution is unchanged), but FLIPS keeps each\n\
         training cohort class-balanced so minority conditions stay covered."
    );
}
