//! Quickstart: bootstrap a federation, inject a covariate shift, watch
//! ShiftEx detect it, spawn an expert and recover.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::{rngs::StdRng, SeedableRng};
use shiftex::core::{ShiftEx, ShiftExConfig};
use shiftex::data::{Corruption, ImageShape, PrototypeGenerator, Regime};
use shiftex::fl::{Party, PartyId};
use shiftex::nn::ArchSpec;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let gen = PrototypeGenerator::new(ImageShape::new(3, 8, 8), 10, &mut rng);

    // 1. A 12-party federation on the clean distribution.
    let mut parties: Vec<Party> = (0..12)
        .map(|i| {
            Party::new(
                PartyId(i),
                gen.generate_uniform(40, &mut rng),
                gen.generate_uniform(20, &mut rng),
            )
        })
        .collect();

    // 2. Bootstrap: FLIPS-balanced federated training of the first expert.
    let spec = ArchSpec::resnet18_lite(shiftex::nn::InputShape { c: 3, h: 8, w: 8 }, 10, 24);
    let cfg = ShiftExConfig {
        participants_per_round: 8,
        ..ShiftExConfig::default()
    };
    let mut shiftex = ShiftEx::new(cfg, spec, &mut rng);
    shiftex.bootstrap(&parties, 12, &mut rng);
    println!(
        "after bootstrap: accuracy {:.1}%",
        shiftex.evaluate(&parties) * 100.0
    );

    // 3. A new stream window arrives: fog rolls in for half the federation.
    let fog = Regime::corrupted(Corruption::Fog, 5);
    for (i, p) in parties.iter_mut().enumerate() {
        let (train, test) = if i < 6 {
            (
                gen.generate_with_regime(40, &fog, &mut rng),
                gen.generate_with_regime(20, &fog, &mut rng),
            )
        } else {
            (
                gen.generate_uniform(40, &mut rng),
                gen.generate_uniform(20, &mut rng),
            )
        };
        p.advance_window(train, test);
    }

    // 4. ShiftEx detects the shift and reorganises the expert pool.
    let report = shiftex.process_window(&parties, &mut rng);
    println!(
        "window 1: {} covariate-shifted parties detected (δ_cov = {:.4}), \
         {} expert(s) created, {} reused",
        report.cov_shifted.len(),
        report.delta_cov,
        report.created.len(),
        report.reused.len()
    );
    println!(
        "post-shift accuracy: {:.1}%",
        shiftex.evaluate(&parties) * 100.0
    );

    // 5. A few federated rounds recover the federation.
    for round in 1..=6 {
        ShiftEx::train_round(&mut shiftex, &parties, &mut rng);
        println!(
            "round {round}: accuracy {:.1}% ({} experts)",
            shiftex.evaluate(&parties) * 100.0,
            shiftex.num_experts()
        );
    }
    for expert in shiftex.registry().iter() {
        println!("  {} serves {} parties", expert.id, expert.cohort_size);
    }
}
