//! Fixture: unsafe-audit violations, linted twice — once as an ordinary
//! file (U001 at every site) and once as allowlisted (U002 only).

pub fn not_actually_unsafe() -> u32 {
    let _ = "unsafe { in a string }";
    let _ = r##"unsafe in a raw string with r## fences"##;
    // the word unsafe in a comment does not fire either
    let r#unsafe = 1;
    r#unsafe
}

pub fn missing_safety(x: u32) -> u32 {
    unsafe { x.unchecked_add(1) }
}

pub fn has_safety(x: u32) -> u32 {
    // SAFETY: the caller guarantees x < u32::MAX, so the add cannot wrap.
    unsafe { x.unchecked_add(1) }
}
