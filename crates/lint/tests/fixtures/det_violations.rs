//! Fixture: determinism violations, linted under a hand-built class with
//! `deterministic` set. Never compiled — the walker skips `fixtures/`.

// A HashMap or HashSet named in a comment must not fire.
use std::collections::HashMap;
use std::collections::BTreeMap;

pub fn strings_do_not_fire() -> &'static str {
    let _ = "HashMap in a plain string";
    let _ = r#"HashSet in a raw "string" — still text"#;
    "Instant::now() and thread_rng() in text"
}

pub fn real_violations() -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    let mut rng = rand::thread_rng();
    let _ = rand::random::<f32>();
    m.len() + t.elapsed().as_secs() as usize + rng.next() as usize
}

pub fn waived() -> usize {
    // lint:allow(det-map): lookup-only scratch set, justified for the test
    let s: std::collections::HashSet<u8> = std::collections::HashSet::new();
    s.len() + BTreeMap::<u8, u8>::new().len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn maps_and_clocks_in_test_code_are_exempt() {
        let mut s = HashSet::new();
        s.insert(std::time::Instant::now());
    }
}
