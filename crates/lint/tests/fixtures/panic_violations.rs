//! Fixture: panic-discipline violations for a `panic_scope` class.

pub fn bad(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    if a + b > 3 {
        panic!("boom");
    }
    unreachable!()
}

pub fn fine(v: Option<u32>) -> u32 {
    let unwrap = 3;
    v.unwrap_or_else(|| unwrap)
}

pub fn waived(v: Option<u32>) -> u32 {
    // lint:allow(panic): fixture-documented invariant — v is always Some here
    v.expect("waived")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_exempt() {
        assert_eq!(super::waived(Some(1)).min(1), 1);
        let _ = Some(2).unwrap();
    }
}
