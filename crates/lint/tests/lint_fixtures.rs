//! Fixture-based integration tests: each file under `tests/fixtures/`
//! carries known violations, and the lint must report exactly those
//! (rule, line) pairs — nothing more, nothing less. Exactness is the
//! point: it proves identifiers inside strings, raw strings, and comments
//! never fire, and that `#[cfg(test)]` modules and `lint:allow` waivers
//! suppress what they should.
//!
//! The fixtures are `include_str!`'d, never compiled: the workspace walker
//! skips `fixtures/` directories, so real runs never see them either.

use shiftex_lint::{lint_source, FileClass};

fn report(src: &str, class: &FileClass) -> Vec<(&'static str, usize)> {
    lint_source(src, class)
        .iter()
        .map(|d| (d.rule.code, d.line))
        .collect()
}

#[test]
fn det_fixture_reports_exact_rules_and_lines() {
    let src = include_str!("fixtures/det_violations.rs");
    let class = FileClass {
        path: "fixtures/det_violations.rs".into(),
        deterministic: true,
        ..FileClass::default()
    };
    assert_eq!(
        report(src, &class),
        vec![
            ("D001", 5),  // use std::collections::HashMap
            ("D001", 15), // HashMap type annotation ...
            ("D001", 15), // ... and HashMap::new() on the same line
            ("D002", 17), // Instant::now()
            ("D002", 18), // SystemTime::now()
            ("D003", 19), // thread_rng()
            ("D003", 20), // rand::random()
        ],
        "strings (9-11), the comment (4), the waived set (26), and the \
         #[cfg(test)] module (30-39) must all stay silent"
    );
}

#[test]
fn det_fixture_is_silent_outside_deterministic_scope() {
    let src = include_str!("fixtures/det_violations.rs");
    // Timing-exempt (bench/bin) scope: no D rules at all.
    let class = FileClass {
        path: "fixtures/det_violations.rs".into(),
        timing_exempt: true,
        ..FileClass::default()
    };
    assert_eq!(report(src, &class), vec![]);
}

#[test]
fn net_clock_carve_out_spares_deadline_module_only() {
    // Pin the D002 carve-out end-to-end: the same clock-reading source is
    // linted under the *real* classifier's scopes for the net crate. Only
    // the sanctioned deadline module is spared; the same code anywhere
    // else in the net library still fires.
    let src = "fn f() -> std::time::Instant {\n    Instant::now()\n}\n";
    let spared = shiftex_lint::walk::classify("crates/net/src/deadline.rs");
    assert_eq!(report(src, &spared), vec![]);
    let caught = shiftex_lint::walk::classify("crates/net/src/coordinator.rs");
    assert_eq!(report(src, &caught), vec![("D002", 2)]);
}

#[test]
fn unsafe_fixture_outside_allowlist_trips_scope_rule() {
    let src = include_str!("fixtures/unsafe_violations.rs");
    let class = FileClass {
        path: "fixtures/unsafe_violations.rs".into(),
        ..FileClass::default()
    };
    assert_eq!(
        report(src, &class),
        vec![
            ("U001", 13), // unsafe without SAFETY
            ("U001", 18), // a SAFETY comment does not waive the allowlist
        ],
        "the string (5), raw string (6), comment (7), and raw identifier \
         r#unsafe (8) must not count as unsafe"
    );
}

#[test]
fn unsafe_fixture_on_allowlist_demands_safety_comments() {
    let src = include_str!("fixtures/unsafe_violations.rs");
    let class = FileClass {
        path: "crates/tensor/src/simd.rs".into(),
        unsafe_allowed: true,
        ..FileClass::default()
    };
    assert_eq!(
        report(src, &class),
        vec![("U002", 13)],
        "only the site without a SAFETY comment may fire"
    );
}

#[test]
fn panic_fixture_reports_exact_rules_and_lines() {
    let src = include_str!("fixtures/panic_violations.rs");
    let class = FileClass {
        path: "fixtures/panic_violations.rs".into(),
        panic_scope: true,
        ..FileClass::default()
    };
    assert_eq!(
        report(src, &class),
        vec![
            ("P001", 4), // .unwrap()
            ("P001", 5), // .expect()
            ("P001", 7), // panic!
            ("P001", 9), // unreachable!
        ],
        "unwrap_or_else (14), a bare `unwrap` binding (13), the waived \
         expect (19), and the #[cfg(test)] module (22-29) must stay silent"
    );
}

#[test]
fn panic_fixture_is_silent_outside_panic_scope() {
    let src = include_str!("fixtures/panic_violations.rs");
    let class = FileClass {
        path: "fixtures/panic_violations.rs".into(),
        ..FileClass::default()
    };
    assert_eq!(report(src, &class), vec![]);
}
