//! The workspace must lint clean, and the CLI's exit codes must hold:
//! 0 on the (clean) workspace, non-zero when violations exist. This is
//! the same gate CI runs.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/lint → the workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_lints_clean() {
    let diags = shiftex_lint::run_workspace(&workspace_root()).expect("workspace walk succeeds");
    let rendered: Vec<String> = diags.iter().map(|d| d.render_text()).collect();
    assert!(
        rendered.is_empty(),
        "the workspace must lint clean — fix or waive:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn cli_exits_zero_on_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_shiftex-lint"))
        .args(["--deny", "all", "--root"])
        .arg(workspace_root())
        .output()
        .expect("lint binary runs");
    assert!(
        out.status.success(),
        "expected exit 0 on the clean workspace:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_exits_nonzero_on_violations() {
    // A scratch tree shaped like a deterministic crate, seeded with the
    // determinism fixture (which carries D002/D003 errors).
    let dir = std::env::temp_dir().join(format!("shiftex-lint-exit-{}", std::process::id()));
    let src_dir = dir.join("crates/fl/src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("scratch manifest");
    std::fs::write(
        src_dir.join("bad.rs"),
        include_str!("fixtures/det_violations.rs"),
    )
    .expect("scratch source");

    let out = Command::new(env!("CARGO_BIN_EXE_shiftex-lint"))
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("lint binary runs");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1 on a tree with violations:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/fl/src/bad.rs:17") && stdout.contains("D002"),
        "diagnostics must carry workspace-relative paths and rule codes:\n{stdout}"
    );
}
