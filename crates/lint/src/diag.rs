//! Diagnostics: rule identities, severities, and the text/JSON renderings
//! consumed by humans, CI logs, and the uploaded report artifact.

use std::fmt;

/// How bad an un-waived violation is by default. `--deny all` (or
/// `--deny <rule>`) promotes matching warnings to errors at report time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but does not fail the run unless denied.
    Warn,
    /// Fails the run (non-zero exit).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One rule's identity: stable code, allow-name, default severity, and the
/// invariant it protects (shown by `--list-rules`).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable short code, e.g. `D001`.
    pub code: &'static str,
    /// Name used in diagnostics and `lint:allow(<name>)` markers.
    pub name: &'static str,
    /// Severity when not denied.
    pub default_severity: Severity,
    /// One-line statement of the invariant.
    pub rationale: &'static str,
}

/// Every rule this tool knows, in report order.
pub static RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "D001",
        name: "det-map",
        default_severity: Severity::Warn,
        rationale: "no HashMap/HashSet in deterministic crates: iteration order varies run-to-run \
                    and silently breaks bit-identical goldens — use BTreeMap/BTreeSet or a sorted \
                    Vec (lookup-only uses may be lint:allow'd with a justification)",
    },
    RuleInfo {
        code: "D002",
        name: "det-clock",
        default_severity: Severity::Error,
        rationale: "no Instant::now/SystemTime::now in library code: wall-clock reads make seeded \
                    runs non-reproducible — timing belongs in bench/bin targets",
    },
    RuleInfo {
        code: "D003",
        name: "det-rng",
        default_severity: Severity::Error,
        rationale: "no ambient RNG (thread_rng/rand::random/from_entropy): every stochastic draw \
                    must come from a seeded constructor so reruns are bit-identical",
    },
    RuleInfo {
        code: "U001",
        name: "unsafe-scope",
        default_severity: Severity::Error,
        rationale: "unsafe is only legal in the audited allowlist (tensor/src/simd.rs); a new \
                    file growing unsafe must be added there deliberately, with review",
    },
    RuleInfo {
        code: "U002",
        name: "unsafe-safety",
        default_severity: Severity::Error,
        rationale: "every unsafe block/fn carries a `// SAFETY:` comment stating the CPU-feature \
                    precondition and pointer/length validity argument",
    },
    RuleInfo {
        code: "P001",
        name: "panic",
        default_severity: Severity::Warn,
        rationale: "no unwrap()/expect()/panic! in fl/core library code: hot paths return errors; \
                    a panic kept as a documented invariant is lint:allow'd per line",
    },
    RuleInfo {
        code: "M001",
        name: "meter-field",
        default_severity: Severity::Error,
        rationale: "every CommTotals field is accumulated by the CommLedger and rendered by the \
                    report — a counter added but never summed or printed is a silent metering \
                    hole",
    },
];

/// Looks a rule up by its allow-name.
pub fn rule_by_name(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// One violation at one line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path as reported (workspace-relative when walking the workspace).
    pub path: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// The violated rule.
    pub rule: &'static RuleInfo,
    /// Effective severity after `--deny` promotion.
    pub severity: Severity,
    /// Human-readable specifics.
    pub message: String,
}

impl Diagnostic {
    /// rustc-style single-line rendering:
    /// `path:line: error[D001(det-map)]: message`.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: {}[{}({})]: {}",
            self.path, self.line, self.severity, self.rule.code, self.rule.name, self.message
        )
    }

    /// One JSON object (hand-rolled; the lint is std-only by design).
    pub fn render_json(&self) -> String {
        format!(
            r#"{{"path":{},"line":{},"rule":{},"name":{},"severity":{},"message":{}}}"#,
            json_str(&self.path),
            self.line,
            json_str(self.rule.code),
            json_str(self.rule.name),
            json_str(&self.severity.to_string()),
            json_str(&self.message),
        )
    }
}

/// Renders a full report as a JSON document with a summary header.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let body: Vec<String> = diags
        .iter()
        .map(|d| format!("  {}", d.render_json()))
        .collect();
    format!(
        "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[\n{}\n]}}\n",
        errors,
        diags.len() - errors,
        body.join(",\n")
    )
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_unique_and_resolvable() {
        for r in RULES {
            assert!(std::ptr::eq(rule_by_name(r.name).unwrap(), r));
        }
        let mut names: Vec<_> = RULES.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RULES.len());
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic {
            path: "a\"b.rs".into(),
            line: 3,
            rule: &RULES[0],
            severity: Severity::Warn,
            message: "uses \"HashMap\"".into(),
        };
        let j = d.render_json();
        assert!(j.contains(r#""path":"a\"b.rs""#));
        assert!(j.contains(r#""severity":"warning""#));
    }
}
