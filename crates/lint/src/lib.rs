//! `shiftex-lint` — the workspace's own static-analysis pass.
//!
//! Everything this reproduction claims experimentally rests on invariants
//! the compiler does not check: bit-identical conformance goldens assume
//! no iteration-order-dependent fold anywhere in the deterministic crates;
//! seeded scenario schedules assume no wall-clock or ambient-RNG read on a
//! deterministic path; the SIMD kernels assume every `unsafe` block keeps
//! its audited `SAFETY:` argument; the communication tables assume every
//! `CommTotals` counter is both accumulated and rendered. One stray
//! `HashMap` fold or `Instant::now()` breaks reproducibility silently —
//! no test fails until a golden regenerates differently on someone else's
//! machine.
//!
//! External lint drivers (dylint, custom clippy lints, Miri) are not
//! available in the offline build container, so the checker lives in the
//! repo: a small Rust lexer ([`lexer`]) that strips comments, strings,
//! raw strings, and char literals correctly, plus line-anchored rules
//! ([`rules`], [`meter`]) over the token stream, scoped by workspace path
//! ([`walk`]). Violations are waived per line with `// lint:allow(<rule>)`
//! and a justification.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p shiftex-lint -- --deny all
//! ```
//!
//! The rule families (see [`diag::RULES`] or `--list-rules`):
//!
//! | family | rules | invariant |
//! |--------|-------|-----------|
//! | **D** determinism | `det-map`, `det-clock`, `det-rng` | rerun-identical seeded paths |
//! | **U** unsafe audit | `unsafe-scope`, `unsafe-safety` | allowlisted, SAFETY-commented unsafe |
//! | **P** panic discipline | `panic` | no unwrap/expect/panic! in fl/core library code |
//! | **M** metering | `meter-field` | every `CommTotals` counter summed and printed |

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod meter;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use diag::{Diagnostic, Severity};
pub use rules::FileClass;

/// Lints one source string under an explicit scope (the fixture tests'
/// entry point; the CLI goes through [`run_workspace`]).
pub fn lint_source(src: &str, class: &FileClass) -> Vec<Diagnostic> {
    rules::check_file(&lexer::lex(src), class)
}

/// Lints every `.rs` file in the workspace at `root` plus the cross-file
/// metering rule, returning diagnostics sorted by path, line, and rule.
///
/// # Errors
///
/// Propagates I/O failures from the directory walk; unreadable individual
/// files become diagnostics rather than errors.
pub fn run_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for path in walk::collect_rs_files(root)? {
        let rel = walk::rel_path(root, &path);
        let class = walk::classify(&rel);
        match std::fs::read_to_string(&path) {
            Ok(src) => diags.extend(lint_source(&src, &class)),
            Err(e) => diags.push(Diagnostic {
                path: rel,
                line: 1,
                rule: diag::rule_by_name("unsafe-scope").expect("registered"),
                severity: Severity::Error,
                message: format!("unreadable source file: {e}"),
            }),
        }
    }
    diags.extend(meter::check_metering(root));
    diags.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.code.cmp(b.rule.code))
    });
    Ok(diags)
}
