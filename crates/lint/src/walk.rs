//! Workspace walking and path → rule-scope classification.
//!
//! Scope is decided entirely by where a file sits in the workspace, which
//! is the whole point of an in-repo linter: the invariants are *of this
//! repository* (which crates must be deterministic, where timing is a
//! feature rather than a bug, which single module is cleared for unsafe),
//! so the mapping lives here as reviewed code, not in per-file pragmas.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::FileClass;

/// Crates whose library code must be rerun-deterministic: everything the
/// bit-identical conformance goldens and the seeded scenario schedules run
/// through. D-rules apply to their `src/` (bin targets excluded).
pub const DETERMINISTIC_CRATES: &[&str] = &["fl", "baselines", "flips", "core", "cluster"];

/// Crates whose library code must not panic on hot paths (P001). The codec
/// lives inside `fl`, so `fl` + `core` covers the ISSUE's fl/core/codec
/// surface.
pub const PANIC_FREE_CRATES: &[&str] = &["fl", "core"];

/// The audited unsafe allowlist (U001): the single SIMD intrinsics module.
/// Growing this list is a deliberate, reviewed act.
pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/tensor/src/simd.rs"];

/// Timing carve-out for the networked-federation crate (D002/D003): the
/// per-round deadline module is `shiftex-net`'s *single* sanctioned
/// wall-clock site — a real socket deadline is a feature, not a
/// determinism bug, and everything it decides flows back into
/// deterministic accounting. Deliberately a file list, not a blanket
/// crate exemption: the rest of `crates/net/src/` (framing, coordinator,
/// worker) stays under the clock rules so stray `Instant::now` calls in
/// protocol logic are still caught.
pub const NET_TIMING_ALLOWLIST: &[&str] = &["crates/net/src/deadline.rs"];

/// Directory names never descended into: build output, VCS metadata, and
/// the lint crate's own violation fixtures (which exist to be dirty).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Classifies a workspace-relative path (forward-slash normalised) into
/// the rule scopes that apply to it.
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let mut class = FileClass {
        path: rel.to_string(),
        ..FileClass::default()
    };

    // Vendored dependency shims stand in for external crates: they are not
    // this codebase's determinism surface (criterion's whole job is wall
    // timing), but they are still covered by the unsafe audit.
    if parts.first() == Some(&"shims") {
        class.timing_exempt = true;
        return class;
    }

    // Whole-file test/bench/example scopes.
    let in_crate_tests = parts.first() == Some(&"crates")
        && matches!(parts.get(2), Some(&"tests") | Some(&"benches"));
    if parts.first() == Some(&"tests")
        || parts.first() == Some(&"examples")
        || parts.first() == Some(&"benches")
        || in_crate_tests
    {
        class.all_test = true;
        class.timing_exempt = true;
        return class;
    }

    if parts.first() == Some(&"crates") {
        let krate = parts.get(1).copied().unwrap_or("");
        let in_src = parts.get(2) == Some(&"src");
        let is_bin = in_src && (parts.get(3) == Some(&"bin") || parts.last() == Some(&"main.rs"));
        // Timing is the bench crate's purpose; bin targets own their I/O
        // and wall clocks (the ISSUE's "outside bench and bin targets").
        if krate == "bench" || is_bin {
            class.timing_exempt = true;
        }
        if in_src && !is_bin {
            class.deterministic = DETERMINISTIC_CRATES.contains(&krate);
            class.panic_scope = PANIC_FREE_CRATES.contains(&krate);
        }
        if NET_TIMING_ALLOWLIST.contains(&rel) {
            class.timing_exempt = true;
        }
    }

    class.unsafe_allowed = UNSAFE_ALLOWLIST.contains(&rel);
    class
}

/// Recursively collects every `.rs` file under `root` (sorted, so report
/// order and CI logs are stable), skipping `SKIP_DIRS` (VCS internals,
/// build output).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Normalises `path` relative to `root` with forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — the root the rule scopes are anchored to.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_crates_get_d_rules_in_lib_only() {
        assert!(classify("crates/fl/src/algo.rs").deterministic);
        assert!(classify("crates/core/src/aggregator.rs").deterministic);
        assert!(!classify("crates/detect/src/mmd.rs").deterministic);
        assert!(!classify("crates/experiments/src/bin/scenarios.rs").deterministic);
    }

    #[test]
    fn bins_benches_and_shims_are_timing_exempt() {
        assert!(classify("crates/experiments/src/bin/overheads.rs").timing_exempt);
        assert!(classify("crates/bench/src/bin/bench_runner.rs").timing_exempt);
        assert!(classify("crates/bench/src/lib.rs").timing_exempt);
        assert!(classify("shims/criterion/src/lib.rs").timing_exempt);
        assert!(!classify("crates/tee/src/lib.rs").timing_exempt);
    }

    #[test]
    fn net_timing_carve_out_is_exactly_the_deadline_module() {
        // The sanctioned wall-clock site is exempt…
        assert!(classify("crates/net/src/deadline.rs").timing_exempt);
        // …and nothing else in the net crate's library is: protocol logic
        // stays under the clock rules.
        assert!(!classify("crates/net/src/lib.rs").timing_exempt);
        assert!(!classify("crates/net/src/coordinator.rs").timing_exempt);
        assert!(!classify("crates/net/src/worker.rs").timing_exempt);
        assert!(!classify("crates/net/src/frame.rs").timing_exempt);
        // The carve-out is timing only — no determinism/panic scope change.
        assert!(!classify("crates/net/src/deadline.rs").deterministic);
        assert!(!classify("crates/net/src/deadline.rs").panic_scope);
    }

    #[test]
    fn unsafe_allowlist_is_exactly_the_simd_module() {
        assert!(classify("crates/tensor/src/simd.rs").unsafe_allowed);
        assert!(!classify("crates/tensor/src/vector.rs").unsafe_allowed);
        assert!(!classify("shims/rand/src/lib.rs").unsafe_allowed);
    }

    #[test]
    fn test_trees_are_whole_file_test_scope() {
        assert!(classify("tests/algorithm_conformance.rs").all_test);
        assert!(classify("examples/churny_federation.rs").all_test);
        assert!(classify("crates/fl/benches/fl_runtime.rs").all_test);
        assert!(!classify("crates/fl/src/round.rs").all_test);
    }

    #[test]
    fn panic_scope_is_fl_and_core_lib() {
        assert!(classify("crates/fl/src/codec.rs").panic_scope);
        assert!(classify("crates/core/src/consolidate.rs").panic_scope);
        assert!(!classify("crates/tensor/src/matrix.rs").panic_scope);
        assert!(!classify("crates/fl/src/bin/tool.rs").panic_scope);
    }
}
