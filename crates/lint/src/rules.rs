//! The per-file rule checks: determinism (D), unsafe audit (U), and panic
//! discipline (P), evaluated over a [`LexFile`] token stream under a
//! [`FileClass`] scope. The cross-file metering rule (M) lives in
//! [`crate::meter`] because it correlates two files.

use crate::diag::{rule_by_name, Diagnostic, RuleInfo};
use crate::lexer::{LexFile, Tok};

/// Which rule families apply to a file, derived from its workspace path by
/// [`crate::walk::classify`] (or built by hand in tests/fixtures).
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Path as diagnostics should print it.
    pub path: String,
    /// Determinism-critical crate library code: D001 (map order) applies.
    pub deterministic: bool,
    /// Wall-clock and ambient-RNG reads are allowed (bench crate, bin
    /// targets, examples, shims, test-only files).
    pub timing_exempt: bool,
    /// P001 applies (fl/core library code).
    pub panic_scope: bool,
    /// File is on the audited unsafe allowlist: U001 is waived, U002
    /// (SAFETY comments) still enforced.
    pub unsafe_allowed: bool,
    /// The whole file is test/bench support code — D and P rules skip it
    /// entirely (the `#[cfg(test)]` tracker handles in-file test modules).
    pub all_test: bool,
}

fn diag(class: &FileClass, rule: &'static RuleInfo, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        path: class.path.clone(),
        line,
        rule,
        severity: rule.default_severity,
        message,
    }
}

/// Runs every per-file rule over `file`, honouring `lint:allow` markers.
pub fn check_file(file: &LexFile, class: &FileClass) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_det_map(file, class, &mut out);
    check_det_clock(file, class, &mut out);
    check_det_rng(file, class, &mut out);
    check_unsafe(file, class, &mut out);
    check_panic(file, class, &mut out);
    out.sort_by(|a, b| {
        a.line
            .cmp(&b.line)
            .then_with(|| a.rule.code.cmp(b.rule.code))
    });
    out
}

/// Is token `i` live for non-unsafe rules (not inside a test item)?
fn live(file: &LexFile, class: &FileClass, i: usize) -> bool {
    !class.all_test && !file.in_test[i]
}

/// D001: `HashMap`/`HashSet` mentioned in deterministic crate library code.
///
/// The rule is deliberately construction-anchored rather than
/// iteration-anchored: a token-level lint cannot track which binding later
/// flows into a `for` loop, and a map that is *provably* lookup-only is
/// exactly the case the per-line `lint:allow(det-map)` justification
/// exists for. Everything else switches to `BTreeMap`/`BTreeSet`, whose
/// iteration order is total and stable.
fn check_det_map(file: &LexFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    if !class.deterministic {
        return;
    }
    let rule = rule_by_name("det-map").expect("registered");
    for (i, tok) in file.tokens.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if (name == "HashMap" || name == "HashSet")
            && live(file, class, i)
            && !file.allowed(rule.name, tok.line)
        {
            out.push(diag(
                class,
                rule,
                tok.line,
                format!(
                    "`{name}` in a deterministic crate: iteration order is arbitrary — use \
                     `BTree{}` or a sorted Vec, or justify a lookup-only use with \
                     `// lint:allow(det-map)`",
                    &name[4..]
                ),
            ));
        }
    }
}

/// D002: `Instant::now` / `SystemTime::now` outside bench/bin/test code.
fn check_det_clock(file: &LexFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    if class.timing_exempt {
        return;
    }
    let rule = rule_by_name("det-clock").expect("registered");
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        // `Instant :: now` — two `:` puncts then the method name.
        let is_now_path = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
        if is_now_path && live(file, class, i) && !file.allowed(rule.name, tok.line) {
            out.push(diag(
                class,
                rule,
                tok.line,
                format!(
                    "`{name}::now()` in library code: wall-clock reads break rerun determinism — \
                     move timing into a bench/bin target or justify with \
                     `// lint:allow(det-clock)`"
                ),
            ));
        }
    }
}

/// D003: ambient (unseeded) RNG entry points.
fn check_det_rng(file: &LexFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    if class.timing_exempt {
        return;
    }
    let rule = rule_by_name("det-rng").expect("registered");
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        let ambient = matches!(name, "thread_rng" | "from_entropy" | "from_os_rng")
            || (name == "random"
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("rand"));
        if ambient && live(file, class, i) && !file.allowed(rule.name, tok.line) {
            out.push(diag(
                class,
                rule,
                tok.line,
                format!(
                    "`{name}` draws from ambient entropy: construct RNGs only via seeded \
                     constructors (`seed_from_u64`/`from_seed`) so runs are rerun-identical"
                ),
            ));
        }
    }
}

/// U001 + U002: `unsafe` only in the allowlist, and always under a
/// `// SAFETY:` comment.
///
/// The SAFETY comment may trail the `unsafe` line or sit in the contiguous
/// comment/attribute block directly above it (doc comments and `#[...]`
/// attribute lines are skipped on the way up, so `#[inline] unsafe fn`
/// keeps its SAFETY line above the attributes).
fn check_unsafe(file: &LexFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    let scope_rule = rule_by_name("unsafe-scope").expect("registered");
    let safety_rule = rule_by_name("unsafe-safety").expect("registered");
    for tok in &file.tokens {
        if !tok.is_ident("unsafe") {
            continue;
        }
        // `unsafe` in tests is still unsafe: U rules ignore test regions.
        if !class.unsafe_allowed {
            out.push(diag(
                class,
                scope_rule,
                tok.line,
                "`unsafe` outside the audited allowlist: this file is not cleared for unsafe \
                 code — keep intrinsics behind `crates/tensor/src/simd.rs` or extend the \
                 allowlist deliberately"
                    .to_string(),
            ));
            continue; // no point also demanding a SAFETY comment
        }
        if !has_safety_comment(file, tok.line) {
            out.push(diag(
                class,
                safety_rule,
                tok.line,
                "`unsafe` without a `// SAFETY:` comment: state the CPU-feature precondition \
                 and the pointer/length validity argument on or directly above this line"
                    .to_string(),
            ));
        }
    }
}

fn has_safety_comment(file: &LexFile, line: usize) -> bool {
    if file.comment_contains(line, "SAFETY:") {
        return true;
    }
    // Walk up through the contiguous comment/attribute/doc block.
    let mut l = line;
    while l > 1 {
        l -= 1;
        let text = file.line(l);
        let t = text.trim_start();
        if t.starts_with("//") {
            if file.comment_contains(l, "SAFETY:") {
                return true;
            }
        } else if t.starts_with("#[") || t.starts_with("#!") || t.is_empty() {
            // attribute or blank — keep walking
        } else {
            return false;
        }
    }
    false
}

/// P001: panic-family calls in fl/core library code.
fn check_panic(file: &LexFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    if !class.panic_scope {
        return;
    }
    let rule = rule_by_name("panic").expect("registered");
    let toks = &file.tokens;
    let mut flag = |tok: &Tok, what: &str| {
        if !file.allowed(rule.name, tok.line) {
            out.push(diag(
                class,
                rule,
                tok.line,
                format!(
                    "`{what}` in library code: return an error (or restructure so the case is \
                     impossible); a panic that *is* the documented invariant gets a \
                     `// lint:allow(panic)` with its justification"
                ),
            ));
        }
    };
    for (i, tok) in toks.iter().enumerate() {
        if !live(file, class, i) {
            continue;
        }
        let Some(name) = tok.ident() else { continue };
        match name {
            // `.unwrap()` / `.expect(` — method position only, so idents
            // like `unwrap_or_else` (different token) or a field named
            // `expect` (no call parens) never match.
            "unwrap" | "expect" => {
                let method_call = i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if method_call {
                    flag(tok, &format!(".{name}()"));
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                flag(tok, &format!("{name}!"));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn det_class() -> FileClass {
        FileClass {
            path: "crates/fl/src/x.rs".into(),
            deterministic: true,
            panic_scope: true,
            ..FileClass::default()
        }
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
        diags.iter().map(|d| (d.rule.name, d.line)).collect()
    }

    #[test]
    fn det_map_fires_on_idents_not_trivia() {
        let src = "// HashMap here is fine\nlet s = \"HashSet\";\nuse std::collections::HashMap;\n";
        let d = check_file(&lex(src), &det_class());
        assert_eq!(rules_of(&d), vec![("det-map", 3)]);
    }

    #[test]
    fn det_map_allow_waives_exact_line() {
        let src = "let a: HashMap<u8, u8> = x(); // lint:allow(det-map) lookup-only\nlet b: HashMap<u8, u8> = y();\n";
        let d = check_file(&lex(src), &det_class());
        assert_eq!(rules_of(&d), vec![("det-map", 2)]);
    }

    #[test]
    fn clock_rule_matches_paths_only() {
        let src = "let t = Instant::now();\nlet i = Instant::from_nanos(now);\n";
        let d = check_file(&lex(src), &det_class());
        assert_eq!(rules_of(&d), vec![("det-clock", 1)]);
    }

    #[test]
    fn unsafe_scope_vs_safety() {
        let src = "fn f() {\n    unsafe { g() }\n}\n";
        let not_allowed = check_file(&lex(src), &det_class());
        assert_eq!(rules_of(&not_allowed), vec![("unsafe-scope", 2)]);

        let class = FileClass {
            unsafe_allowed: true,
            ..det_class()
        };
        let allowed = check_file(&lex(src), &class);
        assert_eq!(rules_of(&allowed), vec![("unsafe-safety", 2)]);

        let with_comment =
            "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}\n";
        assert!(check_file(&lex(with_comment), &class).is_empty());
    }

    #[test]
    fn safety_comment_walks_over_attributes() {
        let src = "/// Docs.\n// SAFETY: caller checked avx2\n#[inline]\nunsafe fn k() {}\n";
        let class = FileClass {
            unsafe_allowed: true,
            ..det_class()
        };
        assert!(check_file(&lex(src), &class).is_empty());
    }

    #[test]
    fn panic_rule_skips_test_modules_and_non_method_idents() {
        let src = "fn lib(x: Option<u8>) -> u8 {\n    x.unwrap_or_default();\n    x.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n";
        let d = check_file(&lex(src), &det_class());
        assert_eq!(rules_of(&d), vec![("panic", 3)]);
    }

    #[test]
    fn panic_macros_need_the_bang() {
        let src = "fn f() {\n    panic!(\"boom\");\n    let panic = 3;\n}\n";
        let d = check_file(&lex(src), &det_class());
        assert_eq!(rules_of(&d), vec![("panic", 2)]);
    }
}
