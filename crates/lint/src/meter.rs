//! M001 — the metering-completeness rule.
//!
//! PRs 3–5 each grew `CommTotals` by a counter pair, and each time the
//! failure mode was the same: a field that compiles, serialises, and stays
//! zero forever because nothing accumulates it, or accumulates but never
//! reaches a table. This rule closes that class: every field of
//! `CommTotals` (crates/fl/src/comm.rs) must be written inside the
//! `impl CommLedger` accumulation block *and* read by the report renderer
//! (crates/experiments/src/report.rs). Field list, accumulation, and
//! rendering are extracted from the token streams, so comments and strings
//! cannot satisfy the rule.
//!
//! PR 9 added the dual hole: a `record_*` hook that compiles, accumulates
//! its field, and is never called — the counter still reads zero because no
//! driver invokes the hook. So the rule also requires every `record_*`
//! method of `impl CommLedger` to be invoked from non-test `fl`-crate code
//! outside comm.rs (the engine/round path that actually moves bytes).

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use crate::diag::{rule_by_name, Diagnostic, RuleInfo};
use crate::lexer::{lex, LexFile, TokKind};
use crate::walk;

/// Struct whose fields are audited, and where the two sides live.
const TOTALS_STRUCT: &str = "CommTotals";
const LEDGER_IMPL: &str = "CommLedger";
const LEDGER_PATH: &str = "crates/fl/src/comm.rs";
const RENDERER_PATH: &str = "crates/experiments/src/report.rs";
/// Where `record_*` hooks must be exercised from (minus comm.rs itself).
const CALLER_DIR: &str = "crates/fl/src";

/// Runs the metering rule against the workspace at `root`.
pub fn check_metering(root: &Path) -> Vec<Diagnostic> {
    let rule = rule_by_name("meter-field").expect("registered");
    let mut out = Vec::new();

    let Some(ledger) = read(root, LEDGER_PATH) else {
        out.push(missing(rule, LEDGER_PATH, "ledger source file is missing"));
        return out;
    };
    let Some(renderer) = read(root, RENDERER_PATH) else {
        out.push(missing(
            rule,
            RENDERER_PATH,
            "report renderer source file is missing",
        ));
        return out;
    };

    let fields = struct_fields(&ledger, TOTALS_STRUCT);
    if fields.is_empty() {
        out.push(missing(
            rule,
            LEDGER_PATH,
            "`CommTotals` struct not found — the metering rule's anchor moved; update \
             crates/lint/src/meter.rs",
        ));
        return out;
    }

    let accumulation = impl_block_idents(&ledger, LEDGER_IMPL);
    let rendered = non_test_idents(&renderer);

    for (name, line) in fields {
        if !accumulation.contains(&name) {
            out.push(Diagnostic {
                path: LEDGER_PATH.to_string(),
                line,
                rule,
                severity: rule.default_severity,
                message: format!(
                    "`CommTotals::{name}` is never touched by the `impl {LEDGER_IMPL}` \
                     accumulation: the counter can only ever read zero — record it in a \
                     `record_*` method or remove the field"
                ),
            });
        }
        if !rendered.contains(&name) {
            out.push(Diagnostic {
                path: LEDGER_PATH.to_string(),
                line,
                rule,
                severity: rule.default_severity,
                message: format!(
                    "`CommTotals::{name}` is never read by the report renderer \
                     ({RENDERER_PATH}): metered bytes that no table prints are invisible — \
                     render it or remove the field"
                ),
            });
        }
    }

    let callers = match fl_caller_idents(root) {
        Ok(idents) => idents,
        Err(e) => {
            out.push(missing(
                rule,
                CALLER_DIR,
                &format!("cannot walk the fl crate sources: {e}"),
            ));
            return out;
        }
    };
    for (name, line) in record_methods(&ledger, LEDGER_IMPL) {
        if !callers.contains(&name) {
            out.push(Diagnostic {
                path: LEDGER_PATH.to_string(),
                line,
                rule,
                severity: rule.default_severity,
                message: format!(
                    "`CommLedger::{name}` is never invoked from non-test {CALLER_DIR} code \
                     outside comm.rs: a recording hook no engine path calls meters nothing — \
                     wire it into the round/broadcast path or remove it"
                ),
            });
        }
    }
    out
}

/// `(method_name, line)` of every `fn record_*` declared (outside test
/// regions) inside `impl name { ... }`.
fn record_methods(file: &LexFile, name: &str) -> Vec<(String, usize)> {
    let toks = &file.tokens;
    let mut methods = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("impl") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct('{')) else {
            continue;
        };
        let mut depth = 0usize;
        for (j, tok) in toks.iter().enumerate().skip(open) {
            match &tok.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident(id) if id == "fn" && !file.in_test[j] => {
                    if let Some(m) = toks.get(j + 1).and_then(|t| t.ident()) {
                        if m.starts_with("record_") {
                            methods.push((m.to_string(), toks[j + 1].line));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    methods
}

/// Union of non-test identifiers across every `.rs` file under
/// [`CALLER_DIR`], excluding the ledger module itself.
fn fl_caller_idents(root: &Path) -> std::io::Result<BTreeSet<String>> {
    let mut idents = BTreeSet::new();
    for path in walk::collect_rs_files(&root.join(CALLER_DIR))? {
        if walk::rel_path(root, &path) == LEDGER_PATH {
            continue;
        }
        if let Ok(src) = fs::read_to_string(&path) {
            idents.extend(non_test_idents(&lex(&src)));
        }
    }
    Ok(idents)
}

fn read(root: &Path, rel: &str) -> Option<LexFile> {
    fs::read_to_string(root.join(rel)).ok().map(|src| lex(&src))
}

fn missing(rule: &'static RuleInfo, path: &str, why: &str) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: 1,
        rule,
        severity: rule.default_severity,
        message: format!("metering rule cannot run: {why}"),
    }
}

/// Extracts `(field_name, line)` pairs from `struct name { ... }`: inside
/// the braces at depth 1, an identifier directly followed by a single `:`
/// and preceded by `{`, `,`, or `pub` is a field.
fn struct_fields(file: &LexFile, name: &str) -> Vec<(String, usize)> {
    let toks = &file.tokens;
    let mut fields = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("struct") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct('{')) else {
            continue;
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident(field) if depth == 1 => {
                    let colon = toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                        && !toks.get(j + 2).is_some_and(|t| t.is_punct(':'));
                    let boundary_before = toks[j - 1].is_punct('{')
                        || toks[j - 1].is_punct(',')
                        || toks[j - 1].is_ident("pub");
                    if colon && boundary_before {
                        fields.push((field.clone(), toks[j].line));
                    }
                }
                _ => {}
            }
            j += 1;
        }
        break;
    }
    fields
}

/// Identifiers appearing (outside test regions) inside `impl name { ... }`.
fn impl_block_idents(file: &LexFile, name: &str) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut idents = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("impl") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct('{')) else {
            continue;
        };
        let mut depth = 0usize;
        for (j, tok) in toks.iter().enumerate().skip(open) {
            match &tok.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident(id) if !file.in_test[j] => {
                    idents.insert(id.clone());
                }
                _ => {}
            }
        }
    }
    idents
}

fn non_test_idents(file: &LexFile) -> BTreeSet<String> {
    file.tokens
        .iter()
        .zip(&file.in_test)
        .filter(|(_, &in_test)| !in_test)
        .filter_map(|(t, _)| t.ident().map(str::to_string))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_finds_all_counters() {
        let src = "pub struct CommTotals {\n    pub up_bytes: u64,\n    pub down_bytes: u64,\n}\n";
        let fields = struct_fields(&lex(src), "CommTotals");
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["up_bytes", "down_bytes"]);
        assert_eq!(fields[0].1, 2);
    }

    #[test]
    fn impl_idents_exclude_test_modules() {
        let src = "impl CommLedger {\n    fn f(&self) { self.totals.up_bytes += 1; }\n}\n\
                   #[cfg(test)]\nmod tests { fn t() { only_in_test(); } }\n";
        let ids = impl_block_idents(&lex(src), "CommLedger");
        assert!(ids.contains("up_bytes"));
        assert!(!ids.contains("only_in_test"));
    }

    #[test]
    fn record_methods_found_outside_test_regions_only() {
        let src = "impl CommLedger {\n    pub fn record_upload(&self) {}\n    fn helper() {}\n}\n\
                   #[cfg(test)]\nmod tests { impl CommLedger { fn record_fake(&self) {} } }\n";
        let methods = record_methods(&lex(src), "CommLedger");
        let names: Vec<&str> = methods.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["record_upload"]);
        assert_eq!(methods[0].1, 2);
    }

    #[test]
    fn workspace_metering_is_complete() {
        // The real repo must satisfy its own metering invariant (this is
        // also exercised end-to-end by the self-check integration test).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = check_metering(&root);
        assert!(diags.is_empty(), "metering holes: {diags:?}");
    }
}
