//! `doclinks` — offline Markdown link checker for the repo's prose docs.
//!
//! Walks the Markdown files/directories given on the command line and
//! verifies every relative link target resolves on disk, and every
//! fragment (`#section` or `file.md#section`) matches a heading in the
//! target file (GitHub-style slugs). External `http(s)://` and `mailto:`
//! links are skipped — CI has no network, and the architecture doc's
//! job is to keep *source* links honest, not the web.
//!
//! USAGE: `cargo run -p shiftex-lint --bin doclinks -- README.md docs`
//!
//! Exit codes: 0 all links resolve, 1 broken links (each printed as
//! `file:line: broken link ...`), 2 usage/I-O error.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Collect the `.md` files named by `arg` (a file, or a directory walked
/// recursively in sorted order so output is deterministic).
fn collect_markdown(arg: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if arg.is_file() {
        out.push(arg.to_path_buf());
        return Ok(());
    }
    if !arg.is_dir() {
        return Err(format!("{}: no such file or directory", arg.display()));
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(arg)
        .map_err(|e| format!("{}: {e}", arg.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_markdown(&entry, out)?;
        } else if entry.extension().is_some_and(|x| x == "md") {
            out.push(entry);
        }
    }
    Ok(())
}

/// GitHub-style heading slug: lowercase, alphanumerics kept, spaces and
/// dashes become dashes, everything else dropped.
fn slugify(heading: &str) -> String {
    let mut slug = String::with_capacity(heading.len());
    for ch in heading.trim().chars() {
        if ch.is_alphanumeric() || ch == '_' {
            for lower in ch.to_lowercase() {
                slug.push(lower);
            }
        } else if ch == ' ' || ch == '-' {
            slug.push('-');
        }
    }
    slug
}

/// Heading anchors of a Markdown document, with GitHub's `-1`, `-2`
/// suffixing for duplicates. Fenced code blocks are ignored.
fn anchors(text: &str) -> Vec<String> {
    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !trimmed.starts_with('#') {
            continue;
        }
        let heading = trimmed.trim_start_matches('#');
        if !heading.starts_with(' ') && !heading.is_empty() {
            continue; // `#foo` is not a heading
        }
        // Strip inline code spans and link syntax before slugging:
        // GitHub slugs the rendered text, not the raw Markdown.
        let mut rendered = String::new();
        let mut chars = heading.trim().chars().peekable();
        while let Some(ch) = chars.next() {
            match ch {
                '`' => {}
                '[' => {}
                ']' => {
                    // Drop a trailing `(target)` of a Markdown link.
                    if chars.peek() == Some(&'(') {
                        for inner in chars.by_ref() {
                            if inner == ')' {
                                break;
                            }
                        }
                    }
                }
                _ => rendered.push(ch),
            }
        }
        let base = slugify(&rendered);
        let n = seen
            .iter_mut()
            .find_map(|(s, n)| (*s == base).then(|| std::mem::replace(n, *n + 1)));
        match n {
            None => {
                seen.push((base.clone(), 1));
                out.push(base);
            }
            Some(count) => {
                let mut suffixed = base;
                let _ = write!(suffixed, "-{count}");
                out.push(suffixed);
            }
        }
    }
    out
}

/// Extract `(line_number, target)` for every inline Markdown link in
/// `text`, skipping fenced code blocks and inline code spans.
fn link_targets(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut in_code_span = false;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code_span = !in_code_span,
                b']' if !in_code_span && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    let start = i + 2;
                    if let Some(len) = line[start..].find(')') {
                        let target = line[start..start + len].trim();
                        // `[text](url "title")` — keep the URL part only.
                        let target = target.split_whitespace().next().unwrap_or("");
                        if !target.is_empty() {
                            out.push((idx + 1, target.to_string()));
                        }
                        i = start + len;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

fn check_file(path: &Path, broken: &mut Vec<String>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let own_anchors = anchors(&text);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    for (line, target) in link_targets(&text) {
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
        {
            continue;
        }
        let (file_part, frag) = match target.split_once('#') {
            Some((f, a)) => (f, Some(a)),
            None => (target.as_str(), None),
        };
        if file_part.is_empty() {
            // Pure fragment: must match a heading in this file.
            if let Some(anchor) = frag {
                if !own_anchors.iter().any(|a| a == anchor) {
                    broken.push(format!(
                        "{}:{line}: broken anchor `#{anchor}` (no such heading)",
                        path.display()
                    ));
                }
            }
            continue;
        }
        let resolved = dir.join(file_part);
        if !resolved.exists() {
            broken.push(format!(
                "{}:{line}: broken link `{target}` ({} does not exist)",
                path.display(),
                resolved.display()
            ));
            continue;
        }
        if let Some(anchor) = frag {
            if resolved.extension().is_some_and(|x| x == "md") {
                let dest = std::fs::read_to_string(&resolved)
                    .map_err(|e| format!("{}: {e}", resolved.display()))?;
                if !anchors(&dest).iter().any(|a| a == anchor) {
                    broken.push(format!(
                        "{}:{line}: broken anchor `{target}` (no heading `#{anchor}` in {})",
                        path.display(),
                        resolved.display()
                    ));
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: doclinks <file.md | dir>...");
        return ExitCode::from(2);
    }
    let mut files = Vec::new();
    for arg in &args {
        if let Err(e) = collect_markdown(Path::new(arg), &mut files) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        match check_file(file, &mut broken) {
            Ok(()) => checked += 1,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for b in &broken {
        println!("{b}");
    }
    println!(
        "doclinks: {checked} file(s) checked, {} broken link(s)",
        broken.len()
    );
    if broken.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_match_github_conventions() {
        assert_eq!(slugify("Round lifecycle"), "round-lifecycle");
        assert_eq!(slugify("The `PopulationStore`"), "the-populationstore");
        assert_eq!(
            slugify("O(cohort), not O(population)"),
            "ocohort-not-opopulation"
        );
    }

    #[test]
    fn duplicate_headings_get_suffixes() {
        let text = "# Setup\n\n# Setup\n\n## Setup\n";
        assert_eq!(anchors(text), ["setup", "setup-1", "setup-2"]);
    }

    #[test]
    fn code_blocks_are_ignored() {
        let text = "```rust\n# not a heading\nlet x = a[1](2);\n```\n# Real\n[ok](#real)\n";
        assert_eq!(anchors(text), ["real"]);
        assert_eq!(link_targets(text), [(6, "#real".to_string())]);
    }

    #[test]
    fn inline_links_are_extracted_with_lines() {
        let text = "see [a](x.md) and [b](y.md#frag \"title\")\n`[not](a-link.md)`\n";
        let targets = link_targets(text);
        assert_eq!(
            targets,
            [(1, "x.md".to_string()), (1, "y.md#frag".to_string())]
        );
    }
}
