//! A small, rule-oriented Rust lexer.
//!
//! The rules in this crate are line-anchored pattern checks over *token*
//! streams, not text: `HashMap` inside a string literal, `unsafe` in a doc
//! comment, or `panic!` in a `r##"raw string"##` must never fire a
//! diagnostic. This lexer therefore classifies exactly the constructs that
//! can hide identifier-lookalikes — line comments, nested block comments,
//! string/byte-string literals, raw strings with arbitrary `#` fences, char
//! literals vs lifetimes, raw identifiers — and throws everything it strips
//! into a per-line comment side-table that the `SAFETY:` and
//! `lint:allow(...)` checks read back.
//!
//! It is deliberately *not* a full Rust lexer: multi-character operators
//! come out as single punctuation tokens and numeric literals are lumped
//! into one kind, because no rule needs more. What it does get exactly
//! right is (a) what is code vs. trivia and (b) the 1-based line every
//! token sits on.

use std::collections::BTreeMap;

/// One significant (non-trivia) token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword. Raw identifiers keep their `r#` prefix so
    /// `r#unsafe` (an identifier) can never match the `unsafe` keyword.
    Ident(String),
    /// Single punctuation character (`.`, `!`, `(`, `::` arrives as two
    /// `:` tokens, ...).
    Punct(char),
    /// Numeric literal (integers, floats, any radix, any suffix).
    Num,
    /// String, byte-string, raw-string, or C-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: usize,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Is this token exactly the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Is this token the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A lexed source file: tokens, per-line comment text, raw lines, and the
/// set of token indices that live inside `#[test]` / `#[cfg(test)]` items.
#[derive(Debug, Default)]
pub struct LexFile {
    /// Significant tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comment text per 1-based line. A line crossed by several comments
    /// (or a multi-line block comment) gets all of its comment text
    /// concatenated; rules only ever substring-match into this.
    pub comments: BTreeMap<usize, String>,
    /// Raw source lines (1-based access via `line(n)`).
    pub lines: Vec<String>,
    /// `in_test[i]` — token `i` is inside a `#[test]`/`#[cfg(test)]` item
    /// body (test module, test fn), so non-`unsafe` rules skip it.
    pub in_test: Vec<bool>,
}

impl LexFile {
    /// The raw text of 1-based line `n` (empty for out-of-range).
    pub fn line(&self, n: usize) -> &str {
        n.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .map_or("", |s| s.as_str())
    }

    /// Does line `n` carry comment text containing `needle`?
    pub fn comment_contains(&self, n: usize, needle: &str) -> bool {
        self.comments.get(&n).is_some_and(|c| c.contains(needle))
    }

    /// Is the violation on `line` waived for `rule`?
    ///
    /// The allow marker is `lint:allow(rule)` (several rules may be listed,
    /// comma-separated) in a comment on the offending line, or on a
    /// directly preceding comment-only line — the latter so rustfmt-length
    /// lines can carry the justification above rather than trailing.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allow_marker_covers(rule, line)
            || (line >= 2
                && self.line(line - 1).trim_start().starts_with("//")
                && self.allow_marker_covers(rule, line - 1))
    }

    fn allow_marker_covers(&self, rule: &str, line: usize) -> bool {
        let Some(comment) = self.comments.get(&line) else {
            return false;
        };
        let mut rest = comment.as_str();
        while let Some(at) = rest.find("lint:allow(") {
            rest = &rest[at + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else {
                return false;
            };
            if rest[..close].split(',').any(|r| r.trim() == rule) {
                return true;
            }
            rest = &rest[close..];
        }
        false
    }
}

/// Lexes `src` into tokens + trivia tables. Never fails: unterminated
/// constructs consume to end-of-file, which is the forgiving behaviour a
/// lint walking generated or fixture code wants.
pub fn lex(src: &str) -> LexFile {
    let mut file = LexFile {
        lines: src
            .split('\n')
            .map(|l| l.trim_end_matches('\r').to_string())
            .collect(),
        ..LexFile::default()
    };
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;

    // Appends `text`'s comment content line-by-line starting at `start`.
    fn push_comment(file: &mut LexFile, start: usize, text: &str) {
        for (k, part) in text.split('\n').enumerate() {
            let entry = file.comments.entry(start + k).or_default();
            if !entry.is_empty() {
                entry.push(' ');
            }
            entry.push_str(part.trim_end_matches('\r'));
        }
    }

    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(b.len(), |p| i + p);
                push_comment(&mut file, line, &src[i..end]);
                i = end;
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comments, per the Rust grammar.
                let start_line = line;
                let begin = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                push_comment(&mut file, start_line, &src[begin..i]);
            }
            '"' => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                file.tokens.push(Tok {
                    kind: TokKind::Str,
                    line: tok_line,
                });
            }
            '\'' => {
                // Lifetime or char literal. `'` + ident-start + (no closing
                // quote right after the ident) → lifetime; everything else
                // is a char literal.
                let tok_line = line;
                let next = b.get(i + 1).copied();
                let is_lifetime = match next {
                    Some(n) if (n as char).is_alphabetic() || n == b'_' => {
                        let mut j = i + 1;
                        while j < b.len() && ((b[j] as char).is_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                        b.get(j) != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    i += 1;
                    while i < b.len() && ((b[i] as char).is_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    file.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        line: tok_line,
                    });
                } else {
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2; // escape + escaped char
                                // Longer escapes (\u{...}, \x4e) run to the quote.
                        while i < b.len() && b[i] != b'\'' {
                            if b[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                        i += 1;
                    } else {
                        // One (possibly multi-byte) char, then the quote.
                        i += src[i..].chars().next().map_or(1, char::len_utf8);
                        if i < b.len() && b[i] == b'\'' {
                            i += 1;
                        }
                    }
                    file.tokens.push(Tok {
                        kind: TokKind::Char,
                        line: tok_line,
                    });
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let tok_line = line;
                let start = i;
                // Raw strings / byte strings / raw identifiers share the
                // ident-start alphabet, so disambiguate here.
                if let Some(skip) = raw_or_byte_literal(b, i, src, &mut line) {
                    let kind = if b[i] == b'b' && b.get(i + 1) == Some(&b'\'') {
                        TokKind::Char
                    } else {
                        TokKind::Str
                    };
                    i = skip;
                    file.tokens.push(Tok {
                        kind,
                        line: tok_line,
                    });
                    continue;
                }
                if c == 'r' && i + 1 < b.len() && b[i + 1] == b'#' {
                    let mut j = i + 2;
                    if j < b.len() && ((b[j] as char).is_alphabetic() || b[j] == b'_') {
                        // Raw identifier: keep the r# prefix so keyword
                        // rules never match it.
                        while j < b.len() && ((b[j] as char).is_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                        file.tokens.push(Tok {
                            kind: TokKind::Ident(src[i..j].to_string()),
                            line: tok_line,
                        });
                        i = j;
                        continue;
                    }
                }
                let mut j = i;
                while j < b.len() && ((b[j] as char).is_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                file.tokens.push(Tok {
                    kind: TokKind::Ident(src[start..j].to_string()),
                    line: tok_line,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let tok_line = line;
                i = skip_number(b, i);
                file.tokens.push(Tok {
                    kind: TokKind::Num,
                    line: tok_line,
                });
            }
            _ => {
                file.tokens.push(Tok {
                    kind: TokKind::Punct(c),
                    line,
                });
                i += src[i..].chars().next().map_or(1, char::len_utf8);
            }
        }
    }

    file.in_test = mark_test_regions(&file.tokens);
    file
}

/// Consumes a `"`-delimited string starting at `b[i] == '"'`, honouring
/// backslash escapes and counting newlines. Returns the index past the
/// closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If position `i` starts a raw string (`r"`, `r#"`), byte string (`b"`,
/// `br#"`), byte char (`b'`), or c-string (`c"`), consumes it and returns
/// the index just past it; otherwise `None`.
fn raw_or_byte_literal(b: &[u8], i: usize, src: &str, line: &mut usize) -> Option<usize> {
    let c = b[i];
    // b'x' byte literal.
    if c == b'b' && b.get(i + 1) == Some(&b'\'') {
        let mut j = i + 2;
        if b.get(j) == Some(&b'\\') {
            j += 2;
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            return Some((j + 1).min(b.len()));
        }
        j += src
            .get(j..)
            .and_then(|s| s.chars().next())
            .map_or(1, char::len_utf8);
        if b.get(j) == Some(&b'\'') {
            j += 1;
        }
        return Some(j);
    }
    // Plain byte / c string: b"..." c"...".
    if (c == b'b' || c == b'c') && b.get(i + 1) == Some(&b'"') {
        return Some(skip_string(b, i + 1, line));
    }
    // Raw forms: r"...", r#*"..."#*, br#*"..."#*, cr#*"..."#*.
    let hashes_start = match (c, b.get(i + 1).copied()) {
        (b'r', Some(b'"' | b'#')) => i + 1,
        (b'b' | b'c', Some(b'r')) if matches!(b.get(i + 2), Some(b'"' | b'#')) => i + 2,
        _ => return None,
    };
    let mut j = hashes_start;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None; // r#ident — raw identifier, not a raw string
    }
    j += 1;
    // Scan for `"` followed by `hashes` `#`s.
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == b'#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(j)
}

/// Consumes a numeric literal loosely (any radix, underscores, float
/// fraction/exponent, type suffix) without swallowing `..` ranges.
fn skip_number(b: &[u8], mut i: usize) -> usize {
    let radix_alpha = i + 1 < b.len()
        && b[i] == b'0'
        && matches!(b[i + 1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B');
    if radix_alpha {
        i += 2;
    }
    while i < b.len() {
        let c = b[i];
        if (c as char).is_alphanumeric() || c == b'_' {
            // `1e-3` / `1E+9`: sign directly after an exponent marker.
            if (c == b'e' || c == b'E')
                && !radix_alpha
                && matches!(b.get(i + 1), Some(b'+') | Some(b'-'))
                && b.get(i + 2).is_some_and(|d| d.is_ascii_digit())
            {
                i += 2;
            }
            i += 1;
        } else if c == b'.'
            && b.get(i + 1) != Some(&b'.')
            && b.get(i + 1).is_none_or(|&n| n.is_ascii_digit())
        {
            // Fraction dot — but `1..x` is a range and `1.max(2)` a method
            // call, so only a digit (or EOF: `1.`) may follow.
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Marks every token inside the body of an item annotated `#[test]` or
/// `#[cfg(test)]` (including `#[cfg(all(test, ...))]` — any attribute whose
/// token stream contains the bare identifier `test`).
fn mark_test_regions(tokens: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Consume the attribute `#[ ... ]` (bracket-balanced).
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut has_test = false;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                TokKind::Ident(ref s) if s == "test" => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test {
            i = j;
            continue;
        }
        // Find the annotated item's body: the first `{` before a
        // top-level `;` (skipping any further attributes on the way).
        let mut k = j;
        let mut open = None;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct('{') => {
                    open = Some(k);
                    break;
                }
                TokKind::Punct(';') => break,
                TokKind::Punct('#') if tokens.get(k + 1).is_some_and(|t| t.is_punct('[')) => {
                    let mut d = 0usize;
                    k += 1;
                    while k < tokens.len() {
                        match tokens[k].kind {
                            TokKind::Punct('[') => d += 1,
                            TokKind::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            i = j;
            continue;
        };
        // Match the body's braces and mark the whole span (attribute
        // included — its tokens are not interesting to any rule anyway).
        let mut d = 0usize;
        let mut e = open;
        while e < tokens.len() {
            match tokens[e].kind {
                TokKind::Punct('{') => d += 1,
                TokKind::Punct('}') => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
            e += 1;
        }
        let e = e.min(tokens.len() - 1);
        for flag in &mut in_test[i..=e] {
            *flag = true;
        }
        i = e + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* unsafe in /* a nested */ block comment */
            let a = "HashMap::new()";
            let b = r#"unsafe { panic!() }"#;
            let c = b"HashSet";
            let d = 'u';
            real_ident();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids,
            vec!["let", "a", "let", "b", "let", "c", "let", "d", "real_ident"]
        );
    }

    #[test]
    fn comments_are_recorded_per_line() {
        let f = lex("let x = 1; // SAFETY: fine\n// next line\n");
        assert!(f.comment_contains(1, "SAFETY:"));
        assert!(f.comment_contains(2, "next line"));
        assert!(!f.comment_contains(1, "next"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = f.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn raw_identifier_does_not_leak_keyword() {
        let ids = idents("let r#unsafe = 1;");
        assert_eq!(ids, vec!["let", "r#unsafe"]);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { inner(); }\n}\nfn after() {}\n";
        let f = lex(src);
        let flag_of = |name: &str| {
            f.tokens
                .iter()
                .zip(&f.in_test)
                .find(|(t, _)| t.is_ident(name))
                .map(|(_, &b)| b)
        };
        assert_eq!(flag_of("lib"), Some(false));
        assert_eq!(flag_of("inner"), Some(true));
        assert_eq!(flag_of("after"), Some(false));
    }

    #[test]
    fn allow_markers_match_rule_lists() {
        let f = lex("do_it(); // lint:allow(det-map, panic) lookup-only\nnext();\n");
        assert!(f.allowed("det-map", 1));
        assert!(f.allowed("panic", 1));
        assert!(!f.allowed("det-clock", 1));
        assert!(
            !f.allowed("det-map", 2),
            "marker does not cover the next line"
        );
    }

    #[test]
    fn allow_marker_on_preceding_comment_line_covers() {
        let f = lex("// lint:allow(panic): justified\nfoo.unwrap();\n");
        assert!(f.allowed("panic", 2));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let f = lex("for i in 0..10 { x(1.0e-3, 2.0_f32, 7.max(3)); }");
        let nums = f.tokens.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 6, "0, 10, 1.0e-3, 2.0_f32, 7, 3");
        assert!(f.tokens.iter().any(|t| t.is_ident("max")));
    }
}
