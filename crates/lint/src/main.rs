//! CLI for the workspace lint: walks every `.rs` file, prints diagnostics
//! (text or JSON), and exits non-zero when error-severity violations
//! remain. See `--help`.

use std::path::PathBuf;
use std::process::ExitCode;

use shiftex_lint::diag::{render_json_report, rule_by_name, RULES};
use shiftex_lint::{run_workspace, Severity};

const USAGE: &str = "\
shiftex-lint — static analysis for the ShiftEx workspace

USAGE:
    cargo run -p shiftex-lint -- [OPTIONS]

OPTIONS:
    --root <PATH>     Workspace root (default: nearest ancestor with a
                      [workspace] Cargo.toml)
    --deny <WHICH>    Promote rules to error severity: `all`, or a
                      comma-separated list of rule names (e.g. det-map,panic)
    --format <FMT>    Output format: text (default) or json
    --out <FILE>      Additionally write the full JSON report to FILE
                      (what CI uploads as an artifact on failure)
    --list-rules      Print the rule table and exit
    -h, --help        This help

EXIT CODES:
    0  no error-severity diagnostics
    1  violations at error severity (all of them, under --deny all)
    2  usage or I/O error

Waive a violation on its line (or the comment line directly above) with
`// lint:allow(<rule>): <justification>`.";

struct Args {
    root: Option<PathBuf>,
    deny_all: bool,
    deny: Vec<String>,
    json: bool,
    out: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        deny_all: false,
        deny: Vec::new(),
        json: false,
        out: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a path".to_string())?,
                ));
            }
            "--deny" => {
                let what = it
                    .next()
                    .ok_or("--deny needs `all` or rule names".to_string())?;
                if what == "all" {
                    args.deny_all = true;
                } else {
                    for name in what.split(',') {
                        let name = name.trim();
                        if rule_by_name(name).is_none() {
                            return Err(format!("unknown rule `{name}` (see --list-rules)"));
                        }
                        args.deny.push(name.to_string());
                    }
                }
            }
            "--format" => match it.next().as_deref() {
                Some("text") => args.json = false,
                Some("json") => args.json = true,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--out" => {
                args.out = Some(PathBuf::from(
                    it.next().ok_or("--out needs a path".to_string())?,
                ));
            }
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in RULES {
            println!(
                "{}({})  default {}\n    {}\n",
                r.code, r.name, r.default_severity, r.rationale
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| shiftex_lint::walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: no [workspace] Cargo.toml found above the current directory");
            return ExitCode::from(2);
        }
    };

    let mut diags = match run_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for d in &mut diags {
        if args.deny_all || args.deny.iter().any(|n| n == d.rule.name) {
            d.severity = Severity::Error;
        }
    }

    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, render_json_report(&diags)) {
            eprintln!("error: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if args.json {
        print!("{}", render_json_report(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render_text());
        }
        println!(
            "shiftex-lint: {} file-anchored rule families over the workspace — {errors} error(s), \
             {warnings} warning(s)",
            RULES.len()
        );
    }

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
