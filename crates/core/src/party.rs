//! Party-side shift detection — the paper's **Algorithm 1**.
//!
//! Each window, a party embeds both its current dataset `D_t` and retained
//! previous dataset `D_{t-1}` through its current model's penultimate layer,
//! computes `Δcov = MMD(P_t(X), P_{t-1}(X))` and
//! `Δlabel = JSD(ŷ_t, ŷ_{t-1})`, and transmits only
//! `{P_t(X), ŷ_t, Δcov, Δlabel}` — never raw data.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_detect::{jsd, EmbeddingProfile, RbfKernel};
use shiftex_fl::{Party, PartyId};
use shiftex_nn::Sequential;

/// The statistics one party transmits to the aggregator each window
/// (Algorithm 1 line 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftStats {
    /// Reporting party.
    pub party: PartyId,
    /// Covariate profile `P_t(X)`: bounded sample of current-window
    /// embeddings.
    pub profile: EmbeddingProfile,
    /// Normalised label histogram `ŷ_t`.
    pub label_hist: Vec<f32>,
    /// `Δcov = MMD²(P_t, P_{t-1})` (0 when no previous window exists).
    pub mmd: f32,
    /// `Δlabel = JSD(ŷ_t, ŷ_{t-1})` (0 when no previous window exists).
    pub jsd: f32,
    /// Training samples this window (FedAvg weight, FLIPS input).
    pub num_samples: usize,
}

/// Runs Algorithm 1 for one party under the shared frozen encoder.
///
/// Both windows' data are embedded with the *same* model, so a change in
/// assigned expert between windows does not masquerade as covariate shift.
/// When `kernel` is provided (calibrated once from stable bootstrap
/// embeddings), it is used for the MMD so scores are comparable to the
/// calibrated threshold; otherwise the per-pair median heuristic applies.
///
/// # Panics
///
/// Panics if the party's current window has no training data.
pub fn compute_shift_stats(
    party: &Party,
    model: &Sequential,
    profile_rows: usize,
    kernel: Option<&RbfKernel>,
    rng: &mut impl Rng,
) -> ShiftStats {
    assert!(
        !party.train().is_empty(),
        "cannot compute shift stats without data"
    );
    let emb_now = model.embed(party.train_features());
    let profile = EmbeddingProfile::from_embeddings(&emb_now, profile_rows, rng);
    let label_hist = party.train().label_histogram();

    let (mmd, jsd_v) = match party.prev_train() {
        Some(prev) if !prev.is_empty() => {
            let emb_prev = model.embed(prev.features());
            let prev_profile = EmbeddingProfile::from_embeddings(&emb_prev, profile_rows, rng);
            let prev_hist = prev.label_histogram();
            let mmd = match kernel {
                Some(k) => profile.mmd_to_with(&prev_profile, k),
                None => profile.mmd_to(&prev_profile),
            };
            (mmd, jsd(&label_hist, &prev_hist))
        }
        _ => (0.0, 0.0),
    };

    ShiftStats {
        party: party.id(),
        profile,
        label_hist,
        mmd,
        jsd: jsd_v,
        num_samples: party.train().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shiftex_data::{Corruption, ImageShape, PrototypeGenerator, Regime};
    use shiftex_nn::ArchSpec;

    fn setup() -> (PrototypeGenerator, Sequential, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 4, &mut rng);
        let spec = ArchSpec::mlp("t", 64, &[16], 4);
        let model = Sequential::build(&spec, &mut rng);
        (gen, model, rng)
    }

    #[test]
    fn first_window_reports_zero_shift() {
        let (gen, model, mut rng) = setup();
        let party = Party::new(
            PartyId(0),
            gen.generate_uniform(40, &mut rng),
            gen.generate_uniform(10, &mut rng),
        );
        let stats = compute_shift_stats(&party, &model, 32, None, &mut rng);
        assert_eq!(stats.mmd, 0.0);
        assert_eq!(stats.jsd, 0.0);
        assert_eq!(stats.num_samples, 40);
    }

    #[test]
    fn stable_data_has_low_scores_and_shifted_data_high() {
        let (gen, model, mut rng) = setup();
        // Stable party: same regime across windows.
        let mut stable = Party::new(
            PartyId(0),
            gen.generate_uniform(60, &mut rng),
            gen.generate_uniform(10, &mut rng),
        );
        stable.advance_window(
            gen.generate_uniform(60, &mut rng),
            gen.generate_uniform(10, &mut rng),
        );
        let s_stable = compute_shift_stats(&stable, &model, 48, None, &mut rng);

        // Shifted party: fog corruption arrives in the second window.
        let mut shifted = Party::new(
            PartyId(1),
            gen.generate_uniform(60, &mut rng),
            gen.generate_uniform(10, &mut rng),
        );
        let foggy = gen.generate_with_regime(60, &Regime::corrupted(Corruption::Fog, 4), &mut rng);
        shifted.advance_window(foggy, gen.generate_uniform(10, &mut rng));
        let s_shifted = compute_shift_stats(&shifted, &model, 48, None, &mut rng);

        assert!(
            s_shifted.mmd > s_stable.mmd * 3.0,
            "shifted mmd {} should dwarf stable mmd {}",
            s_shifted.mmd,
            s_stable.mmd
        );
    }

    #[test]
    fn label_shift_raises_jsd_not_necessarily_mmd() {
        let (gen, model, mut rng) = setup();
        let mut party = Party::new(
            PartyId(2),
            gen.generate(60, &[1.0, 1.0, 1.0, 1.0], &mut rng),
            gen.generate_uniform(10, &mut rng),
        );
        // New window: heavy skew to class 0, same covariates.
        party.advance_window(
            gen.generate(60, &[10.0, 0.3, 0.3, 0.3], &mut rng),
            gen.generate_uniform(10, &mut rng),
        );
        let stats = compute_shift_stats(&party, &model, 48, None, &mut rng);
        assert!(stats.jsd > 0.1, "label shift jsd {}", stats.jsd);
    }

    #[test]
    fn profile_respects_row_cap() {
        let (gen, model, mut rng) = setup();
        let party = Party::new(
            PartyId(3),
            gen.generate_uniform(100, &mut rng),
            gen.generate_uniform(10, &mut rng),
        );
        let stats = compute_shift_stats(&party, &model, 16, None, &mut rng);
        assert_eq!(stats.profile.len(), 16);
        assert_eq!(stats.profile.dim(), model.embed_dim());
    }
}
