//! Registry snapshots: serialise / restore the expert pool and assignment
//! map.
//!
//! The conclusion frames expert reuse and consolidation as middleware
//! "service discovery"; a service registry must survive aggregator restarts.
//! Snapshots capture everything needed to resume serving — expert
//! parameters, latent memories, cohort assignments and calibrated
//! thresholds — as a single JSON document.

use serde::{Deserialize, Serialize};
use shiftex_detect::CalibratedThresholds;
use shiftex_fl::PartyId;

use crate::registry::{ExpertId, ExpertRegistry};

/// A point-in-time snapshot of the aggregator's serving state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Schema version for forward compatibility.
    pub version: u32,
    /// Window index the snapshot was taken at.
    pub window: usize,
    /// The expert pool (parameters + latent memories).
    pub registry: ExpertRegistry,
    /// Party → expert assignment at snapshot time.
    pub assignment: Vec<(PartyId, ExpertId)>,
    /// Personalised (sub-γ fine-tuned) parameters per party.
    pub personal: Vec<(PartyId, Vec<f32>)>,
    /// Calibrated thresholds, if calibration had run.
    pub thresholds: Option<CalibratedThresholds>,
}

/// Current snapshot schema version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl RegistrySnapshot {
    /// Serialises to JSON.
    ///
    /// # Errors
    ///
    /// Returns any serde error (cannot occur for well-formed snapshots).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores from JSON, validating the schema version.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Parse`] for malformed JSON and
    /// [`SnapshotError::Version`] for an unknown schema version.
    pub fn from_json(json: &str) -> Result<Self, SnapshotError> {
        let snap: RegistrySnapshot = serde_json::from_str(json).map_err(SnapshotError::Parse)?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(snap.version));
        }
        Ok(snap)
    }
}

/// Errors restoring a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// JSON parse failure.
    Parse(serde_json::Error),
    /// Unsupported schema version.
    Version(u32),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Parse(e) => write!(f, "snapshot parse error: {e}"),
            SnapshotError::Version(v) => write!(f, "unsupported snapshot version {v}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl crate::aggregator::ShiftEx {
    /// Captures the current serving state as a snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            version: SNAPSHOT_VERSION,
            window: self.window(),
            registry: self.registry().clone(),
            assignment: self.assignments().iter().map(|(p, e)| (*p, *e)).collect(),
            personal: self
                .personal_params()
                .map(|(p, v)| (p, v.to_vec()))
                .collect(),
            thresholds: self.thresholds(),
        }
    }

    /// Restores serving state from a snapshot (parameters, memories,
    /// assignments, thresholds). Detection kernels are re-calibrated on the
    /// next window, which is safe: the snapshot's thresholds remain in
    /// force.
    pub fn restore(&mut self, snapshot: RegistrySnapshot) {
        self.restore_parts(
            snapshot.window,
            snapshot.registry,
            snapshot.assignment,
            snapshot.personal,
            snapshot.thresholds,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ShiftEx, ShiftExConfig};
    use rand::{rngs::StdRng, SeedableRng};
    use shiftex_data::{ImageShape, PrototypeGenerator};
    use shiftex_fl::Party;
    use shiftex_nn::ArchSpec;

    fn booted() -> (ShiftEx, Vec<Party>, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 4, &mut rng);
        let parties: Vec<Party> = (0..6)
            .map(|i| {
                Party::new(
                    PartyId(i),
                    gen.generate_uniform(30, &mut rng),
                    gen.generate_uniform(15, &mut rng),
                )
            })
            .collect();
        let spec = ArchSpec::mlp("t", 64, &[16], 4);
        let mut sx = ShiftEx::new(ShiftExConfig::default(), spec, &mut rng);
        sx.bootstrap(&parties, 3, &mut rng);
        (sx, parties, rng)
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let (sx, _parties, _rng) = booted();
        let snap = sx.snapshot();
        let json = snap.to_json().expect("serialises");
        let back = RegistrySnapshot::from_json(&json).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn restore_recovers_serving_state() {
        let (sx, parties, mut rng) = booted();
        let before = sx.evaluate(&parties);
        let snap = sx.snapshot();

        // A "fresh aggregator process" restores the snapshot.
        let mut fresh = ShiftEx::new(ShiftExConfig::default(), sx.spec().clone(), &mut rng);
        fresh.restore(snap);
        assert_eq!(fresh.num_experts(), sx.num_experts());
        assert_eq!(fresh.assignments(), sx.assignments());
        let after = fresh.evaluate(&parties);
        assert!(
            (before - after).abs() < 1e-6,
            "restored accuracy must match"
        );
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (sx, _parties, _rng) = booted();
        let mut snap = sx.snapshot();
        snap.version = 99;
        let json = snap.to_json().unwrap();
        assert!(matches!(
            RegistrySnapshot::from_json(&json),
            Err(SnapshotError::Version(99))
        ));
    }

    #[test]
    fn garbage_json_is_rejected() {
        assert!(matches!(
            RegistrySnapshot::from_json("not json"),
            Err(SnapshotError::Parse(_))
        ));
    }
}
