//! Expert consolidation (§5.2.5): merge experts whose parameters have
//! drifted together, keeping the pool compact.

use serde::{Deserialize, Serialize};
use shiftex_detect::{EmbeddingProfile, RbfKernel};
use shiftex_nn::{cosine_params, weighted_merge};

use crate::registry::{ExpertId, ExpertRegistry};

/// Record of one merge, for window reports and the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeEvent {
    /// Expert that absorbed the other.
    pub kept: ExpertId,
    /// Expert removed from the registry.
    pub removed: ExpertId,
}

/// Repeatedly merges the most similar expert pair while
/// `cos(θ_i, θ_j) > tau` **and** the experts' latent memories agree
/// (`MMD(M_i, M_j) ≤ regime_epsilon`).
///
/// The paper's consolidation targets "redundant or duplicate models that
/// specialize in nearly identical covariate regimes". Parameter cosine alone
/// cannot establish that: any two fine-tunings of a shared initialisation
/// have cosine ≈ 0.99. The latent-memory gate supplies the "identical
/// regime" half of the condition (pass `f32::INFINITY` to disable it and
/// recover the raw cosine rule).
///
/// Experts created at or after `min_age_window` are exempt: a new expert is
/// a clone of θ0 that has not yet specialised, and Algorithm 2 trains new
/// experts (line 23) *before* the consolidation loop (line 34) — merging an
/// untrained clone back would undo its creation.
///
/// The surviving expert takes the cohort-size-weighted parameter average and
/// the merged latent memory; the id of the larger-cohort expert is kept so
/// most parties keep their assignment. Returns the merge log; the caller
/// must remap assignments of removed experts (see
/// [`crate::aggregator::ShiftEx`]).
///
/// Consolidation never increases the registry size — each iteration removes
/// exactly one expert — so it terminates after at most `len − 1` merges.
pub fn consolidate_experts(
    registry: &mut ExpertRegistry,
    tau: f32,
    min_age_window: usize,
    regime_epsilon: f32,
    kernel: Option<&RbfKernel>,
) -> Vec<MergeEvent> {
    let mut events = Vec::new();
    loop {
        // Find the most similar *eligible* pair above the threshold.
        let experts: Vec<(ExpertId, usize)> = registry
            .iter()
            .filter(|e| e.created_window < min_age_window)
            .map(|e| (e.id, e.cohort_size))
            .collect();
        let mut best: Option<(ExpertId, ExpertId, f32)> = None;
        for i in 0..experts.len() {
            for j in (i + 1)..experts.len() {
                let a = registry.live(experts[i].0);
                let b = registry.live(experts[j].0);
                let cos = cosine_params(&a.params, &b.params);
                if cos <= tau || best.is_some_and(|(_, _, c)| cos <= c) {
                    continue;
                }
                if regime_epsilon.is_finite() {
                    let probe = EmbeddingProfile::from_sample(b.memory.sample().clone());
                    let regime_gap = match kernel {
                        Some(k) => a.memory.mmd_to_with(&probe, k),
                        None => a.memory.mmd_to(&probe),
                    };
                    if regime_gap > regime_epsilon {
                        continue;
                    }
                }
                best = Some((a.id, b.id, cos));
            }
        }
        let Some((ia, ib, _)) = best else { break };

        // Keep the larger cohort's id.
        let (keep_id, drop_id) = {
            let a = registry.live(ia);
            let b = registry.live(ib);
            if a.cohort_size >= b.cohort_size {
                (ia, ib)
            } else {
                (ib, ia)
            }
        };
        let dropped = registry
            .remove(drop_id)
            // lint:allow(panic): drop_id came out of `best` just above — the pair invariant
            .expect("expert selected for merge exists");
        let kept = registry.live_mut(keep_id);
        let (wa, wb) = (
            kept.cohort_size.max(1) as f32,
            dropped.cohort_size.max(1) as f32,
        );
        kept.params = weighted_merge(&kept.params, &dropped.params, wa, wb);
        kept.memory = kept.memory.merge(&dropped.memory, wa, wb);
        kept.cohort_size += dropped.cohort_size;
        events.push(MergeEvent {
            kept: keep_id,
            removed: drop_id,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shiftex_detect::EmbeddingProfile;
    use shiftex_tensor::Matrix;

    fn profile(mean: f32, seed: u64) -> EmbeddingProfile {
        let mut rng = StdRng::seed_from_u64(seed);
        EmbeddingProfile::from_embeddings(&Matrix::randn(16, 3, mean, 0.5, &mut rng), 16, &mut rng)
    }

    fn registry_with(params: Vec<(Vec<f32>, usize)>) -> ExpertRegistry {
        let mut reg = ExpertRegistry::new();
        for (i, (p, cohort)) in params.into_iter().enumerate() {
            let id = reg.create(p, &profile(i as f32, i as u64), 0);
            reg.get_mut(id).unwrap().cohort_size = cohort;
        }
        reg
    }

    #[test]
    fn identical_experts_merge() {
        let p = vec![1.0, 2.0, 3.0];
        let mut reg = registry_with(vec![(p.clone(), 5), (p.clone(), 3)]);
        let events = consolidate_experts(&mut reg, 0.99, 1, f32::INFINITY, None);
        assert_eq!(events.len(), 1);
        assert_eq!(reg.len(), 1);
        // Larger cohort's id survives.
        assert_eq!(events[0].kept, ExpertId(0));
        assert_eq!(reg.iter().next().unwrap().cohort_size, 8);
    }

    #[test]
    fn dissimilar_experts_are_kept() {
        let mut reg = registry_with(vec![(vec![1.0, 0.0, 0.0], 2), (vec![0.0, 1.0, 0.0], 2)]);
        let events = consolidate_experts(&mut reg, 0.9, 1, f32::INFINITY, None);
        assert!(events.is_empty());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn merge_is_cohort_weighted() {
        let mut reg = registry_with(vec![(vec![0.0, 0.0], 3), (vec![0.4, 0.4], 1)]);
        // cos([0,0], x) is 0 by convention, so use near-parallel params.
        let mut reg2 = registry_with(vec![(vec![1.0, 1.0], 3), (vec![1.4, 1.4], 1)]);
        consolidate_experts(&mut reg, 0.99, 1, f32::INFINITY, None); // no merge: zero-norm guard
        let events = consolidate_experts(&mut reg2, 0.99, 1, f32::INFINITY, None);
        assert_eq!(events.len(), 1);
        let merged = reg2.iter().next().unwrap();
        // Weighted mean: (3*1.0 + 1*1.4) / 4 = 1.1.
        assert!(
            (merged.params[0] - 1.1).abs() < 1e-5,
            "got {}",
            merged.params[0]
        );
    }

    #[test]
    fn chain_of_similar_experts_collapses() {
        let mut reg = registry_with(vec![
            (vec![1.0, 1.0], 1),
            (vec![1.01, 1.0], 1),
            (vec![1.0, 1.01], 1),
        ]);
        let events = consolidate_experts(&mut reg, 0.999, 1, f32::INFINITY, None);
        assert_eq!(events.len(), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn regime_gate_blocks_cross_regime_merges() {
        // Two experts with near-identical parameters but far-apart latent
        // memories (different covariate regimes) must not merge.
        let mut reg = ExpertRegistry::new();
        let a = reg.create(vec![1.0, 1.0], &profile(8.0, 21), 0);
        let b = reg.create(vec![1.001, 1.0], &profile(-8.0, 22), 0);
        reg.get_mut(a).unwrap().cohort_size = 2;
        reg.get_mut(b).unwrap().cohort_size = 2;
        let events = consolidate_experts(&mut reg, 0.99, 1, 0.05, None);
        assert!(events.is_empty(), "cross-regime merge should be blocked");
        assert_eq!(reg.len(), 2);

        // Same parameters with *matching* memories do merge.
        let mut reg2 = ExpertRegistry::new();
        let a2 = reg2.create(vec![1.0, 1.0], &profile(8.0, 23), 0);
        let b2 = reg2.create(vec![1.001, 1.0], &profile(8.0, 24), 0);
        reg2.get_mut(a2).unwrap().cohort_size = 2;
        reg2.get_mut(b2).unwrap().cohort_size = 2;
        let events = consolidate_experts(&mut reg2, 0.99, 1, 0.5, None);
        assert_eq!(events.len(), 1, "same-regime duplicates should merge");
    }

    #[test]
    fn registry_never_grows() {
        let mut reg = registry_with(vec![
            (vec![1.0, 0.0], 1),
            (vec![0.9, 0.1], 1),
            (vec![-1.0, 0.5], 1),
        ]);
        let before = reg.len();
        consolidate_experts(&mut reg, 0.95, 1, f32::INFINITY, None);
        assert!(reg.len() <= before);
    }
}
