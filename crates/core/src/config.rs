//! ShiftEx configuration.

use serde::{Deserialize, Serialize};
use shiftex_fl::CodecSpec;
use shiftex_nn::TrainConfig;

/// All tunables of the ShiftEx aggregator, with the paper's defaults.
///
/// Thresholds `δ_cov` / `δ_label` are usually left `None` and calibrated
/// from bootstrap-phase null distributions (§5); setting them explicitly
/// is the threshold-sensitivity ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftExConfig {
    /// Covariate-shift threshold on MMD²; `None` = calibrate at bootstrap.
    pub delta_cov: Option<f32>,
    /// Label-shift threshold on JSD; `None` = calibrate at bootstrap.
    pub delta_label: Option<f32>,
    /// Expert-consolidation cosine-similarity threshold τ (Algorithm 2).
    pub tau: f32,
    /// Latent-memory match tolerance ε: a cluster reuses expert *k* when
    /// `MMD(P̄_j, M(k)) ≤ ε · δ_cov` (relative to the calibrated threshold).
    /// Values above 1 trade expert reuse against sensitivity: sliding-window
    /// carryover makes half-shifted cohort profiles sit between regimes, and
    /// a loose ε wrongly sends them back to their old expert.
    pub epsilon_factor: f32,
    /// Minimum cluster size γ for federated treatment; smaller clusters
    /// fall back to local fine-tuning (Algorithm 2 line 29).
    pub gamma_min_cluster: usize,
    /// Hard cap on live experts (`U_max`-style capacity guard).
    pub max_experts: usize,
    /// EMA coefficient β for latent-memory updates.
    pub memory_beta: f32,
    /// Maximum clusters the aggregator will consider per window (k_max for
    /// Davies–Bouldin selection).
    pub max_clusters_per_window: usize,
    /// Rows retained per embedding profile (party → aggregator payload cap).
    pub profile_rows: usize,
    /// Cohort size per expert-training round.
    pub participants_per_round: usize,
    /// Local-training hyper-parameters for expert updates.
    pub train: TrainConfig,
    /// Epochs of local fine-tuning for sub-γ clusters.
    pub finetune_epochs: usize,
    /// Significance level for threshold calibration.
    pub calibration_p_value: f32,
    /// Disable the latent memory (ablation: every shift spawns an expert).
    pub disable_memory: bool,
    /// Disable consolidation (ablation: experts never merge).
    pub disable_consolidation: bool,
    /// Use uniform instead of FLIPS selection (ablation).
    pub uniform_selection: bool,
    /// Wire codec for every expert round's broadcasts and uploads.
    pub codec: CodecSpec,
}

impl Default for ShiftExConfig {
    fn default() -> Self {
        Self {
            delta_cov: None,
            delta_label: None,
            tau: 0.995,
            epsilon_factor: 1.0,
            gamma_min_cluster: 2,
            max_experts: 8,
            memory_beta: 0.7,
            max_clusters_per_window: 4,
            profile_rows: 64,
            participants_per_round: 10,
            train: TrainConfig::default(),
            finetune_epochs: 2,
            calibration_p_value: 0.05,
            disable_memory: false,
            disable_consolidation: false,
            uniform_selection: false,
            codec: CodecSpec::dense(),
        }
    }
}

impl ShiftExConfig {
    /// Validates invariants; called by [`crate::ShiftEx::new`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.tau), "tau must be in [0,1]");
        assert!(self.epsilon_factor > 0.0, "epsilon_factor must be positive");
        assert!(
            self.max_experts >= 1,
            "need capacity for at least one expert"
        );
        assert!(
            (0.0..=1.0).contains(&self.memory_beta),
            "memory_beta must be in [0,1]"
        );
        assert!(
            self.max_clusters_per_window >= 1,
            "need at least one cluster"
        );
        assert!(self.profile_rows >= 2, "profiles need at least two rows");
        assert!(
            self.calibration_p_value > 0.0 && self.calibration_p_value < 1.0,
            "calibration p-value must be in (0,1)"
        );
        if let Some(d) = self.delta_cov {
            assert!(d > 0.0, "delta_cov must be positive");
        }
        if let Some(d) = self.delta_label {
            assert!(d > 0.0, "delta_label must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ShiftExConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "tau must be in [0,1]")]
    fn rejects_bad_tau() {
        let cfg = ShiftExConfig {
            tau: 1.5,
            ..ShiftExConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "delta_cov must be positive")]
    fn rejects_bad_delta() {
        let cfg = ShiftExConfig {
            delta_cov: Some(-1.0),
            ..ShiftExConfig::default()
        };
        cfg.validate();
    }
}
