//! Facility-location expert assignment — Eq. 2 of the paper.
//!
//! The aggregator casts party→expert assignment as a facility-location
//! problem that jointly minimises covariate mismatch (MMD terms), expert
//! creation cost (λ per opened new expert) and label imbalance (μ · JSD of
//! each cohort's aggregate label histogram against the global mix).
//!
//! The joint problem is NP-hard; ShiftEx deploys the modular
//! cluster/match/create pipeline in [`crate::aggregator`]. This module
//! provides the *abstract* problem plus two solvers used by tests and the
//! ablation benches: an exact branch-and-bound for small instances and a
//! marginal-cost greedy that scales linearly.

use serde::{Deserialize, Serialize};
use shiftex_detect::jsd;
use shiftex_tensor::vector;

/// An instance of the Eq. 2 assignment problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentProblem {
    /// `cost[c][k]` = MMD²(P_c(X), P_k(X)) between party `c` and facility
    /// (expert) `k`. Columns cover existing experts first, then candidates.
    pub cost: Vec<Vec<f32>>,
    /// `is_new[k]`: whether facility `k` is a *candidate* new expert whose
    /// opening incurs λ.
    pub is_new: Vec<bool>,
    /// Per-party normalised label histograms.
    pub party_hists: Vec<Vec<f32>>,
    /// Flat cost λ per opened new expert.
    pub lambda: f32,
    /// Label-imbalance weight μ.
    pub mu: f32,
    /// Capacity `U_max`: maximum parties per expert.
    pub u_max: usize,
}

/// A feasible solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// `party_to_facility[c]` = facility index for party `c`.
    pub party_to_facility: Vec<usize>,
    /// Objective value under [`AssignmentProblem::objective`].
    pub objective: f32,
}

impl AssignmentProblem {
    /// Number of parties.
    pub fn num_parties(&self) -> usize {
        self.cost.len()
    }

    /// Number of facilities (existing + candidate).
    pub fn num_facilities(&self) -> usize {
        self.is_new.len()
    }

    /// Validates shape invariants.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions or zero capacity.
    pub fn validate(&self) {
        let f = self.num_facilities();
        assert!(f > 0, "need at least one facility");
        assert!(self.u_max > 0, "capacity must be positive");
        assert_eq!(
            self.party_hists.len(),
            self.cost.len(),
            "histogram count mismatch"
        );
        assert!(
            self.cost.iter().all(|row| row.len() == f),
            "cost row length mismatch"
        );
        assert!(
            self.num_parties() <= f * self.u_max,
            "infeasible: {} parties exceed total capacity {}",
            self.num_parties(),
            f * self.u_max
        );
    }

    /// Evaluates the exact Eq. 2 objective of a complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length mismatches or violates capacity.
    pub fn objective(&self, party_to_facility: &[usize]) -> f32 {
        assert_eq!(
            party_to_facility.len(),
            self.num_parties(),
            "assignment length mismatch"
        );
        let f = self.num_facilities();
        let mut usage = vec![0usize; f];
        let mut mmd_total = 0.0f32;
        for (c, &k) in party_to_facility.iter().enumerate() {
            assert!(k < f, "facility index out of range");
            usage[k] += 1;
            mmd_total += self.cost[c][k];
        }
        assert!(
            usage.iter().all(|&u| u <= self.u_max),
            "capacity violated: usage {usage:?} > {}",
            self.u_max
        );
        let open_new = usage
            .iter()
            .zip(self.is_new.iter())
            .filter(|(&u, &n)| n && u > 0)
            .count();

        // Global mean histogram ȳ and per-cohort aggregate histograms.
        let classes = self.party_hists.first().map_or(0, Vec::len);
        let global = mean_hist(&self.party_hists.iter().collect::<Vec<_>>(), classes);
        let mut imbalance = 0.0f32;
        for k in 0..f {
            let members: Vec<&Vec<f32>> = party_to_facility
                .iter()
                .enumerate()
                .filter(|(_, &kk)| kk == k)
                .map(|(c, _)| &self.party_hists[c])
                .collect();
            if members.is_empty() {
                continue;
            }
            let cohort = mean_hist(&members, classes);
            imbalance += jsd(&cohort, &global);
        }
        mmd_total + self.lambda * open_new as f32 + self.mu * imbalance
    }

    /// Exact solver: exhaustive depth-first search with a running-cost bound.
    /// Exponential (`f^c`); intended for instances with ≤ ~8 parties.
    ///
    /// # Panics
    ///
    /// Panics if the instance is invalid (see [`AssignmentProblem::validate`]).
    pub fn solve_exact(&self) -> Assignment {
        self.validate();
        let c = self.num_parties();
        let f = self.num_facilities();
        let mut best = Assignment {
            party_to_facility: vec![0; c],
            objective: f32::INFINITY,
        };
        let mut current = vec![0usize; c];
        let mut usage = vec![0usize; f];

        // DFS over assignments; bound with the MMD partial sum (all other
        // terms are non-negative).
        fn dfs(
            problem: &AssignmentProblem,
            depth: usize,
            partial_mmd: f32,
            current: &mut Vec<usize>,
            usage: &mut Vec<usize>,
            best: &mut Assignment,
        ) {
            if partial_mmd >= best.objective {
                return;
            }
            if depth == problem.num_parties() {
                let obj = problem.objective(current);
                if obj < best.objective {
                    *best = Assignment {
                        party_to_facility: current.clone(),
                        objective: obj,
                    };
                }
                return;
            }
            for k in 0..problem.num_facilities() {
                if usage[k] >= problem.u_max {
                    continue;
                }
                usage[k] += 1;
                current[depth] = k;
                dfs(
                    problem,
                    depth + 1,
                    partial_mmd + problem.cost[depth][k],
                    current,
                    usage,
                    best,
                );
                usage[k] -= 1;
            }
        }
        dfs(self, 0, 0.0, &mut current, &mut usage, &mut best);
        assert!(best.objective.is_finite(), "no feasible assignment found");
        best
    }

    /// Greedy solver: parties in index order pick the facility with the
    /// lowest *marginal* cost (MMD + λ if this opens a new facility +
    /// μ·Δimbalance), respecting capacity. Linear in `parties × facilities`.
    ///
    /// # Panics
    ///
    /// Panics if the instance is invalid.
    pub fn solve_greedy(&self) -> Assignment {
        self.validate();
        let f = self.num_facilities();
        let classes = self.party_hists.first().map_or(0, Vec::len);
        let global = mean_hist(&self.party_hists.iter().collect::<Vec<_>>(), classes);

        let mut usage = vec![0usize; f];
        let mut cohort_sums: Vec<Vec<f32>> = vec![vec![0.0; classes]; f];
        let mut assignment = Vec::with_capacity(self.num_parties());
        for c in 0..self.num_parties() {
            let mut best_k = usize::MAX;
            let mut best_marginal = f32::INFINITY;
            for k in 0..f {
                if usage[k] >= self.u_max {
                    continue;
                }
                let mut marginal = self.cost[c][k];
                if self.is_new[k] && usage[k] == 0 {
                    marginal += self.lambda;
                }
                if classes > 0 {
                    // Imbalance delta for cohort k if c joins it.
                    let before = if usage[k] == 0 {
                        0.0
                    } else {
                        let h: Vec<f32> = cohort_sums[k]
                            .iter()
                            .map(|&s| s / usage[k] as f32)
                            .collect();
                        jsd(&h, &global)
                    };
                    let mut after_sum = cohort_sums[k].clone();
                    vector::axpy(&mut after_sum, 1.0, &self.party_hists[c]);
                    let after: Vec<f32> = after_sum
                        .iter()
                        .map(|&s| s / (usage[k] + 1) as f32)
                        .collect();
                    marginal += self.mu * (jsd(&after, &global) - before);
                }
                if marginal < best_marginal {
                    best_marginal = marginal;
                    best_k = k;
                }
            }
            assert!(best_k != usize::MAX, "greedy found no feasible facility");
            usage[best_k] += 1;
            if classes > 0 {
                let hist = self.party_hists[c].clone();
                vector::axpy(&mut cohort_sums[best_k], 1.0, &hist);
            }
            assignment.push(best_k);
        }
        let objective = self.objective(&assignment);
        Assignment {
            party_to_facility: assignment,
            objective,
        }
    }
}

/// Mean of several histograms (uniform over parties, matching ȳ_t).
fn mean_hist(hists: &[&Vec<f32>], classes: usize) -> Vec<f32> {
    if hists.is_empty() || classes == 0 {
        return vec![0.0; classes];
    }
    let mut out = vec![0.0f32; classes];
    for h in hists {
        vector::axpy(&mut out, 1.0, h);
    }
    vector::scale(&mut out, 1.0 / hists.len() as f32);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Two regimes, two existing experts matched to them, one candidate.
    fn instance(lambda: f32, mu: f32) -> AssignmentProblem {
        AssignmentProblem {
            // Parties 0,1 near facility 0; parties 2,3 near facility 1.
            cost: vec![
                vec![0.1, 2.0, 1.0],
                vec![0.2, 2.1, 1.0],
                vec![2.0, 0.1, 1.0],
                vec![2.2, 0.2, 1.0],
            ],
            is_new: vec![false, false, true],
            party_hists: vec![
                vec![0.9, 0.1],
                vec![0.1, 0.9],
                vec![0.9, 0.1],
                vec![0.1, 0.9],
            ],
            lambda,
            mu,
            u_max: 4,
        }
    }

    #[test]
    fn exact_assigns_parties_to_nearest_experts() {
        let p = instance(1.0, 0.0);
        let sol = p.solve_exact();
        assert_eq!(sol.party_to_facility, vec![0, 0, 1, 1]);
    }

    #[test]
    fn high_lambda_prevents_new_facilities() {
        let mut p = instance(100.0, 0.0);
        // Make the candidate slightly better on pure MMD for everyone.
        for row in p.cost.iter_mut() {
            row[2] = 0.05;
        }
        let sol = p.solve_exact();
        assert!(
            sol.party_to_facility.iter().all(|&k| k != 2),
            "λ=100 must keep the candidate closed: {:?}",
            sol.party_to_facility
        );
    }

    #[test]
    fn low_lambda_opens_better_facility() {
        let mut p = instance(0.01, 0.0);
        for row in p.cost.iter_mut() {
            row[2] = 0.0;
        }
        let sol = p.solve_exact();
        assert!(sol.party_to_facility.iter().all(|&k| k == 2));
    }

    #[test]
    fn capacity_forces_spread() {
        let mut p = instance(0.0, 0.0);
        p.u_max = 2;
        // Everyone prefers facility 0.
        for row in p.cost.iter_mut() {
            row[0] = 0.0;
            row[1] = 0.5;
            row[2] = 1.0;
        }
        let sol = p.solve_exact();
        let to_zero = sol.party_to_facility.iter().filter(|&&k| k == 0).count();
        assert_eq!(to_zero, 2, "capacity 2 must cap facility 0");
    }

    #[test]
    fn mu_term_prefers_balanced_cohorts() {
        // Covariate costs are symmetric between facilities 0 and 1, so with
        // μ > 0 the optimum pairs complementary label histograms.
        let p = AssignmentProblem {
            cost: vec![vec![0.5, 0.5]; 4],
            is_new: vec![false, false],
            party_hists: vec![
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.0, 1.0],
            ],
            lambda: 0.0,
            mu: 5.0,
            u_max: 2,
        };
        let sol = p.solve_exact();
        // Each facility must get one class-0-heavy and one class-1-heavy
        // party (cohort histogram = global mix = [0.5, 0.5]).
        for k in 0..2 {
            let members: Vec<usize> = sol
                .party_to_facility
                .iter()
                .enumerate()
                .filter(|(_, &kk)| kk == k)
                .map(|(c, _)| c)
                .collect();
            let skews: Vec<bool> = members.iter().map(|&c| p.party_hists[c][0] > 0.5).collect();
            assert_eq!(
                skews.iter().filter(|&&s| s).count(),
                1,
                "unbalanced cohort {members:?}"
            );
        }
        assert!(sol.objective < 2.0 + 1e-3);
    }

    #[test]
    fn greedy_is_feasible_and_close_to_exact() {
        for (lambda, mu) in [(0.5f32, 0.0f32), (0.1, 1.0), (2.0, 0.5)] {
            let p = instance(lambda, mu);
            let exact = p.solve_exact();
            let greedy = p.solve_greedy();
            assert_eq!(greedy.party_to_facility.len(), 4);
            assert!(
                greedy.objective >= exact.objective - 1e-5,
                "greedy cannot beat exact"
            );
            assert!(
                greedy.objective <= exact.objective * 2.0 + 1.0,
                "greedy objective {} too far from exact {}",
                greedy.objective,
                exact.objective
            );
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn validates_total_capacity() {
        let mut p = instance(1.0, 0.0);
        p.u_max = 1;
        p.cost.push(vec![0.0, 0.0, 0.0]);
        p.party_hists.push(vec![0.5, 0.5]);
        p.validate();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Greedy always produces a feasible assignment whose recomputed
        /// objective matches what it reports.
        #[test]
        fn prop_greedy_feasible(
            costs in proptest::collection::vec(
                proptest::collection::vec(0.0f32..3.0, 3), 2..7),
            lambda in 0.0f32..2.0,
            mu in 0.0f32..2.0,
        ) {
            let n = costs.len();
            let p = AssignmentProblem {
                cost: costs,
                is_new: vec![false, true, true],
                party_hists: vec![vec![0.5, 0.5]; n],
                lambda,
                mu,
                u_max: n, // always feasible
            };
            let sol = p.solve_greedy();
            prop_assert_eq!(sol.party_to_facility.len(), n);
            let recomputed = p.objective(&sol.party_to_facility);
            prop_assert!((recomputed - sol.objective).abs() < 1e-4);
        }
    }
}
