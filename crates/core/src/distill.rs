//! Expert compression via distillation — the paper's stated future work
//! ("Future work will explore expert compression via online distillation",
//! §9).
//!
//! When the expert pool must shrink below what consolidation alone achieves
//! (e.g. a memory-constrained deployment), several experts can be distilled
//! into one student: the student trains on *unlabeled* reference inputs
//! against the soft predictions of the cohort-weighted teacher mixture. No
//! raw party data is needed — the reference set is the same aggregator-side
//! resource §5.4 already budgets for MMD drift detection.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use shiftex_nn::{softmax_cross_entropy, ArchSpec, Sequential, Sgd};
use shiftex_tensor::{vector, Matrix};

use crate::registry::Expert;
use crate::strategy::build_model;

/// Distillation hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Optimisation epochs over the reference set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Softmax temperature for teacher targets (higher = softer).
    pub temperature: f32,
}

impl Default for DistillConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 32,
            lr: 0.05,
            temperature: 2.0,
        }
    }
}

/// Outcome of a distillation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistillReport {
    /// The student's flattened parameters.
    pub student_params: Vec<f32>,
    /// Fraction of reference inputs where the student's argmax matches the
    /// teacher mixture's argmax (fidelity, in `[0, 1]`).
    pub teacher_agreement: f32,
}

/// Distils `experts` (weighted by cohort size) into a single student model
/// on an unlabeled `reference` input set.
///
/// The teacher target for input `x` is the cohort-weighted average of each
/// expert's tempered softmax; the student minimises cross-entropy against
/// the teacher's argmax with those soft targets as weights (hard-label
/// distillation with mixture targets, which needs no changes to the loss
/// stack).
///
/// # Panics
///
/// Panics if `experts` is empty or `reference` has no rows.
pub fn distill_experts(
    spec: &ArchSpec,
    experts: &[&Expert],
    reference: &Matrix,
    cfg: &DistillConfig,
    rng: &mut StdRng,
) -> DistillReport {
    assert!(
        !experts.is_empty(),
        "distillation needs at least one teacher"
    );
    assert!(reference.rows() > 0, "distillation needs reference inputs");

    // --- Teacher mixture targets.
    let weights: Vec<f32> = experts
        .iter()
        .map(|e| e.cohort_size.max(1) as f32)
        .collect();
    let total_w: f32 = weights.iter().sum();
    let teachers: Vec<Sequential> = experts
        .iter()
        .map(|e| build_model(spec, &e.params))
        .collect();
    let mut mixture = Matrix::zeros(reference.rows(), spec.classes);
    for (teacher, &w) in teachers.iter().zip(weights.iter()) {
        let logits = teacher.forward(reference);
        for r in 0..reference.rows() {
            let probs = vector::softmax(
                &logits
                    .row(r)
                    .iter()
                    .map(|v| v / cfg.temperature)
                    .collect::<Vec<f32>>(),
            );
            let row = mixture.row_mut(r);
            for (m, &p) in row.iter_mut().zip(probs.iter()) {
                *m += (w / total_w) * p;
            }
        }
    }
    let targets: Vec<usize> = mixture.argmax_rows();

    // --- Student training on the teacher targets.
    let mut student = Sequential::build(spec, rng);
    let mut opt = Sgd::new(cfg.lr, 0.9, 1e-4);
    let mut order: Vec<usize> = (0..reference.rows()).collect();
    for _ in 0..cfg.epochs {
        shiftex_tensor::rngx::shuffle(rng, &mut order);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let x = reference.select_rows(chunk);
            let y: Vec<usize> = chunk.iter().map(|&i| targets[i]).collect();
            student.train_batch(&x, &y, &mut opt, None);
        }
    }

    // --- Fidelity.
    let student_preds = student.forward(reference).argmax_rows();
    let agree = student_preds
        .iter()
        .zip(targets.iter())
        .filter(|(a, b)| a == b)
        .count() as f32
        / reference.rows() as f32;
    DistillReport {
        student_params: student.params_flat(),
        teacher_agreement: agree,
    }
}

// Re-export used internally for the teacher pass; keeps the public surface
// of this module to the two types above plus the entry point.
#[allow(unused_imports)]
use softmax_cross_entropy as _;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::LatentMemory;
    use crate::registry::{Expert, ExpertId};
    use rand::SeedableRng;
    use shiftex_data::{ImageShape, PrototypeGenerator};
    use shiftex_detect::EmbeddingProfile;
    use shiftex_nn::TrainConfig;

    fn trained_expert(
        id: u32,
        spec: &ArchSpec,
        data: &shiftex_data::Dataset,
        cohort: usize,
        rng: &mut StdRng,
    ) -> Expert {
        let mut model = Sequential::build(spec, rng);
        let cfg = TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        };
        model.train(data.features(), data.labels(), &cfg, rng);
        let profile = EmbeddingProfile::from_embeddings(&model.embed(data.features()), 32, rng);
        Expert {
            id: ExpertId(id),
            params: model.params_flat(),
            memory: LatentMemory::from_profile(&profile),
            created_window: 0,
            cohort_size: cohort,
        }
    }

    #[test]
    fn student_matches_single_teacher() {
        let mut rng = StdRng::seed_from_u64(0);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 4, &mut rng);
        let spec = ArchSpec::mlp("t", 64, &[24], 4);
        let train = gen.generate_uniform(200, &mut rng);
        let expert = trained_expert(0, &spec, &train, 8, &mut rng);

        let reference = gen.generate_uniform(200, &mut rng);
        let report = distill_experts(
            &spec,
            &[&expert],
            reference.features(),
            &DistillConfig::default(),
            &mut rng,
        );
        assert!(
            report.teacher_agreement > 0.85,
            "student/teacher agreement {}",
            report.teacher_agreement
        );
        assert_eq!(report.student_params.len(), expert.params.len());
    }

    #[test]
    fn mixture_weighting_follows_cohort_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 4, &mut rng);
        let spec = ArchSpec::mlp("t", 64, &[24], 4);
        // Teacher A is trained, teacher B is fresh noise with zero cohort
        // influence beyond the floor — the student should mostly follow A.
        let train = gen.generate_uniform(200, &mut rng);
        let strong = trained_expert(0, &spec, &train, 20, &mut rng);
        let weak = Expert {
            id: ExpertId(1),
            params: Sequential::build(&spec, &mut rng).params_flat(),
            memory: strong.memory.clone(),
            created_window: 0,
            cohort_size: 1,
        };
        let reference = gen.generate_uniform(150, &mut rng);
        let report = distill_experts(
            &spec,
            &[&strong, &weak],
            reference.features(),
            &DistillConfig::default(),
            &mut rng,
        );
        // The student should agree with the mixture, and the mixture is
        // dominated by the strong teacher: compare against it directly.
        let teacher = build_model(&spec, &strong.params);
        let teacher_preds = teacher.forward(reference.features()).argmax_rows();
        let student = build_model(&spec, &report.student_params);
        let student_preds = student.forward(reference.features()).argmax_rows();
        let agree = teacher_preds
            .iter()
            .zip(student_preds.iter())
            .filter(|(a, b)| a == b)
            .count() as f32
            / teacher_preds.len() as f32;
        assert!(agree > 0.7, "student vs strong teacher agreement {agree}");
    }

    #[test]
    #[should_panic(expected = "at least one teacher")]
    fn rejects_empty_teacher_set() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = ArchSpec::mlp("t", 8, &[4], 2);
        let reference = Matrix::zeros(4, 8);
        let _ = distill_experts(&spec, &[], &reference, &DistillConfig::default(), &mut rng);
    }
}
