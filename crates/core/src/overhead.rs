//! Space/time overhead accounting — §5.4 of the paper.
//!
//! "On the party side, each device stores a single d-dimensional feature
//! vector, resulting in O(d) storage per party. On the aggregator side,
//! memory is required for storing expert centroids (O(k·d)), party-to-expert
//! mappings (O(n)), and a fixed-size reference dataset used for MMD-based
//! drift detection. The total aggregator-side space overhead is
//! O(k·d + n·d + m·D)."

use serde::{Deserialize, Serialize};

/// Byte-level space accounting for one deployment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Party-side bytes: one d-dimensional f32 feature vector.
    pub party_bytes: u64,
    /// Expert latent centroids: `k · d` floats.
    pub centroid_bytes: u64,
    /// Party → expert mapping: `n` u32 entries.
    pub mapping_bytes: u64,
    /// Reference dataset for drift detection: `m · D` floats.
    pub reference_bytes: u64,
    /// Stored expert models: `k · P` floats (the "group of experts" term).
    pub expert_model_bytes: u64,
    /// Grand total on the aggregator.
    pub aggregator_total_bytes: u64,
}

/// Computes the §5.4 space envelope.
///
/// * `k` — number of experts
/// * `d` — embedding dimensionality (2048 for ResNet-50)
/// * `n` — number of parties
/// * `m` — reference-set size
/// * `data_dim` — dimensionality `D` of one raw reference sample
/// * `model_params` — parameter count `P` of one expert model
pub fn space_overhead(
    k: usize,
    d: usize,
    n: usize,
    m: usize,
    data_dim: usize,
    model_params: usize,
) -> OverheadReport {
    let f = 4u64; // f32 bytes
    let party_bytes = d as u64 * f;
    let centroid_bytes = (k * d) as u64 * f;
    let mapping_bytes = n as u64 * 4;
    let reference_bytes = (m * data_dim) as u64 * f;
    let expert_model_bytes = (k * model_params) as u64 * f;
    OverheadReport {
        party_bytes,
        centroid_bytes,
        mapping_bytes,
        reference_bytes,
        expert_model_bytes,
        aggregator_total_bytes: centroid_bytes
            + mapping_bytes
            + reference_bytes
            + expert_model_bytes,
    }
}

/// The paper's concrete configuration (§7 "ShiftEx Overheads"): ResNet-50
/// embeddings (d = 2048), 5 expert centroids, 200 parties, 200 reference
/// RGB images at 224×224×3, and up to 6 experts of ≈100 MB each.
pub fn paper_configuration() -> OverheadReport {
    // ResNet-50 ≈ 25.6 M parameters ≈ 100 MB of f32.
    space_overhead(5, 2048, 200, 200, 224 * 224 * 3, 25_600_000)
}

impl OverheadReport {
    /// Pretty multi-line rendering in the units the paper uses.
    pub fn render(&self) -> String {
        fn fmt(bytes: u64) -> String {
            if bytes >= 1 << 20 {
                format!("{:.1} MB", bytes as f64 / (1 << 20) as f64)
            } else if bytes >= 1 << 10 {
                format!("{:.1} KB", bytes as f64 / (1 << 10) as f64)
            } else {
                format!("{bytes} B")
            }
        }
        format!(
            "party storage:        {}\n\
             expert centroids:     {}\n\
             party->expert map:    {}\n\
             reference dataset:    {}\n\
             expert models:        {}\n\
             aggregator total:     {}",
            fmt(self.party_bytes),
            fmt(self.centroid_bytes),
            fmt(self.mapping_bytes),
            fmt(self.reference_bytes),
            fmt(self.expert_model_bytes),
            fmt(self.aggregator_total_bytes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_reported_envelope() {
        let r = paper_configuration();
        // Paper: centroids ≈ 40 KB (5 × 2048 × 4B).
        assert_eq!(r.centroid_bytes, 5 * 2048 * 4);
        // Paper: mappings ≈ 0.8 KB (200 × 4B).
        assert_eq!(r.mapping_bytes, 800);
        // Paper: reference set of 200 × 224×224×3 float32 ≈ 115 MB... the
        // paper reports ≈714 MB *total* including ≈600 MB of experts; our
        // total must land in the same few-hundred-MB envelope.
        let total_mb = r.aggregator_total_bytes as f64 / (1u64 << 20) as f64;
        assert!(
            (300.0..2000.0).contains(&total_mb),
            "total {total_mb} MB outside paper envelope"
        );
    }

    #[test]
    fn party_cost_is_linear_in_d() {
        let a = space_overhead(1, 100, 1, 1, 1, 1);
        let b = space_overhead(1, 200, 1, 1, 1, 1);
        assert_eq!(b.party_bytes, 2 * a.party_bytes);
    }

    #[test]
    fn render_mentions_totals() {
        let r = paper_configuration();
        let s = r.render();
        assert!(s.contains("aggregator total"));
        assert!(s.contains("MB"));
    }
}
