//! Latent memory: exponential-moving-average embedding signatures that let
//! recurring covariate regimes reuse existing experts (§5.2.2).

use serde::{Deserialize, Serialize};
use shiftex_detect::EmbeddingProfile;
use shiftex_tensor::{stats, Matrix};

/// The latent signature `M(k)` of one expert: an EMA of the mean embedding
/// of the cohorts it has served, plus a bounded sample of recent embeddings
/// for MMD comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatentMemory {
    ema_mean: Vec<f32>,
    sample: Matrix,
    updates: usize,
}

impl LatentMemory {
    /// Initialises a memory from the first profile an expert serves.
    pub fn from_profile(profile: &EmbeddingProfile) -> Self {
        Self {
            ema_mean: profile.mean().to_vec(),
            sample: profile.sample().clone(),
            updates: 1,
        }
    }

    /// EMA mean embedding.
    pub fn mean(&self) -> &[f32] {
        &self.ema_mean
    }

    /// Retained embedding sample.
    pub fn sample(&self) -> &Matrix {
        &self.sample
    }

    /// Number of updates applied (including initialisation).
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Folds a new cohort profile into the memory:
    /// `mean ← β·mean + (1−β)·new_mean`, and the sample is replaced by the
    /// newest profile's sample (most recent regime snapshot).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or `beta ∉ [0,1]`.
    pub fn update(&mut self, profile: &EmbeddingProfile, beta: f32) {
        assert_eq!(
            profile.dim(),
            self.ema_mean.len(),
            "memory dimension mismatch"
        );
        self.ema_mean = stats::ema_update(&self.ema_mean, profile.mean(), beta);
        self.sample = profile.sample().clone();
        self.updates += 1;
    }

    /// MMD² between the memory's sample and a candidate profile — the
    /// matching score `MMD(P̄_j(X), M(k))` of §5.2.2.
    pub fn mmd_to(&self, profile: &EmbeddingProfile) -> f32 {
        EmbeddingProfile::from_sample(self.sample.clone()).mmd_to(profile)
    }

    /// Like [`LatentMemory::mmd_to`] but under a fixed calibrated kernel,
    /// making scores comparable to the detection threshold.
    pub fn mmd_to_with(
        &self,
        profile: &EmbeddingProfile,
        kernel: &shiftex_detect::RbfKernel,
    ) -> f32 {
        EmbeddingProfile::from_sample(self.sample.clone()).mmd_to_with(profile, kernel)
    }

    /// Merges two memories (expert consolidation), weighting the EMA means
    /// by each expert's cohort size and keeping the larger sample.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or both weights are zero.
    pub fn merge(&self, other: &LatentMemory, w_self: f32, w_other: f32) -> LatentMemory {
        let mean = shiftex_tensor::vector::weighted_mean(
            &[&self.ema_mean, &other.ema_mean],
            &[w_self, w_other],
        );
        let sample = if self.sample.rows() >= other.sample.rows() {
            self.sample.clone()
        } else {
            other.sample.clone()
        };
        LatentMemory {
            ema_mean: mean,
            sample,
            updates: self.updates + other.updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(mean: f32, seed: u64) -> EmbeddingProfile {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::randn(32, 4, mean, 0.5, &mut rng);
        EmbeddingProfile::from_embeddings(&m, 32, &mut rng)
    }

    #[test]
    fn init_copies_profile() {
        let p = profile(1.0, 0);
        let mem = LatentMemory::from_profile(&p);
        assert_eq!(mem.mean(), p.mean());
        assert_eq!(mem.updates(), 1);
    }

    #[test]
    fn update_moves_mean_towards_new_profile() {
        let p0 = profile(0.0, 1);
        let p1 = profile(10.0, 2);
        let mut mem = LatentMemory::from_profile(&p0);
        mem.update(&p1, 0.5);
        let m = shiftex_tensor::vector::mean(mem.mean());
        assert!(
            m > 2.0 && m < 8.0,
            "EMA mean should be between regimes: {m}"
        );
        assert_eq!(mem.updates(), 2);
    }

    #[test]
    fn matching_score_prefers_own_regime() {
        let p_fog = profile(3.0, 3);
        let p_fog2 = profile(3.0, 4);
        let p_snow = profile(-3.0, 5);
        let mem = LatentMemory::from_profile(&p_fog);
        assert!(mem.mmd_to(&p_fog2) < mem.mmd_to(&p_snow));
    }

    #[test]
    fn merge_blends_means() {
        let a = LatentMemory::from_profile(&profile(0.0, 6));
        let b = LatentMemory::from_profile(&profile(4.0, 7));
        let merged = a.merge(&b, 1.0, 1.0);
        let m = shiftex_tensor::vector::mean(merged.mean());
        assert!(m > 1.0 && m < 3.0, "merged mean {m}");
        assert_eq!(merged.updates(), 2);
    }

    #[test]
    fn beta_one_freezes_memory() {
        let p0 = profile(0.0, 8);
        let p1 = profile(5.0, 9);
        let mut mem = LatentMemory::from_profile(&p0);
        let before = mem.mean().to_vec();
        mem.update(&p1, 1.0);
        assert_eq!(mem.mean(), &before[..]);
    }
}
