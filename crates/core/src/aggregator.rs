//! Aggregator-side ShiftEx — the paper's **Algorithm 2**.
//!
//! Per window: receive party shift statistics, threshold them into the
//! shifted set, cluster shifted parties by latent profile, match clusters to
//! existing experts through the latent memory (or create new experts),
//! train each expert with FLIPS label-balanced cohorts, locally fine-tune
//! sub-γ clusters, and consolidate near-duplicate experts.

use std::borrow::Borrow;
use std::collections::BTreeMap;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use shiftex_cluster::choose_k;
use shiftex_detect::{CalibratedThresholds, EmbeddingProfile, RbfKernel, ThresholdCalibrator};
use shiftex_fl::{
    aggregate_robust, run_round, FederatedAlgorithm, FoldPolicy, ParticipantSelector, Party,
    PartyId, PartyInfo, PopulationView, RoundConfig, UniformSelector, UpdateVerdict,
    WeightedUpdate,
};
use shiftex_flips::FlipsSelector;
use shiftex_nn::{train_local_params, ArchSpec, Sequential, TrainConfig};
use shiftex_tensor::Matrix;

use crate::config::ShiftExConfig;
use crate::consolidate::{consolidate_experts, MergeEvent};
use crate::party::{compute_shift_stats, ShiftStats};
use crate::registry::{ExpertId, ExpertRegistry};
use crate::strategy::{build_model, evaluate_assigned_refs, evaluate_assigned_view};

/// Upper bound on the parties contributing embeddings to threshold
/// calibration. The split-half null needs a representative sample, not the
/// census: pooling every party's embeddings makes the median-heuristic
/// kernel fit quadratic in population size (hopeless at 10k+ parties), so
/// calibration strides evenly across the id space instead. Populations at
/// or below the cap use every party — bit-identical to the uncapped code.
const CALIBRATION_MAX_PARTIES: usize = 64;

/// How the aggregator reaches enrolled members: by id, one at a time —
/// either a liveness-filtered [`PopulationView`] (parties materialize
/// lazily and are dropped after the closure) or a resident slice (the
/// legacy representation the public slice APIs keep).
trait MemberAccess {
    /// Member ids in iteration order.
    fn member_ids(&self) -> Vec<PartyId>;
    /// Whether `id` is an enrolled member.
    fn contains(&self, id: PartyId) -> bool;
    /// Borrows `id`'s party for the duration of `f`.
    fn with_member<R>(&self, id: PartyId, f: impl FnOnce(&Party) -> R) -> Option<R>;
    /// `id`'s publishable metadata.
    fn member_info(&self, id: PartyId) -> Option<PartyInfo>;
}

impl MemberAccess for PopulationView<'_> {
    fn member_ids(&self) -> Vec<PartyId> {
        self.ids().to_vec()
    }
    fn contains(&self, id: PartyId) -> bool {
        PopulationView::contains(self, id)
    }
    fn with_member<R>(&self, id: PartyId, f: impl FnOnce(&Party) -> R) -> Option<R> {
        self.with_party(id, f)
    }
    fn member_info(&self, id: PartyId) -> Option<PartyInfo> {
        self.info(id)
    }
}

/// Resident-slice access for the legacy `&[Party]` / `&[&Party]` APIs.
struct SliceAccess<'a, P: Borrow<Party>> {
    items: &'a [P],
    index: BTreeMap<PartyId, usize>,
}

impl<'a, P: Borrow<Party>> SliceAccess<'a, P> {
    fn new(items: &'a [P]) -> Self {
        let index = items
            .iter()
            .enumerate()
            .map(|(i, p)| (p.borrow().id(), i))
            .collect();
        Self { items, index }
    }
}

impl<P: Borrow<Party>> MemberAccess for SliceAccess<'_, P> {
    fn member_ids(&self) -> Vec<PartyId> {
        self.items.iter().map(|p| p.borrow().id()).collect()
    }
    fn contains(&self, id: PartyId) -> bool {
        self.index.contains_key(&id)
    }
    fn with_member<R>(&self, id: PartyId, f: impl FnOnce(&Party) -> R) -> Option<R> {
        self.index.get(&id).map(|&i| f(self.items[i].borrow()))
    }
    fn member_info(&self, id: PartyId) -> Option<PartyInfo> {
        self.with_member(id, |p| p.info())
    }
}

/// What happened in one window of aggregator-side processing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Window index (1-based; 0 is bootstrap).
    pub window: usize,
    /// Parties whose MMD exceeded `δ_cov`.
    pub cov_shifted: Vec<PartyId>,
    /// Parties whose JSD exceeded `δ_label`.
    pub label_shifted: Vec<PartyId>,
    /// Number of covariate clusters formed among shifted parties.
    pub num_clusters: usize,
    /// Experts created this window.
    pub created: Vec<ExpertId>,
    /// Experts reused via latent-memory matching this window.
    pub reused: Vec<ExpertId>,
    /// Parties sent to local fine-tuning (cluster smaller than γ).
    pub finetuned: Vec<PartyId>,
    /// Consolidation merges performed.
    pub merges: Vec<MergeEvent>,
    /// Post-window cohort sizes per expert (the expert-distribution figures).
    pub cohort_sizes: Vec<(ExpertId, usize)>,
    /// Threshold on MMD² in force this window.
    pub delta_cov: f32,
    /// Threshold on JSD in force this window.
    pub delta_label: f32,
}

/// The ShiftEx middleware: expert registry + assignment map + detection
/// thresholds, orchestrated per window.
#[derive(Debug)]
pub struct ShiftEx {
    cfg: ShiftExConfig,
    spec: ArchSpec,
    registry: ExpertRegistry,
    assignment: BTreeMap<PartyId, ExpertId>,
    /// Personalised parameters for parties in sub-γ clusters.
    personal: BTreeMap<PartyId, Vec<f32>>,
    thresholds: Option<CalibratedThresholds>,
    /// Kernel fixed at calibration time; all MMD scores (detection, memory
    /// matching) use this bandwidth so they are comparable to `δ_cov`.
    kernel: Option<RbfKernel>,
    /// θ0 — the bootstrap template cloned for new experts (Algorithm 2
    /// line 20).
    bootstrap_params: Vec<f32>,
    /// Frozen encoder parameters for embedding extraction. Fixed at the end
    /// of the bootstrap phase so profiles are comparable across windows,
    /// parties and the latent memory (the paper's "reliance on frozen
    /// encoders", §9).
    encoder_params: Vec<f32>,
    window: usize,
    stats: BTreeMap<PartyId, ShiftStats>,
    last_report: Option<WindowReport>,
}

impl ShiftEx {
    /// Creates a ShiftEx instance with a freshly initialised model template.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ShiftExConfig, spec: ArchSpec, rng: &mut StdRng) -> Self {
        cfg.validate();
        let bootstrap_params = Sequential::build(&spec, rng).params_flat();
        Self {
            cfg,
            spec,
            registry: ExpertRegistry::new(),
            assignment: BTreeMap::new(),
            personal: BTreeMap::new(),
            thresholds: None,
            kernel: None,
            encoder_params: bootstrap_params.clone(),
            bootstrap_params,
            window: 0,
            stats: BTreeMap::new(),
            last_report: None,
        }
    }

    /// The architecture every expert shares.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Configuration in force.
    pub fn config(&self) -> &ShiftExConfig {
        &self.cfg
    }

    /// Number of live experts.
    pub fn num_experts(&self) -> usize {
        self.registry.len().max(1)
    }

    /// The expert registry.
    pub fn registry(&self) -> &ExpertRegistry {
        &self.registry
    }

    /// Current party → expert assignment.
    pub fn assignments(&self) -> &BTreeMap<PartyId, ExpertId> {
        &self.assignment
    }

    /// Calibrated thresholds, once available.
    pub fn thresholds(&self) -> Option<CalibratedThresholds> {
        self.thresholds
    }

    /// Report of the most recent window.
    pub fn last_report(&self) -> Option<&WindowReport> {
        self.last_report.as_ref()
    }

    /// The frozen encoder parameters used for embedding extraction
    /// (fixed at the end of the bootstrap phase).
    pub fn encoder_params(&self) -> &[f32] {
        &self.encoder_params
    }

    /// Current window index (0 until the first `process_window`).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Personalised (sub-γ fine-tuned) parameters currently in force.
    pub fn personal_params(&self) -> impl Iterator<Item = (PartyId, &[f32])> {
        self.personal.iter().map(|(p, v)| (*p, v.as_slice()))
    }

    /// Restores serving state (used by [`crate::snapshot`]).
    pub(crate) fn restore_parts(
        &mut self,
        window: usize,
        registry: ExpertRegistry,
        assignment: Vec<(PartyId, ExpertId)>,
        personal: Vec<(PartyId, Vec<f32>)>,
        thresholds: Option<CalibratedThresholds>,
    ) {
        assert!(!registry.is_empty(), "cannot restore an empty registry");
        self.window = window;
        // The first expert's parameters double as encoder/θ0 on restore;
        // they were frozen from the same model at snapshot time.
        let first = registry.ids()[0];
        let params = registry.live(first).params.clone();
        self.encoder_params = params.clone();
        self.bootstrap_params = params;
        self.registry = registry;
        self.assignment = assignment.into_iter().collect();
        self.personal = personal.into_iter().collect();
        self.thresholds = thresholds;
        self.stats.clear();
        self.kernel = None; // re-derived at the next calibration
    }

    /// The most recent shift statistics per party (diagnostics, TEE export).
    pub fn party_stats(&self) -> impl Iterator<Item = &ShiftStats> {
        self.stats.values()
    }

    /// Bootstrap phase (§4.1): creates expert 0 from the template, assigns
    /// every party to it, runs `rounds` FLIPS-balanced federated rounds, and
    /// records each party's initial profile.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is empty.
    pub fn bootstrap(&mut self, parties: &[Party], rounds: usize, rng: &mut StdRng) {
        self.bootstrap_impl(&SliceAccess::new(parties), rounds, rng);
    }

    fn bootstrap_impl<M: MemberAccess>(&mut self, parties: &M, rounds: usize, rng: &mut StdRng) {
        let ids = parties.member_ids();
        assert!(!ids.is_empty(), "bootstrap needs parties");
        self.window = 0;
        // Provisional stats (for FLIPS label histograms during the burn-in
        // rounds) under the untrained template. Parties are visited one at a
        // time so a lazy population only ever has one resident member here.
        let template = build_model(&self.spec, &self.bootstrap_params);
        let provisional: Vec<ShiftStats> = ids
            .iter()
            .filter_map(|&id| {
                parties.with_member(id, |p| {
                    compute_shift_stats(p, &template, self.cfg.profile_rows, None, rng)
                })
            })
            .collect();
        let profile_refs: Vec<&EmbeddingProfile> = provisional.iter().map(|s| &s.profile).collect();
        let pooled = EmbeddingProfile::pool(&profile_refs, self.cfg.profile_rows * 2, rng);
        let expert0 = self
            .registry
            .create(self.bootstrap_params.clone(), &pooled, 0);
        for &id in &ids {
            self.assignment.insert(id, expert0);
        }
        for s in provisional {
            self.stats.insert(s.party, s);
        }
        self.refresh_cohort_sizes();
        for _ in 0..rounds {
            self.train_round_impl(parties, rng);
        }
        // Freeze the encoder at the bootstrap-trained global model and keep
        // θ0 = that model as the clone template for new experts.
        let trained = self.registry.live(expert0).params.clone();
        self.bootstrap_params = trained.clone();
        self.encoder_params = trained;

        // Recompute stats and the expert-0 latent signature under the frozen
        // encoder so every later comparison shares one embedding space.
        let encoder = build_model(&self.spec, &self.encoder_params);
        let final_stats: Vec<ShiftStats> = ids
            .iter()
            .filter_map(|&id| {
                parties.with_member(id, |p| {
                    compute_shift_stats(p, &encoder, self.cfg.profile_rows, None, rng)
                })
            })
            .collect();
        let profile_refs: Vec<&EmbeddingProfile> = final_stats.iter().map(|s| &s.profile).collect();
        let pooled = EmbeddingProfile::pool(&profile_refs, self.cfg.profile_rows * 2, rng);
        self.registry.live_mut(expert0).memory = crate::memory::LatentMemory::from_profile(&pooled);
        self.stats = final_stats.into_iter().map(|s| (s.party, s)).collect();
    }

    /// Processes one new window (Algorithm 2 body). Parties' data must have
    /// been advanced first.
    pub fn process_window(
        &mut self,
        parties: &[impl Borrow<Party>],
        rng: &mut StdRng,
    ) -> WindowReport {
        self.process_window_impl(&SliceAccess::new(parties), rng)
    }

    fn process_window_impl<M: MemberAccess>(
        &mut self,
        parties: &M,
        rng: &mut StdRng,
    ) -> WindowReport {
        self.window += 1;
        if self.window == 1 {
            // End of the burn-in: W0 training (however it was driven — via
            // `bootstrap(…, rounds)` or external `train_round` calls) is
            // complete, so *now* freeze the encoder and the θ0 clone
            // template at the trained global model, and re-tag expert 0's
            // latent memory in the frozen embedding space.
            self.freeze_encoder_impl(parties, rng);
        }
        // --- Thresholds and kernel: calibrate lazily from the previous
        // (stable) window before any score is computed, so every MMD below
        // shares the calibrated bandwidth.
        let thresholds = self.ensure_thresholds_impl(parties, rng);

        // --- Party side (Algorithm 1): compute and "transmit" statistics.
        // All embeddings come from the frozen encoder so windows, parties
        // and the latent memory share one comparable embedding space. Each
        // member is materialized, summarised, and dropped in turn — only
        // the O(profile_rows) statistics stay resident.
        let encoder = build_model(&self.spec, &self.encoder_params);
        let kernel = self.kernel;
        let all_stats: Vec<ShiftStats> = parties
            .member_ids()
            .into_iter()
            .filter_map(|id| {
                parties.with_member(id, |party| {
                    compute_shift_stats(
                        party,
                        &encoder,
                        self.cfg.profile_rows,
                        kernel.as_ref(),
                        rng,
                    )
                })
            })
            .collect();

        // --- Detection.
        let cov_shifted: Vec<PartyId> = all_stats
            .iter()
            .filter(|s| s.mmd > thresholds.delta_cov)
            .map(|s| s.party)
            .collect();
        let label_shifted: Vec<PartyId> = all_stats
            .iter()
            .filter(|s| s.jsd > thresholds.delta_label)
            .map(|s| s.party)
            .collect();
        let mut shifted: Vec<PartyId> = cov_shifted.clone();
        for id in &label_shifted {
            if !shifted.contains(id) {
                shifted.push(*id);
            }
        }

        let mut report = WindowReport {
            window: self.window,
            cov_shifted,
            label_shifted,
            num_clusters: 0,
            created: Vec::new(),
            reused: Vec::new(),
            finetuned: Vec::new(),
            merges: Vec::new(),
            cohort_sizes: Vec::new(),
            delta_cov: thresholds.delta_cov,
            delta_label: thresholds.delta_label,
        };

        let stats_by_id: BTreeMap<PartyId, &ShiftStats> =
            all_stats.iter().map(|s| (s.party, s)).collect();

        if !shifted.is_empty() {
            // --- Cluster shifted parties on their latent profile means.
            let points: Vec<Vec<f32>> = shifted
                .iter()
                .map(|id| stats_by_id[id].profile.mean().to_vec())
                .collect();
            let selection = choose_k(&points, self.cfg.max_clusters_per_window, rng);
            let groups = selection.result.groups();
            report.num_clusters = groups.len();

            for group in &groups {
                let members: Vec<PartyId> = group.iter().map(|&i| shifted[i]).collect();
                if members.is_empty() {
                    continue;
                }
                let profiles: Vec<&EmbeddingProfile> =
                    members.iter().map(|id| &stats_by_id[id].profile).collect();
                let pooled = EmbeddingProfile::pool(&profiles, self.cfg.profile_rows * 2, rng);

                if members.len() >= self.cfg.gamma_min_cluster {
                    let target = self.match_or_create(&pooled, thresholds.delta_cov, &mut report);
                    for id in &members {
                        self.assignment.insert(*id, target);
                        self.personal.remove(id);
                    }
                } else {
                    // Sub-γ cluster: local fine-tuning on the assigned expert.
                    for id in &members {
                        let base = self.personal.get(id).cloned().unwrap_or_else(|| {
                            self.registry.live(self.expert_of(*id)).params.clone()
                        });
                        let mut cfg = self.cfg.train;
                        cfg.epochs = self.cfg.finetune_epochs;
                        // Members are drawn from `parties`' own stats lines
                        // above, so the lookup always lands.
                        let fit = parties.with_member(*id, |party| {
                            train_local_params(
                                &self.spec,
                                &base,
                                party.train_features(),
                                party.train_labels(),
                                &cfg,
                                rng,
                            )
                        });
                        if let Some(fit) = fit {
                            self.personal.insert(*id, fit.params);
                            report.finetuned.push(*id);
                        }
                    }
                }
            }
        }

        // --- Consolidation.
        self.refresh_cohort_sizes();
        if !self.cfg.disable_consolidation {
            let merges = consolidate_experts(
                &mut self.registry,
                self.cfg.tau,
                self.window,
                self.cfg.epsilon_factor * thresholds.delta_cov,
                self.kernel.as_ref(),
            );
            for m in &merges {
                for target in self.assignment.values_mut() {
                    if *target == m.removed {
                        *target = m.kept;
                    }
                }
            }
            report.merges = merges;
            self.refresh_cohort_sizes();
        }

        report.cohort_sizes = self
            .registry
            .iter()
            .map(|e| (e.id, e.cohort_size))
            .collect();

        self.stats = all_stats.into_iter().map(|s| (s.party, s)).collect();
        self.last_report = Some(report.clone());
        report
    }

    /// Latent-memory matching, falling back to expert creation
    /// (§5.2.2 / §5.2.4).
    fn match_or_create(
        &mut self,
        pooled: &EmbeddingProfile,
        delta_cov: f32,
        report: &mut WindowReport,
    ) -> ExpertId {
        let epsilon = self.cfg.epsilon_factor * delta_cov;
        if !self.cfg.disable_memory {
            if let Some((id, score)) = self.registry.best_match(pooled, self.kernel.as_ref()) {
                if score <= epsilon {
                    let beta = self.cfg.memory_beta;
                    self.registry.live_mut(id).memory.update(pooled, beta);
                    report.reused.push(id);
                    return id;
                }
            }
        }
        if self.registry.len() >= self.cfg.max_experts {
            // Capacity guard: reuse the best match even above ε.
            let (id, _) = self
                .registry
                .best_match(pooled, self.kernel.as_ref())
                // lint:allow(panic): guarded — len() >= max_experts >= 1 means a best match exists
                .expect("registry non-empty");
            report.reused.push(id);
            return id;
        }
        let id = self
            .registry
            .create(self.bootstrap_params.clone(), pooled, self.window);
        report.created.push(id);
        id
    }

    /// Runs one communication round: every expert trains on its cohort with
    /// FLIPS (or uniform, per config) selection; personalised parties run a
    /// local step instead.
    pub fn train_round(&mut self, parties: &[Party], rng: &mut StdRng) {
        self.train_round_impl(&SliceAccess::new(parties), rng);
    }

    fn train_round_impl<M: MemberAccess>(&mut self, parties: &M, rng: &mut StdRng) {
        let round_cfg = self.round_config();
        for expert_id in self.registry.ids() {
            let cohort_ids = self.expert_cohort_impl(expert_id, parties, rng);
            // Materialize only this expert's cohort; it is dropped again at
            // the end of the iteration.
            let cohort: Vec<Party> = cohort_ids
                .iter()
                .filter_map(|&id| parties.with_member(id, Party::clone))
                .collect();
            if cohort.is_empty() {
                continue;
            }
            let cohort_refs: Vec<&Party> = cohort.iter().collect();
            let params = self.registry.live(expert_id).params.clone();
            let outcome = run_round(&self.spec, &params, &cohort_refs, &round_cfg, None, rng);
            self.registry.live_mut(expert_id).params = outcome.params;
        }
        self.personal_steps_impl(parties, rng);
    }

    /// Round configuration shared by every expert's federated round.
    fn round_config(&self) -> RoundConfig {
        RoundConfig {
            train: self.cfg.train,
            participants_per_round: self.cfg.participants_per_round,
            parallel: false,
            codec: self.cfg.codec,
        }
    }

    /// Selects this round's cohort for `expert_id` from the (already
    /// liveness-filtered) member view of the population, in selection
    /// order with empty-train parties dropped. Only metadata
    /// ([`PartyInfo`]) is consulted — no party materializes here.
    fn expert_cohort_impl<M: MemberAccess>(
        &self,
        expert_id: ExpertId,
        parties: &M,
        rng: &mut StdRng,
    ) -> Vec<PartyId> {
        let cohort_ids: Vec<PartyId> = self
            .assignment
            .iter()
            .filter(|(pid, &eid)| {
                eid == expert_id && !self.personal.contains_key(pid) && parties.contains(**pid)
            })
            .map(|(pid, _)| *pid)
            .collect();
        if cohort_ids.is_empty() {
            return Vec::new();
        }
        let infos: Vec<PartyInfo> = cohort_ids
            .iter()
            .filter_map(|id| {
                let mut info = parties.member_info(*id)?;
                if let Some(s) = self.stats.get(id) {
                    info.label_hist = s.label_hist.clone();
                }
                Some(info)
            })
            .collect();
        let chosen: Vec<PartyId> = if self.cfg.uniform_selection {
            UniformSelector.select(&infos, self.cfg.participants_per_round, rng)
        } else {
            let mut flips = FlipsSelector::fit(&infos, 4, rng);
            flips.select(&infos, self.cfg.participants_per_round, rng)
        };
        chosen
            .into_iter()
            .filter(|id| {
                parties
                    .member_info(*id)
                    .is_some_and(|info| info.num_samples > 0)
            })
            .collect()
    }

    /// Personalised parties take one local continuation step.
    fn personal_steps_impl<M: MemberAccess>(&mut self, parties: &M, rng: &mut StdRng) {
        let personal_ids: Vec<PartyId> = self.personal.keys().copied().collect();
        for id in personal_ids {
            let base = self.personal[&id].clone();
            let mut cfg = self.cfg.train;
            cfg.epochs = 1;
            let fit = parties
                .with_member(id, |party| {
                    if party.train().is_empty() {
                        return None;
                    }
                    Some(train_local_params(
                        &self.spec,
                        &base,
                        party.train_features(),
                        party.train_labels(),
                        &cfg,
                        rng,
                    ))
                })
                .flatten();
            if let Some(fit) = fit {
                self.personal.insert(id, fit.params);
            }
        }
    }

    /// Population accuracy under the current assignment (personal params
    /// take precedence over the assigned expert's).
    pub fn evaluate(&self, parties: &[Party]) -> f32 {
        let refs: Vec<&Party> = parties.iter().collect();
        self.evaluate_refs(&refs)
    }

    /// Like [`ShiftEx::evaluate`] over borrowed parties (scenario loops
    /// evaluate a liveness-filtered view every round without cloning it).
    pub fn evaluate_refs(&self, parties: &[&Party]) -> f32 {
        evaluate_assigned_refs(&self.spec, parties, |id| {
            if let Some(p) = self.personal.get(&id) {
                p.as_slice()
            } else {
                &self.registry.live(self.expert_of(id)).params
            }
        })
    }

    /// The expert currently assigned to `party` (defaults to the first
    /// expert for parties never seen before).
    pub fn expert_of(&self, party: PartyId) -> ExpertId {
        self.assignment
            .get(&party)
            .copied()
            .unwrap_or_else(|| self.registry.ids()[0])
    }

    fn refresh_cohort_sizes(&mut self) {
        let mut counts: BTreeMap<ExpertId, usize> = BTreeMap::new();
        for eid in self.assignment.values() {
            *counts.entry(*eid).or_default() += 1;
        }
        for e in self.registry.iter_mut() {
            e.cohort_size = counts.get(&e.id).copied().unwrap_or(0);
        }
    }

    /// Freezes the encoder / θ0 template at the current first expert's
    /// (bootstrap-trained) parameters and rebuilds that expert's latent
    /// memory from the previous window's data in the frozen embedding space.
    fn freeze_encoder_impl<M: MemberAccess>(&mut self, parties: &M, rng: &mut StdRng) {
        let expert0 = self.registry.ids()[0];
        let trained = self.registry.live(expert0).params.clone();
        self.bootstrap_params = trained.clone();
        self.encoder_params = trained;
        let encoder = build_model(&self.spec, &self.encoder_params);
        let mut profiles = Vec::new();
        for id in parties.member_ids() {
            let profile = parties
                .with_member(id, |p| {
                    let data = match p.prev_train() {
                        Some(prev) if !prev.is_empty() => prev,
                        _ => p.train(),
                    };
                    if data.is_empty() {
                        return None;
                    }
                    let emb = encoder.embed(data.features());
                    Some(EmbeddingProfile::from_embeddings(
                        &emb,
                        self.cfg.profile_rows,
                        rng,
                    ))
                })
                .flatten();
            if let Some(profile) = profile {
                profiles.push(profile);
            }
        }
        if !profiles.is_empty() {
            let refs: Vec<&EmbeddingProfile> = profiles.iter().collect();
            let pooled = EmbeddingProfile::pool(&refs, self.cfg.profile_rows * 2, rng);
            self.registry.live_mut(expert0).memory =
                crate::memory::LatentMemory::from_profile(&pooled);
        }
    }

    /// Calibrates thresholds from the previous (assumed stable) window's
    /// data if not yet fixed.
    fn ensure_thresholds_impl<M: MemberAccess>(
        &mut self,
        parties: &M,
        rng: &mut StdRng,
    ) -> CalibratedThresholds {
        if let (Some(dc), Some(dl)) = (self.cfg.delta_cov, self.cfg.delta_label) {
            let t = CalibratedThresholds {
                delta_cov: dc,
                delta_label: dl,
            };
            self.thresholds = Some(t);
            return t;
        }
        if let Some(t) = self.thresholds {
            return t;
        }
        // Per-party null distributions under the frozen encoder
        // ("bootstrapped client feature representations assuming no shift",
        // §5): each party's previous-window embeddings are split into random
        // halves and compared with the shared kernel. Pooling *across*
        // parties would confound the null with cross-party heterogeneity
        // (different label mixes), inflating δ_cov and masking real shifts.
        //
        // Calibration strides across the population so at most
        // [`CALIBRATION_MAX_PARTIES`] parties contribute embeddings: the
        // median-heuristic kernel fit below is quadratic in pooled rows.
        // Populations at or below the cap take stride 1 — every party
        // contributes, exactly as before the cap existed.
        let model = build_model(&self.spec, &self.encoder_params);
        let mut mats: Vec<Matrix> = Vec::new();
        let mut hists: Vec<Vec<f32>> = Vec::new();
        let mut count = 0usize;
        let ids = parties.member_ids();
        let stride = ids.len().div_ceil(CALIBRATION_MAX_PARTIES).max(1);
        for id in ids.into_iter().step_by(stride) {
            parties.with_member(id, |p| {
                if let Some(prev) = p.prev_train() {
                    if prev.is_empty() {
                        return;
                    }
                    let emb = model.embed(prev.features());
                    let rows = emb.rows().min(self.cfg.profile_rows);
                    let idx: Vec<usize> = (0..rows).collect();
                    mats.push(emb.select_rows(&idx));
                    hists.push(prev.label_histogram());
                    count = count.max(prev.len());
                }
            });
        }
        let calibrator = ThresholdCalibrator::new(self.cfg.calibration_p_value, 40, 32);
        let mut t = if mats.is_empty() {
            // No stable window available: fall back to permissive defaults.
            CalibratedThresholds {
                delta_cov: 0.05,
                delta_label: 0.1,
            }
        } else {
            // Shared kernel from the pooled stable embeddings.
            let mat_refs: Vec<&Matrix> = mats.iter().collect();
            let pooled = Matrix::vstack(&mat_refs);
            let kernel = shiftex_detect::RbfKernel::median_heuristic(&pooled, &pooled);
            // Within-party split-half null scores.
            let mut nulls = Vec::new();
            for m in &mats {
                if m.rows() < 4 {
                    continue;
                }
                let half = (m.rows() / 2).min(self.cfg.profile_rows);
                for _ in 0..calibrator.iterations.min(20) {
                    let idx =
                        shiftex_tensor::rngx::sample_without_replacement(rng, m.rows(), 2 * half);
                    let a = m.select_rows(&idx[..half]);
                    let b = m.select_rows(&idx[half..]);
                    nulls.push(shiftex_detect::mmd2_unbiased(&a, &b, &kernel));
                }
            }
            let delta_cov = if nulls.is_empty() {
                0.05
            } else {
                shiftex_tensor::stats::quantile(&nulls, 1.0 - self.cfg.calibration_p_value)
            };
            let delta_label = calibrator.calibrate_label(&hists, count.max(1), rng);
            self.kernel = Some(kernel);
            CalibratedThresholds {
                delta_cov,
                delta_label,
            }
        };
        if let Some(dc) = self.cfg.delta_cov {
            t.delta_cov = dc;
        }
        if let Some(dl) = self.cfg.delta_label {
            t.delta_label = dl;
        }
        self.thresholds = Some(t);
        t
    }
}

/// ShiftEx under the unified algorithm API: one update stream per expert
/// (stream key = expert id, stable across merges), per-expert FLIPS
/// cohorts, and personalised parties taking their local step in the
/// post-round hook. Cohort selection is internal — the driver's pluggable
/// selector is not consulted (the paper's design: label-balanced FLIPS per
/// expert).
impl FederatedAlgorithm for ShiftEx {
    fn name(&self) -> &str {
        "ShiftEx"
    }

    fn arch(&self) -> &ArchSpec {
        &self.spec
    }

    fn init(&mut self, parties: &PopulationView<'_>, rng: &mut StdRng) {
        // Rebuild the model template from *this run's* RNG stream (the
        // instance may have been constructed with a throwaway seed), then
        // enrol everyone on expert 0. Burn-in training is the driver's job.
        *self = ShiftEx::new(self.cfg.clone(), self.spec.clone(), rng);
        self.bootstrap_impl(parties, 0, rng);
    }

    fn begin_window(&mut self, _window: usize, members: &PopulationView<'_>, rng: &mut StdRng) {
        // Only enrolled members publish shift statistics for the window; a
        // fully churned-out boundary processes nothing.
        if members.is_empty() {
            return;
        }
        self.process_window_impl(members, rng);
    }

    fn streams(&self) -> Vec<usize> {
        self.registry.ids().iter().map(|id| id.0 as usize).collect()
    }

    fn broadcast_state(&self, key: usize) -> Vec<f32> {
        self.registry.live(ExpertId(key as u32)).params.clone()
    }

    fn train_config(&self, _key: usize) -> TrainConfig {
        self.cfg.train
    }

    fn cohort(
        &mut self,
        key: usize,
        live: &PopulationView<'_>,
        _selector: &mut dyn ParticipantSelector,
        rng: &mut StdRng,
    ) -> Vec<PartyId> {
        self.expert_cohort_impl(ExpertId(key as u32), live, rng)
    }

    fn fold(
        &mut self,
        key: usize,
        ready: &[WeightedUpdate],
        server_lr: f32,
        policy: &FoldPolicy,
    ) -> Vec<UpdateVerdict> {
        if ready.is_empty() {
            return Vec::new();
        }
        let expert = self.registry.live_mut(ExpertId(key as u32));
        let fold = aggregate_robust(&expert.params, ready, server_lr, policy);
        if let Some(params) = fold.params {
            expert.params = params;
        }
        fold.verdicts
    }

    fn end_round(&mut self, live: &PopulationView<'_>, rng: &mut StdRng) {
        self.personal_steps_impl(live, rng);
    }

    fn eval(&self, parties: &PopulationView<'_>) -> f32 {
        evaluate_assigned_view(&self.spec, parties, |id| {
            if let Some(p) = self.personal.get(&id) {
                p.as_slice()
            } else {
                &self.registry.live(self.expert_of(id)).params
            }
        })
    }

    fn model_index(&self, party: PartyId) -> usize {
        let eid = self.expert_of(party);
        self.registry
            .ids()
            .iter()
            .position(|&id| id == eid)
            .unwrap_or(0)
    }

    fn num_models(&self) -> usize {
        self.num_experts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use shiftex_data::{Corruption, ImageShape, PrototypeGenerator, Regime};

    fn make_parties(
        gen: &PrototypeGenerator,
        n: usize,
        samples: usize,
        rng: &mut StdRng,
    ) -> Vec<Party> {
        (0..n)
            .map(|i| {
                Party::new(
                    PartyId(i),
                    gen.generate_uniform(samples, rng),
                    gen.generate_uniform(samples / 2, rng),
                )
            })
            .collect()
    }

    fn advance_with_regime(
        parties: &mut [Party],
        gen: &PrototypeGenerator,
        regime: &Regime,
        which: &[usize],
        samples: usize,
        rng: &mut StdRng,
    ) {
        for (i, p) in parties.iter_mut().enumerate() {
            let (train, test) = if which.contains(&i) {
                (
                    gen.generate_with_regime(samples, regime, rng),
                    gen.generate_with_regime(samples / 2, regime, rng),
                )
            } else {
                (
                    gen.generate_uniform(samples, rng),
                    gen.generate_uniform(samples / 2, rng),
                )
            };
            p.advance_window(train, test);
        }
    }

    fn setup(n: usize) -> (PrototypeGenerator, Vec<Party>, ShiftEx, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 4, &mut rng);
        let parties = make_parties(&gen, n, 48, &mut rng);
        let spec = ArchSpec::mlp("t", 64, &[24, 12], 4);
        let cfg = ShiftExConfig {
            participants_per_round: n,
            ..ShiftExConfig::default()
        };
        let shiftex = ShiftEx::new(cfg, spec, &mut rng);
        (gen, parties, shiftex, rng)
    }

    #[test]
    fn bootstrap_creates_single_expert_and_assigns_all() {
        let (_gen, parties, mut shiftex, mut rng) = setup(6);
        shiftex.bootstrap(&parties, 2, &mut rng);
        assert_eq!(shiftex.num_experts(), 1);
        assert_eq!(shiftex.assignments().len(), 6);
    }

    #[test]
    fn stable_window_creates_no_experts() {
        let (gen, mut parties, mut shiftex, mut rng) = setup(6);
        shiftex.bootstrap(&parties, 3, &mut rng);
        advance_with_regime(&mut parties, &gen, &Regime::clear(), &[], 48, &mut rng);
        let report = shiftex.process_window(&parties, &mut rng);
        assert!(
            report.created.is_empty(),
            "stable window spawned {:?}",
            report.created
        );
        assert_eq!(shiftex.num_experts(), 1);
    }

    #[test]
    fn covariate_shift_spawns_expert_for_shifted_group() {
        let (gen, mut parties, mut shiftex, mut rng) = setup(8);
        shiftex.bootstrap(&parties, 3, &mut rng);
        let fog = Regime::corrupted(Corruption::Fog, 4);
        advance_with_regime(&mut parties, &gen, &fog, &[0, 1, 2, 3], 48, &mut rng);
        let report = shiftex.process_window(&parties, &mut rng);
        assert!(
            report.cov_shifted.len() >= 3,
            "expected most of the fog group detected, got {:?}",
            report.cov_shifted
        );
        assert_eq!(report.created.len(), 1, "one new expert for the fog regime");
        assert_eq!(shiftex.num_experts(), 2);
        // The shifted parties point at the new expert.
        let new_expert = report.created[0];
        for i in 0..4 {
            assert_eq!(shiftex.expert_of(PartyId(i)), new_expert);
        }
    }

    #[test]
    fn recurring_regime_reuses_expert_via_latent_memory() {
        let (gen, mut parties, mut shiftex, mut rng) = setup(8);
        shiftex.bootstrap(&parties, 3, &mut rng);
        let fog = Regime::corrupted(Corruption::Fog, 4);
        let rounds = |s: &mut ShiftEx, parties: &[Party], rng: &mut StdRng| {
            for _ in 0..2 {
                ShiftEx::train_round(s, parties, rng);
            }
        };

        // W1: fog arrives for half the parties → new expert.
        advance_with_regime(&mut parties, &gen, &fog, &[0, 1, 2, 3], 48, &mut rng);
        let r1 = shiftex.process_window(&parties, &mut rng);
        assert_eq!(r1.created.len(), 1);
        let fog_expert = r1.created[0];
        rounds(&mut shiftex, &parties, &mut rng);

        // W2: everyone clear again → shifted-back parties should go to an
        // existing expert (the clear expert 0), not a new one.
        advance_with_regime(&mut parties, &gen, &Regime::clear(), &[], 48, &mut rng);
        let r2 = shiftex.process_window(&parties, &mut rng);
        assert!(r2.created.is_empty(), "clear regime must reuse: {r2:?}");
        rounds(&mut shiftex, &parties, &mut rng);

        // W3: fog recurs for a different subset → reuse the fog expert.
        advance_with_regime(&mut parties, &gen, &fog, &[4, 5, 6, 7], 48, &mut rng);
        let r3 = shiftex.process_window(&parties, &mut rng);
        assert!(
            r3.created.is_empty() && !r3.reused.is_empty(),
            "recurring fog should reuse the fog expert: {r3:?}"
        );
        assert!(
            r3.reused.contains(&fog_expert) || shiftex.registry().get(fog_expert).is_none(),
            "the fog expert (or its consolidation survivor) should be reused: {r3:?}"
        );
    }

    #[test]
    fn training_rounds_improve_shifted_accuracy() {
        let (gen, mut parties, mut shiftex, mut rng) = setup(8);
        shiftex.bootstrap(&parties, 5, &mut rng);
        let fog = Regime::corrupted(Corruption::Fog, 4);
        advance_with_regime(&mut parties, &gen, &fog, &[0, 1, 2, 3], 48, &mut rng);
        shiftex.process_window(&parties, &mut rng);
        let before = shiftex.evaluate(&parties);
        for _ in 0..6 {
            ShiftEx::train_round(&mut shiftex, &parties, &mut rng);
        }
        let after = shiftex.evaluate(&parties);
        assert!(
            after > before,
            "training should recover accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn max_experts_cap_is_respected() {
        let (gen, mut parties, mut shiftex, mut rng) = setup(8);
        shiftex.cfg.max_experts = 2;
        shiftex.bootstrap(&parties, 2, &mut rng);
        for (w, corruption) in [
            Corruption::Fog,
            Corruption::Snow,
            Corruption::ImpulseNoise,
            Corruption::Brightness,
        ]
        .into_iter()
        .enumerate()
        {
            let regime =
                Regime::corrupted(corruption, 5).with_id(shiftex_data::RegimeId(w as u32 + 1));
            advance_with_regime(&mut parties, &gen, &regime, &[0, 1, 2, 3], 48, &mut rng);
            shiftex.process_window(&parties, &mut rng);
        }
        assert!(shiftex.num_experts() <= 2);
    }

    #[test]
    fn scenario_rounds_train_experts_under_churn() {
        use shiftex_fl::{
            run_algorithm_round, AsyncSpec, ChurnSpec, CodecSpec, CommLedger, PopulationStore,
            ScenarioSpec, StragglerSpec,
        };
        let (gen, mut parties, mut shiftex, mut rng) = setup(8);
        shiftex.bootstrap(&parties, 3, &mut rng);
        let fog = Regime::corrupted(Corruption::Fog, 4);
        advance_with_regime(&mut parties, &gen, &fog, &[0, 1, 2, 3], 48, &mut rng);
        shiftex.process_window(&parties, &mut rng);
        assert_eq!(shiftex.num_experts(), 2);

        let ids: Vec<PartyId> = parties.iter().map(|p| p.id()).collect();
        let store = PopulationStore::from_parties(parties.clone());
        let spec = ScenarioSpec::sync(5)
            .with_churn(ChurnSpec::dropout_only(0.2))
            .with_stragglers(StragglerSpec::uniform(
                0.8,
                1.0,
                shiftex_fl::LatePolicy::Defer,
            ))
            .with_async(AsyncSpec {
                min_buffer: 2,
                staleness_alpha: 0.5,
                max_staleness: 3,
                server_lr: 1.0,
            });
        let mut engine = shiftex_fl::ScenarioEngine::new(spec, &ids);
        let ledger = CommLedger::new();
        let before = shiftex.evaluate(&parties);
        let params_before: Vec<Vec<f32>> = shiftex
            .registry()
            .iter()
            .map(|e| e.params.clone())
            .collect();
        for _ in 0..6 {
            run_algorithm_round(
                &mut shiftex,
                &store,
                &mut engine,
                &CodecSpec::dense(),
                &mut UniformSelector,
                &FoldPolicy::Mean,
                Some(&ledger),
                &mut rng,
            );
        }
        let after = shiftex.evaluate(&parties);
        let params_after: Vec<Vec<f32>> = shiftex
            .registry()
            .iter()
            .map(|e| e.params.clone())
            .collect();
        assert_ne!(
            params_before, params_after,
            "experts must keep training under churned async rounds"
        );
        let stats = engine.stats();
        assert!(stats.delivered > 0, "some updates aggregated: {stats:?}");
        assert!(
            stats.deferred > 0,
            "uniform(0,1.6) delays vs deadline 1.0 must defer some: {stats:?}"
        );
        assert!(
            after >= before - 0.1,
            "accuracy must not collapse under churn: {before} -> {after}"
        );
        assert_eq!(
            ledger.totals().aborted_messages,
            stats.dropped_churn + stats.dropped_late
        );
    }

    #[test]
    fn algorithm_interface_reports_models() {
        use shiftex_fl::PopulationStore;
        let (gen, mut parties, mut shiftex, mut rng) = setup(6);
        let init_store = PopulationStore::from_parties(parties.clone());
        FederatedAlgorithm::init(
            &mut shiftex,
            &init_store.view(init_store.party_ids()),
            &mut rng,
        );
        assert_eq!(FederatedAlgorithm::name(&shiftex), "ShiftEx");
        assert_eq!(shiftex.num_models(), 1);
        assert_eq!(shiftex.streams(), vec![0]);
        advance_with_regime(
            &mut parties,
            &gen,
            &Regime::corrupted(Corruption::Fog, 4),
            &[0, 1, 2],
            48,
            &mut rng,
        );
        let store = PopulationStore::from_parties(parties.clone());
        FederatedAlgorithm::begin_window(&mut shiftex, 1, &store.view(store.party_ids()), &mut rng);
        for p in &parties {
            let idx = shiftex.model_index(p.id());
            assert!(idx < shiftex.num_models());
        }
        // Stream keys are expert ids — stable even when experts merge.
        for key in shiftex.streams() {
            assert!(!shiftex.broadcast_state(key).is_empty());
        }
    }
}
