//! The expert registry: the aggregator's pool of specialised global models,
//! each tagged with its covariate regime via a latent-memory signature.

use serde::{Deserialize, Serialize};
use shiftex_detect::EmbeddingProfile;

use crate::memory::LatentMemory;

/// Stable expert identifier (survives consolidation of *other* experts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExpertId(pub u32);

impl std::fmt::Display for ExpertId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expert#{}", self.0)
    }
}

/// One specialised global model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expert {
    /// Identifier.
    pub id: ExpertId,
    /// Flattened model parameters.
    pub params: Vec<f32>,
    /// Latent signature of the covariate regime this expert serves.
    pub memory: LatentMemory,
    /// Window index at which the expert was created.
    pub created_window: usize,
    /// Number of parties currently assigned (refreshed by the aggregator).
    pub cohort_size: usize,
}

/// The aggregator's expert pool (`Θ_t` in Algorithm 2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExpertRegistry {
    experts: Vec<Expert>,
    next_id: u32,
}

impl ExpertRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live experts.
    pub fn len(&self) -> usize {
        self.experts.len()
    }

    /// `true` when no experts exist yet.
    pub fn is_empty(&self) -> bool {
        self.experts.is_empty()
    }

    /// Iterates over live experts.
    pub fn iter(&self) -> impl Iterator<Item = &Expert> {
        self.experts.iter()
    }

    /// Mutable iteration (training updates).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Expert> {
        self.experts.iter_mut()
    }

    /// Looks up an expert.
    pub fn get(&self, id: ExpertId) -> Option<&Expert> {
        self.experts.iter().find(|e| e.id == id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: ExpertId) -> Option<&mut Expert> {
        self.experts.iter_mut().find(|e| e.id == id)
    }

    /// Looks up an expert the caller *knows* is live: the id came out of
    /// this registry (assignment map, `ids()`, `best_match`) and every
    /// consolidation rewrites those references. This is the one audited
    /// place the registry invariant is allowed to panic — callers use it
    /// instead of scattering `.expect("live expert")` through hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown, which means aggregator bookkeeping is
    /// corrupt; continuing would silently train or serve the wrong expert.
    pub fn live(&self, id: ExpertId) -> &Expert {
        match self.get(id) {
            Some(e) => e,
            // lint:allow(panic): a dangling ExpertId is corrupt bookkeeping
            None => panic!("{id} is not in the registry"),
        }
    }

    /// Mutable variant of [`ExpertRegistry::live`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown (see [`ExpertRegistry::live`]).
    pub fn live_mut(&mut self, id: ExpertId) -> &mut Expert {
        match self.get_mut(id) {
            Some(e) => e,
            // lint:allow(panic): a dangling ExpertId is corrupt bookkeeping
            None => panic!("{id} is not in the registry"),
        }
    }

    /// Registers a new expert initialised from `params` and tagged with the
    /// profile that triggered its creation. Returns the new id.
    pub fn create(
        &mut self,
        params: Vec<f32>,
        profile: &EmbeddingProfile,
        window: usize,
    ) -> ExpertId {
        let id = ExpertId(self.next_id);
        self.next_id += 1;
        self.experts.push(Expert {
            id,
            params,
            memory: LatentMemory::from_profile(profile),
            created_window: window,
            cohort_size: 0,
        });
        id
    }

    /// Removes an expert (consolidation), returning it.
    pub fn remove(&mut self, id: ExpertId) -> Option<Expert> {
        let idx = self.experts.iter().position(|e| e.id == id)?;
        Some(self.experts.remove(idx))
    }

    /// Finds the expert whose latent memory best matches `profile`,
    /// returning `(id, mmd_score)` — the `MATCHEXPERT` primitive of
    /// Algorithm 2. When `kernel` is given, scores use the calibrated
    /// bandwidth (comparable to `δ_cov`).
    pub fn best_match(
        &self,
        profile: &EmbeddingProfile,
        kernel: Option<&shiftex_detect::RbfKernel>,
    ) -> Option<(ExpertId, f32)> {
        self.experts
            .iter()
            .map(|e| {
                let score = match kernel {
                    Some(k) => e.memory.mmd_to_with(profile, k),
                    None => e.memory.mmd_to(profile),
                };
                (e.id, score)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// All expert ids, in creation order.
    pub fn ids(&self) -> Vec<ExpertId> {
        self.experts.iter().map(|e| e.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shiftex_tensor::Matrix;

    fn profile(mean: f32, seed: u64) -> EmbeddingProfile {
        let mut rng = StdRng::seed_from_u64(seed);
        EmbeddingProfile::from_embeddings(&Matrix::randn(24, 4, mean, 0.5, &mut rng), 24, &mut rng)
    }

    #[test]
    fn create_assigns_monotonic_ids() {
        let mut reg = ExpertRegistry::new();
        let a = reg.create(vec![0.0], &profile(0.0, 0), 0);
        let b = reg.create(vec![1.0], &profile(1.0, 1), 1);
        assert_eq!(a, ExpertId(0));
        assert_eq!(b, ExpertId(1));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn ids_survive_removal() {
        let mut reg = ExpertRegistry::new();
        let a = reg.create(vec![0.0], &profile(0.0, 0), 0);
        let _b = reg.create(vec![1.0], &profile(1.0, 1), 0);
        reg.remove(a);
        let c = reg.create(vec![2.0], &profile(2.0, 2), 1);
        assert_eq!(c, ExpertId(2), "ids must never be recycled");
        assert!(reg.get(a).is_none());
    }

    #[test]
    fn best_match_picks_closest_regime() {
        let mut reg = ExpertRegistry::new();
        let fog = reg.create(vec![0.0], &profile(5.0, 3), 0);
        let snow = reg.create(vec![1.0], &profile(-5.0, 4), 0);
        let (m, score) = reg
            .best_match(&profile(5.0, 5), None)
            .expect("non-empty registry");
        assert_eq!(m, fog);
        assert!(score < reg.get(snow).unwrap().memory.mmd_to(&profile(5.0, 6)));
    }

    #[test]
    fn best_match_on_empty_is_none() {
        let reg = ExpertRegistry::new();
        assert!(reg.best_match(&profile(0.0, 7), None).is_none());
    }
}
