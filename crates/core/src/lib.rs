//! ShiftEx: shift-aware mixture-of-experts middleware for continual
//! federated learning — the primary contribution of *"Shift Happens:
//! Mixture of Experts based Continual Adaptation in Federated Learning"*
//! (MIDDLEWARE 2025).
//!
//! The framework detects covariate shift (MMD over penultimate-layer
//! embeddings) and label shift (JSD over label histograms) between
//! consecutive stream windows, clusters shifted parties by latent profile,
//! reuses existing experts through a latent memory, spawns new experts for
//! unseen regimes, trains each expert's cohort with FLIPS label-balanced
//! selection, and periodically consolidates near-duplicate experts.
//!
//! The top-level type is [`ShiftEx`]; each piece of the pipeline is exposed
//! as its own module so the benchmarks and ablations can exercise them in
//! isolation:
//!
//! * [`party`] — party-side shift statistics (paper Algorithm 1)
//! * [`memory`] — latent memory (EMA embedding signatures) for expert reuse
//! * [`registry`] — the expert pool
//! * [`assignment`] — facility-location expert assignment (Eq. 2): exact
//!   branch-and-bound and the modular greedy approximation
//! * [`consolidate`] — cosine-similarity expert merging
//! * [`aggregator`] — the window-level orchestration (paper Algorithm 2)
//! * [`strategy`] — shared evaluation helpers for
//!   [`shiftex_fl::FederatedAlgorithm`] implementations
//! * [`overhead`] — §5.4 space/time accounting
//! * [`distill`] — expert compression via distillation (§9 future work)
//! * [`snapshot`] — registry serialisation for aggregator recovery
//!
//! # Example
//!
//! ```
//! use shiftex_core::{ShiftEx, ShiftExConfig};
//! use shiftex_fl::{Party, PartyId};
//! use shiftex_data::{ImageShape, PrototypeGenerator};
//! use shiftex_nn::ArchSpec;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
//! let parties: Vec<Party> = (0..6)
//!     .map(|i| Party::new(PartyId(i), gen.generate_uniform(32, &mut rng),
//!                         gen.generate_uniform(16, &mut rng)))
//!     .collect();
//! let spec = ArchSpec::mlp("demo", 16, &[8], 3);
//! let mut shiftex = ShiftEx::new(ShiftExConfig::default(), spec, &mut rng);
//! shiftex.bootstrap(&parties, 2, &mut rng);
//! assert_eq!(shiftex.num_experts(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod assignment;
mod config;
pub mod consolidate;
pub mod distill;
pub mod memory;
pub mod overhead;
pub mod party;
pub mod registry;
pub mod snapshot;
pub mod strategy;

pub use aggregator::{ShiftEx, WindowReport};
pub use config::ShiftExConfig;
pub use distill::{distill_experts, DistillConfig, DistillReport};
pub use memory::LatentMemory;
pub use party::{compute_shift_stats, ShiftStats};
pub use registry::{Expert, ExpertId, ExpertRegistry};
pub use snapshot::{RegistrySnapshot, SnapshotError};
