//! Shared model-assignment helpers for algorithm implementations — ShiftEx
//! here, FedAvg/FedProx/FLIPS/Fielding/FedDrift in `shiftex-baselines`.
//!
//! The common *interface* every algorithm implements is
//! [`shiftex_fl::FederatedAlgorithm`]: one trait, one generic scenario
//! driver, so the experiment harness sweeps every technique over identical
//! churn/straggler/async/codec regimes. What lives in this module is the
//! evaluation machinery those implementations share: building a model from
//! flat parameters and scoring a population under a per-party parameter
//! assignment.

use rand::rngs::StdRng;
use shiftex_fl::{Party, PartyId, PopulationView};
use shiftex_nn::{ArchSpec, Sequential};

/// Builds a model with the given flat parameters (helper shared by all
/// algorithm implementations).
pub fn build_model(spec: &ArchSpec, params: &[f32]) -> Sequential {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = Sequential::build(spec, &mut rng);
    model.set_params_flat(params);
    model
}

/// Sample-weighted population accuracy where `params_of` supplies each
/// party's assigned parameters.
pub fn evaluate_assigned<'a>(
    spec: &ArchSpec,
    parties: &[Party],
    params_of: impl FnMut(PartyId) -> &'a [f32],
) -> f32 {
    let refs: Vec<&Party> = parties.iter().collect();
    evaluate_assigned_refs(spec, &refs, params_of)
}

/// Like [`evaluate_assigned`] but over borrowed parties — scenario loops
/// evaluate a liveness-filtered view every round and must not pay a deep
/// clone of the population to do so.
pub fn evaluate_assigned_refs<'a>(
    spec: &ArchSpec,
    parties: &[&Party],
    mut params_of: impl FnMut(PartyId) -> &'a [f32],
) -> f32 {
    let mut correct = 0.0f64;
    let mut total = 0usize;
    // Cache built models by parameter pointer identity is overkill here;
    // group parties by identical parameter slices instead.
    let mut cache: Vec<(&[f32], Sequential)> = Vec::new();
    for &party in parties {
        if party.test().is_empty() {
            continue;
        }
        let params = params_of(party.id());
        let slot = match cache
            .iter()
            .position(|(p, _)| std::ptr::eq(p.as_ptr(), params.as_ptr()))
        {
            Some(i) => i,
            None => {
                cache.push((params, build_model(spec, params)));
                cache.len() - 1
            }
        };
        let model = &cache[slot].1;
        let report = model.evaluate(party.test_features(), party.test_labels());
        correct += report.accuracy as f64 * report.n as f64;
        total += report.n;
    }
    if total == 0 {
        0.0
    } else {
        (correct / total as f64) as f32
    }
}

/// Like [`evaluate_assigned_refs`] but streamed through a
/// [`PopulationView`]: each party is materialized transiently in view
/// order and dropped after scoring, so assigned evaluation is
/// O(1)-resident at any population size. Accumulation order, arithmetic,
/// and the parameter-identity model cache are identical to the slice
/// version, so results are bit-identical.
pub fn evaluate_assigned_view<'a>(
    spec: &ArchSpec,
    parties: &PopulationView<'_>,
    mut params_of: impl FnMut(PartyId) -> &'a [f32],
) -> f32 {
    let mut correct = 0.0f64;
    let mut total = 0usize;
    let mut cache: Vec<(&[f32], Sequential)> = Vec::new();
    for &id in parties.ids() {
        parties.with_party(id, |party| {
            if party.test().is_empty() {
                return;
            }
            let params = params_of(id);
            let slot = match cache
                .iter()
                .position(|(p, _)| std::ptr::eq(p.as_ptr(), params.as_ptr()))
            {
                Some(i) => i,
                None => {
                    cache.push((params, build_model(spec, params)));
                    cache.len() - 1
                }
            };
            let model = &cache[slot].1;
            let report = model.evaluate(party.test_features(), party.test_labels());
            correct += report.accuracy as f64 * report.n as f64;
            total += report.n;
        });
    }
    if total == 0 {
        0.0
    } else {
        (correct / total as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use shiftex_data::{ImageShape, PrototypeGenerator};

    #[test]
    fn evaluate_assigned_uses_per_party_models() {
        let mut rng = StdRng::seed_from_u64(0);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 2, &mut rng);
        let parties: Vec<Party> = (0..3)
            .map(|i| {
                Party::new(
                    PartyId(i),
                    gen.generate_uniform(16, &mut rng),
                    gen.generate_uniform(16, &mut rng),
                )
            })
            .collect();
        let spec = ArchSpec::mlp("t", 16, &[6], 2);
        let good = {
            // Train a model on pooled data so it beats random.
            let pooled = shiftex_data::Dataset::concat(&[
                parties[0].train(),
                parties[1].train(),
                parties[2].train(),
            ]);
            let mut m = Sequential::build(&spec, &mut rng);
            let cfg = shiftex_nn::TrainConfig {
                epochs: 25,
                ..Default::default()
            };
            m.train(pooled.features(), pooled.labels(), &cfg, &mut rng);
            m.params_flat()
        };
        let bad = Sequential::build(&spec, &mut StdRng::seed_from_u64(99)).params_flat();

        let acc_good = evaluate_assigned(&spec, &parties, |_| &good);
        let acc_bad = evaluate_assigned(&spec, &parties, |_| &bad);
        assert!(acc_good > acc_bad, "trained {acc_good} vs fresh {acc_bad}");

        // Mixed assignment lands between the two pure assignments.
        let acc_mixed =
            evaluate_assigned(&spec, &parties, |id| if id.0 == 0 { &bad } else { &good });
        assert!(acc_mixed <= acc_good + 1e-6 && acc_mixed >= acc_bad - 1e-6);
    }

    #[test]
    fn build_model_roundtrips_params() {
        let spec = ArchSpec::mlp("t", 4, &[3], 2);
        let mut rng = StdRng::seed_from_u64(1);
        let params = Sequential::build(&spec, &mut rng).params_flat();
        let model = build_model(&spec, &params);
        assert_eq!(model.params_flat(), params);
    }
}
