//! Networked federation over std TCP: real coordinator/worker processes
//! speaking a length-prefixed wire protocol that carries the existing
//! [`shiftex_fl::codec`] frames unchanged.
//!
//! The simulator's round driver already has a transport seam
//! ([`shiftex_fl::CohortTransport`]); this crate provides the networked
//! implementation:
//!
//! * [`frame`] — `[kind][len][payload]` framing and the seven message
//!   kinds (`Hello`, `JoinAck`, `Broadcast`, `JoinChunk`, `Upload`,
//!   `RoundEnd`, `Leave`), with public overhead constants so socket bytes
//!   reconcile exactly against [`CommLedger`](shiftex_fl::CommLedger)
//!   totals;
//! * [`stream`] — a byte-counting stream wrapper, the ground truth for
//!   the wire-byte honesty tests;
//! * [`deadline`] — the per-round wall-clock budget, the crate's only
//!   clock site (everything it decides flows back into deterministic
//!   accounting);
//! * [`coordinator`] — the [`CohortTransport`](shiftex_fl::CohortTransport)
//!   that runs rounds over worker sockets, mapping real socket fates onto
//!   the engine's churn/straggler accounting;
//! * [`worker`] — the party-hosting side: decode broadcasts, train via an
//!   injected closure, upload encoded updates.
//!
//! Dense synchronous rounds over loopback are bit-identical — model
//! parameters and [`CommTotals`](shiftex_fl::CommTotals) — to the
//! in-process driver on the same seed (pinned by the loopback parity
//! test in `shiftex-experiments`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod deadline;
pub mod frame;
pub mod stream;
pub mod worker;

pub use coordinator::{Coordinator, NetStats};
pub use deadline::RoundDeadline;
pub use frame::{
    MsgKind, NetError, BROADCAST_CTX_LEN, FRAME_HEADER_LEN, JOIN_CHUNK_CTX_LEN, MAX_FRAME_LEN,
    PROTO_VERSION, UPLOAD_CTX_LEN,
};
pub use stream::{ByteCounters, CountingStream};
pub use worker::{serve, TrainFn, WorkerConfig, WorkerSummary};
