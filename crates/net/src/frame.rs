//! Length-prefixed message framing and wire-message payload layouts.
//!
//! Every message on a federation socket is one frame:
//!
//! ```text
//! [kind: u8][len: u32 LE][payload: len bytes]
//! ```
//!
//! Payloads of the data-plane kinds ([`MsgKind::Broadcast`],
//! [`MsgKind::JoinChunk`], [`MsgKind::Upload`]) are a small fixed routing
//! context followed by a `shiftex_fl::codec` frame (or join-sync chunk)
//! **unchanged** — the exact bytes the in-process simulator meters through
//! [`CommLedger`](shiftex_fl::CommLedger). The context and frame-header
//! sizes are public constants so the wire-byte honesty tests can equate
//! raw socket byte counts with ledger totals exactly.
//!
//! All integers are little-endian. Everything here is pure byte shuffling
//! over `Read`/`Write` — no sockets, no clocks — so it unit-tests without
//! the network.

use std::fmt;
use std::io::{self, Read, Write};

use shiftex_fl::{CodecError, PartyId};

/// Bytes of the per-message frame header: `[kind: u8][len: u32]`.
pub const FRAME_HEADER_LEN: usize = 5;

/// Routing context preceding a [`MsgKind::Broadcast`] codec frame:
/// `[key: u32][round: u32][party: u64][seed: u64]`.
pub const BROADCAST_CTX_LEN: usize = 24;

/// Routing context preceding a [`MsgKind::JoinChunk`] chunk:
/// `[key: u32][round: u32][party: u64][seed: u64]`. The chunk itself
/// (`[seq: u32][total: u32][slice]`) is byte-identical to what
/// [`JoinSync::wire_len`](shiftex_fl::JoinSync::wire_len) meters.
pub const JOIN_CHUNK_CTX_LEN: usize = 24;

/// Routing context preceding a [`MsgKind::Upload`] update frame:
/// `[key: u32][round: u32]` (the originating party rides the update
/// frame's own metadata).
pub const UPLOAD_CTX_LEN: usize = 8;

/// Wire protocol version carried in `Hello`/`JoinAck`.
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on a single frame's payload — a garbage length prefix must
/// not become a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Message kinds of the federation wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// Worker → coordinator: protocol version + the party ids this worker
    /// process hosts.
    Hello = 0,
    /// Coordinator → worker: registration accepted (echoes the protocol
    /// version and accepted party count).
    JoinAck = 1,
    /// Coordinator → worker: one party's training assignment — routing
    /// context + the encoded global frame (regular or first-contact,
    /// self-describing).
    Broadcast = 2,
    /// Coordinator → worker: one chunk of a chunked first-contact join
    /// sync — routing context + `[seq][total][payload slice]`.
    JoinChunk = 3,
    /// Worker → coordinator: routing context + the encoded
    /// [`ModelUpdate`](shiftex_fl::ModelUpdate) frame.
    Upload = 4,
    /// Coordinator → worker: the round completed (stragglers whose uploads
    /// missed the deadline learn their work was dropped).
    RoundEnd = 5,
    /// Worker → coordinator: graceful departure of the worker's parties.
    Leave = 6,
}

impl MsgKind {
    /// Parses a wire kind byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(Self::Hello),
            1 => Some(Self::JoinAck),
            2 => Some(Self::Broadcast),
            3 => Some(Self::JoinChunk),
            4 => Some(Self::Upload),
            5 => Some(Self::RoundEnd),
            6 => Some(Self::Leave),
            _ => None,
        }
    }
}

/// Everything that can go wrong on a federation socket.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket I/O failed (includes read timeouts).
    Io(io::Error),
    /// A frame carried an unknown kind byte.
    BadKind(u8),
    /// A frame's length prefix exceeded [`MAX_FRAME_LEN`].
    Oversize(usize),
    /// A payload was shorter than its fixed layout requires.
    Truncated(&'static str),
    /// An embedded codec frame failed to decode.
    Codec(CodecError),
    /// The peer violated the protocol (bad version, unexpected message).
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket i/o: {e}"),
            Self::BadKind(b) => write!(f, "unknown message kind byte {b:#04x}"),
            Self::Oversize(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
            Self::Truncated(what) => write!(f, "truncated {what} payload"),
            Self::Codec(e) => write!(f, "embedded codec frame: {e}"),
            Self::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

impl NetError {
    /// Was this a read that timed out (a stalled socket — the peer may
    /// still be alive) rather than a dead connection?
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            Self::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

/// Writes one frame. The header and payload go out in a single
/// `write_all`, and the frame's exact wire size
/// (`FRAME_HEADER_LEN + payload.len()`) is returned for byte accounting.
pub fn write_msg<W: Write>(w: &mut W, kind: MsgKind, payload: &[u8]) -> Result<usize, NetError> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.push(kind as u8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(buf.len())
}

/// Reads one frame, returning its kind and payload. Fails with a
/// timeout-kinded [`NetError::Io`] when the stream's read timeout expires
/// (see [`NetError::is_timeout`]).
pub fn read_msg<R: Read>(r: &mut R) -> Result<(MsgKind, Vec<u8>), NetError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let kind = MsgKind::from_u8(header[0]).ok_or(NetError::BadKind(header[0]))?;
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(NetError::Oversize(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((kind, payload))
}

// ---------------------------------------------------------------------------
// Payload layouts.

fn get_u32(b: &[u8], at: usize, what: &'static str) -> Result<u32, NetError> {
    let s: [u8; 4] = b
        .get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or(NetError::Truncated(what))?;
    Ok(u32::from_le_bytes(s))
}

fn get_u64(b: &[u8], at: usize, what: &'static str) -> Result<u64, NetError> {
    let s: [u8; 8] = b
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or(NetError::Truncated(what))?;
    Ok(u64::from_le_bytes(s))
}

/// `Hello` payload: the party ids a worker hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloMsg {
    /// Protocol version the worker speaks.
    pub proto: u32,
    /// Parties hosted by the connecting worker process.
    pub parties: Vec<PartyId>,
}

/// Encodes a [`HelloMsg`].
pub fn encode_hello(parties: &[PartyId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 * parties.len());
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.extend_from_slice(&(parties.len() as u32).to_le_bytes());
    for p in parties {
        out.extend_from_slice(&(p.0 as u64).to_le_bytes());
    }
    out
}

/// Decodes a [`HelloMsg`].
pub fn decode_hello(payload: &[u8]) -> Result<HelloMsg, NetError> {
    let proto = get_u32(payload, 0, "hello")?;
    let count = get_u32(payload, 4, "hello")? as usize;
    if payload.len() != 8 + 8 * count {
        return Err(NetError::Truncated("hello"));
    }
    let mut parties = Vec::with_capacity(count);
    for i in 0..count {
        parties.push(PartyId(get_u64(payload, 8 + 8 * i, "hello")? as usize));
    }
    Ok(HelloMsg { proto, parties })
}

/// Encodes a `JoinAck` payload: `[proto: u32][accepted: u32]`.
pub fn encode_join_ack(accepted: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.extend_from_slice(&(accepted as u32).to_le_bytes());
    out
}

/// Decodes a `JoinAck` payload, returning `(proto, accepted)`.
pub fn decode_join_ack(payload: &[u8]) -> Result<(u32, usize), NetError> {
    Ok((
        get_u32(payload, 0, "join-ack")?,
        get_u32(payload, 4, "join-ack")? as usize,
    ))
}

/// A decoded `Broadcast` payload: routing context + borrowed codec frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastMsg<'a> {
    /// Update-stream key.
    pub key: usize,
    /// 1-based round index.
    pub round: usize,
    /// Recipient party.
    pub party: PartyId,
    /// The party's pre-drawn local-training seed for this round.
    pub seed: u64,
    /// The encoded global frame, byte-identical to what the ledger
    /// metered (`broadcast_len` of the stream's codec).
    pub frame: &'a [u8],
}

/// Encodes a [`BroadcastMsg`].
pub fn encode_broadcast(m: &BroadcastMsg<'_>) -> Vec<u8> {
    let mut out = Vec::with_capacity(BROADCAST_CTX_LEN + m.frame.len());
    out.extend_from_slice(&(m.key as u32).to_le_bytes());
    out.extend_from_slice(&(m.round as u32).to_le_bytes());
    out.extend_from_slice(&(m.party.0 as u64).to_le_bytes());
    out.extend_from_slice(&m.seed.to_le_bytes());
    out.extend_from_slice(m.frame);
    out
}

/// Decodes a [`BroadcastMsg`], borrowing the frame from `payload`.
pub fn decode_broadcast(payload: &[u8]) -> Result<BroadcastMsg<'_>, NetError> {
    if payload.len() < BROADCAST_CTX_LEN {
        return Err(NetError::Truncated("broadcast"));
    }
    Ok(BroadcastMsg {
        key: get_u32(payload, 0, "broadcast")? as usize,
        round: get_u32(payload, 4, "broadcast")? as usize,
        party: PartyId(get_u64(payload, 8, "broadcast")? as usize),
        seed: get_u64(payload, 16, "broadcast")?,
        frame: &payload[BROADCAST_CTX_LEN..],
    })
}

/// A decoded `JoinChunk` payload: routing context + one join-sync chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinChunkMsg<'a> {
    /// Update-stream key.
    pub key: usize,
    /// 1-based round index.
    pub round: usize,
    /// The joining party.
    pub party: PartyId,
    /// The party's pre-drawn local-training seed for this round.
    pub seed: u64,
    /// Chunk sequence number within the snapshotted frame.
    pub seq: usize,
    /// Total chunks in the frame.
    pub total: usize,
    /// The chunk's payload slice of the encoded first-contact frame.
    pub payload: &'a [u8],
}

/// Encodes a [`JoinChunkMsg`]. The encoded chunk portion
/// (`[seq][total][payload]`) is exactly
/// [`JoinSync::wire_len`](shiftex_fl::JoinSync::wire_len) bytes — what
/// the ledger's `join_chunk_*` counters metered.
pub fn encode_join_chunk(m: &JoinChunkMsg<'_>) -> Vec<u8> {
    let mut out = Vec::with_capacity(JOIN_CHUNK_CTX_LEN + 8 + m.payload.len());
    out.extend_from_slice(&(m.key as u32).to_le_bytes());
    out.extend_from_slice(&(m.round as u32).to_le_bytes());
    out.extend_from_slice(&(m.party.0 as u64).to_le_bytes());
    out.extend_from_slice(&m.seed.to_le_bytes());
    out.extend_from_slice(&(m.seq as u32).to_le_bytes());
    out.extend_from_slice(&(m.total as u32).to_le_bytes());
    out.extend_from_slice(m.payload);
    out
}

/// Decodes a [`JoinChunkMsg`], borrowing the chunk payload.
pub fn decode_join_chunk(payload: &[u8]) -> Result<JoinChunkMsg<'_>, NetError> {
    if payload.len() < JOIN_CHUNK_CTX_LEN + 8 {
        return Err(NetError::Truncated("join-chunk"));
    }
    Ok(JoinChunkMsg {
        key: get_u32(payload, 0, "join-chunk")? as usize,
        round: get_u32(payload, 4, "join-chunk")? as usize,
        party: PartyId(get_u64(payload, 8, "join-chunk")? as usize),
        seed: get_u64(payload, 16, "join-chunk")?,
        seq: get_u32(payload, 24, "join-chunk")? as usize,
        total: get_u32(payload, 28, "join-chunk")? as usize,
        payload: &payload[JOIN_CHUNK_CTX_LEN + 8..],
    })
}

/// A decoded `Upload` payload: routing context + borrowed update frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadMsg<'a> {
    /// Update-stream key.
    pub key: usize,
    /// 1-based round index the update was trained for.
    pub round: usize,
    /// The encoded update frame, byte-identical to what the ledger meters
    /// (`update_len` of the session codec).
    pub frame: &'a [u8],
}

/// Encodes an [`UploadMsg`].
pub fn encode_upload(m: &UploadMsg<'_>) -> Vec<u8> {
    let mut out = Vec::with_capacity(UPLOAD_CTX_LEN + m.frame.len());
    out.extend_from_slice(&(m.key as u32).to_le_bytes());
    out.extend_from_slice(&(m.round as u32).to_le_bytes());
    out.extend_from_slice(m.frame);
    out
}

/// Decodes an [`UploadMsg`], borrowing the frame.
pub fn decode_upload(payload: &[u8]) -> Result<UploadMsg<'_>, NetError> {
    if payload.len() < UPLOAD_CTX_LEN {
        return Err(NetError::Truncated("upload"));
    }
    Ok(UploadMsg {
        key: get_u32(payload, 0, "upload")? as usize,
        round: get_u32(payload, 4, "upload")? as usize,
        frame: &payload[UPLOAD_CTX_LEN..],
    })
}

/// Encodes a `Leave` payload: `[count: u32][party: u64 × count]` — the
/// parties departing with the sending worker.
pub fn encode_leave(parties: &[PartyId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 8 * parties.len());
    out.extend_from_slice(&(parties.len() as u32).to_le_bytes());
    for p in parties {
        out.extend_from_slice(&(p.0 as u64).to_le_bytes());
    }
    out
}

/// Decodes a `Leave` payload.
pub fn decode_leave(payload: &[u8]) -> Result<Vec<PartyId>, NetError> {
    let count = get_u32(payload, 0, "leave")? as usize;
    if payload.len() != 4 + 8 * count {
        return Err(NetError::Truncated("leave"));
    }
    let mut parties = Vec::with_capacity(count);
    for i in 0..count {
        parties.push(PartyId(get_u64(payload, 4 + 8 * i, "leave")? as usize));
    }
    Ok(parties)
}

/// Encodes a `RoundEnd` payload: `[round: u32]`.
pub fn encode_round_end(round: usize) -> Vec<u8> {
    (round as u32).to_le_bytes().to_vec()
}

/// Decodes a `RoundEnd` payload.
pub fn decode_round_end(payload: &[u8]) -> Result<usize, NetError> {
    Ok(get_u32(payload, 0, "round-end")? as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        let sent = write_msg(&mut wire, MsgKind::Upload, b"payload").expect("write");
        assert_eq!(sent, FRAME_HEADER_LEN + 7);
        assert_eq!(wire.len(), sent);
        let (kind, payload) = read_msg(&mut wire.as_slice()).expect("read");
        assert_eq!(kind, MsgKind::Upload);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn rejects_unknown_kind_and_oversize() {
        let mut wire = vec![0xffu8];
        wire.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_msg(&mut wire.as_slice()),
            Err(NetError::BadKind(0xff))
        ));
        let mut wire = vec![MsgKind::Hello as u8];
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_msg(&mut wire.as_slice()),
            Err(NetError::Oversize(_))
        ));
    }

    #[test]
    fn hello_roundtrips() {
        let parties = vec![PartyId(0), PartyId(7), PartyId(123)];
        let enc = encode_hello(&parties);
        let dec = decode_hello(&enc).expect("valid");
        assert_eq!(dec.proto, PROTO_VERSION);
        assert_eq!(dec.parties, parties);
        assert!(decode_hello(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn broadcast_roundtrips_and_ctx_len_is_exact() {
        let m = BroadcastMsg {
            key: 3,
            round: 17,
            party: PartyId(9),
            seed: 0xdead_beef_cafe_f00d,
            frame: &[1, 2, 3, 4, 5],
        };
        let enc = encode_broadcast(&m);
        assert_eq!(enc.len(), BROADCAST_CTX_LEN + m.frame.len());
        assert_eq!(decode_broadcast(&enc).expect("valid"), m);
    }

    #[test]
    fn join_chunk_roundtrips_with_exact_metered_portion() {
        let m = JoinChunkMsg {
            key: 0,
            round: 2,
            party: PartyId(4),
            seed: 42,
            seq: 1,
            total: 3,
            payload: &[9; 13],
        };
        let enc = encode_join_chunk(&m);
        // ctx + the metered chunk (JOIN_CHUNK_HEADER_LEN + slice).
        assert_eq!(
            enc.len(),
            JOIN_CHUNK_CTX_LEN + shiftex_fl::JOIN_CHUNK_HEADER_LEN + 13
        );
        assert_eq!(decode_join_chunk(&enc).expect("valid"), m);
    }

    #[test]
    fn upload_and_round_end_roundtrip() {
        let m = UploadMsg {
            key: 1,
            round: 5,
            frame: &[7; 21],
        };
        let enc = encode_upload(&m);
        assert_eq!(enc.len(), UPLOAD_CTX_LEN + 21);
        assert_eq!(decode_upload(&enc).expect("valid"), m);
        assert_eq!(decode_round_end(&encode_round_end(11)).expect("valid"), 11);
    }

    #[test]
    fn timeout_errors_are_recognised() {
        let e = NetError::Io(io::Error::new(io::ErrorKind::WouldBlock, "t"));
        assert!(e.is_timeout());
        let e = NetError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "dead"));
        assert!(!e.is_timeout());
    }
}
