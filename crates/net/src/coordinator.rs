//! The federation coordinator: the networked [`CohortTransport`].
//!
//! [`Coordinator`] owns one TCP connection per worker process and runs the
//! broadcast → remote-train → upload leg of each round over them, plugging
//! into [`run_algorithm_round_transported`](shiftex_fl::run_algorithm_round_transported)
//! exactly where [`LocalTransport`](shiftex_fl::LocalTransport) runs the
//! in-process exchange. The [`ScenarioEngine`] stays the single metering
//! and membership authority: the coordinator calls
//! [`ScenarioEngine::broadcast`] once per exchange (which meters every
//! downlink payload on the [`CommLedger`]), ships the *same encoded
//! frames* the engine just metered, and reports what really came back.
//!
//! Real failures enter the simulated accounting instead of bypassing it:
//!
//! * a worker whose socket **stalls** past the round deadline is a real
//!   straggler — its missing uploads come back as
//!   [`UploadOutcome::Lost`], which the round driver meters as aborted
//!   uploads and feeds to the selector's availability hook (the
//!   connection stays; late uploads are drained as stale next round);
//! * a worker whose socket **dies** (EOF, reset, desync) is real churn —
//!   its parties are pinned as mid-round dropouts for the current round
//!   (so in-flight join chunks are resolved as lost) and as leavers from
//!   the next round on ([`ChurnSchedule::pin_dropout`] /
//!   [`pin_leave`](shiftex_fl::ChurnSchedule::pin_leave)).
//!
//! Remote scope: the wire carries static, non-delta, non-error-feedback
//! codec frames (`dense` / `quant8` / `topk` without `delta`/`ef`), and
//! the scenario must not configure a wire-attack adversary (corruption is
//! applied party-side in process; a real worker would have to do it
//! itself). Both constraints are asserted.
//!
//! [`ChurnSchedule::pin_dropout`]: shiftex_fl::ChurnSchedule::pin_dropout

use std::collections::{BTreeMap, BTreeSet};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use shiftex_fl::{
    CodecSpec, CohortExchange, CohortTransport, CommLedger, LocalStepFn, ModelUpdate, PartyId,
    PopulationView, ScenarioEngine, UploadOutcome,
};

use crate::deadline::RoundDeadline;
use crate::frame::{
    decode_hello, decode_leave, decode_upload, encode_broadcast, encode_join_ack,
    encode_join_chunk, encode_round_end, read_msg, write_msg, BroadcastMsg, JoinChunkMsg, MsgKind,
    NetError, FRAME_HEADER_LEN, PROTO_VERSION,
};
use crate::stream::CountingStream;

/// Per-kind wire counters of one coordinator, all in raw socket bytes
/// (frame headers and routing contexts included).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Bytes sent as `Broadcast` frames (regular + first-contact).
    pub broadcast_bytes: u64,
    /// `Broadcast` frames sent.
    pub broadcast_msgs: u64,
    /// Bytes sent as `JoinChunk` frames.
    pub join_chunk_bytes: u64,
    /// `JoinChunk` frames sent.
    pub join_chunk_msgs: u64,
    /// Bytes received as in-round `Upload` frames.
    pub upload_bytes: u64,
    /// In-round `Upload` frames received.
    pub upload_msgs: u64,
    /// Bytes received as stale or unexpected `Upload` frames (drained,
    /// not delivered — e.g. a straggler's late upload from a past round).
    pub stale_upload_bytes: u64,
    /// Stale `Upload` frames drained.
    pub stale_upload_msgs: u64,
    /// Control-plane bytes sent (`JoinAck`, `RoundEnd`).
    pub control_out_bytes: u64,
    /// Control-plane frames sent.
    pub control_out_msgs: u64,
    /// Control-plane bytes received (`Hello`, `Leave`).
    pub control_in_bytes: u64,
    /// Control-plane frames received.
    pub control_in_msgs: u64,
    /// Cohort uploads that never arrived (deadline miss, dead socket,
    /// graceful leave) — each one metered by the round driver as an
    /// aborted upload.
    pub lost_uploads: u64,
    /// Rounds whose collection hit the wall-clock deadline.
    pub deadline_misses: u64,
    /// Worker connections that died (EOF, reset, protocol violation,
    /// mid-frame desync).
    pub dead_conns: u64,
    /// Worker connections that departed gracefully via `Leave`.
    pub leaves: u64,
    /// Rounds completed ([`Coordinator::end_round`] calls).
    pub rounds: u64,
}

struct WorkerConn {
    stream: CountingStream<TcpStream>,
    parties: Vec<PartyId>,
    alive: bool,
}

/// The coordinator's end of a networked federation: worker registry,
/// party-ownership map, and the [`CohortTransport`] implementation that
/// runs rounds over the sockets.
pub struct Coordinator {
    conns: Vec<WorkerConn>,
    owner: BTreeMap<PartyId, usize>,
    codec: CodecSpec,
    deadline: Duration,
    round: usize,
    stats: NetStats,
}

impl Coordinator {
    /// Accepts exactly `workers` worker connections on `listener`, running
    /// the `Hello`/`JoinAck` registration handshake with each.
    ///
    /// `codec` is the session codec every upload frame must be encoded
    /// under (workers are configured with the same spec); `deadline` is
    /// the per-round wall-clock budget for collecting uploads.
    ///
    /// # Panics
    ///
    /// Panics when `codec` uses delta coding or error feedback — both are
    /// stateful party-side stages the remote transport does not carry.
    ///
    /// # Errors
    ///
    /// Returns a [`NetError`] on socket failure, a protocol-version
    /// mismatch, or two workers claiming the same party.
    pub fn accept(
        listener: &TcpListener,
        workers: usize,
        codec: CodecSpec,
        deadline: Duration,
    ) -> Result<Self, NetError> {
        assert!(
            !codec.delta && !codec.error_feedback,
            "remote transport carries static codec frames only (no delta / error feedback)"
        );
        let mut conns: Vec<WorkerConn> = Vec::with_capacity(workers);
        let mut owner = BTreeMap::new();
        let mut stats = NetStats::default();
        for _ in 0..workers {
            let (sock, _addr) = listener.accept()?;
            sock.set_nodelay(true)?;
            let mut stream = CountingStream::new(sock);
            let (kind, payload) = read_msg(&mut stream)?;
            if kind != MsgKind::Hello {
                return Err(NetError::Protocol(format!("expected Hello, got {kind:?}")));
            }
            stats.control_in_bytes += (FRAME_HEADER_LEN + payload.len()) as u64;
            stats.control_in_msgs += 1;
            let hello = decode_hello(&payload)?;
            if hello.proto != PROTO_VERSION {
                return Err(NetError::Protocol(format!(
                    "worker speaks protocol v{}, coordinator v{PROTO_VERSION}",
                    hello.proto
                )));
            }
            for &p in &hello.parties {
                if owner.insert(p, conns.len()).is_some() {
                    return Err(NetError::Protocol(format!(
                        "party {} registered by two workers",
                        p.0
                    )));
                }
            }
            let n = write_msg(
                &mut stream,
                MsgKind::JoinAck,
                &encode_join_ack(hello.parties.len()),
            )?;
            stats.control_out_bytes += n as u64;
            stats.control_out_msgs += 1;
            conns.push(WorkerConn {
                stream,
                parties: hello.parties,
                alive: true,
            });
        }
        Ok(Self {
            conns,
            owner,
            codec,
            deadline,
            round: 0,
            stats,
        })
    }

    /// Snapshot of the per-kind wire counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Raw bytes written across all worker sockets (counted at the
    /// stream, not reconstructed from message sizes).
    pub fn wire_written(&self) -> u64 {
        self.conns.iter().map(|c| c.stream.bytes_written()).sum()
    }

    /// Raw bytes read across all worker sockets.
    pub fn wire_read(&self) -> u64 {
        self.conns.iter().map(|c| c.stream.bytes_read()).sum()
    }

    /// Worker connections still alive.
    pub fn live_workers(&self) -> usize {
        self.conns.iter().filter(|c| c.alive).count()
    }

    /// Parties registered at the handshake, across all workers.
    pub fn registered_parties(&self) -> usize {
        self.owner.len()
    }

    /// Ends the round on the wire: every live worker gets a `RoundEnd`
    /// frame (so it can discard stale per-round state). Connections that
    /// die here are buried like any other dead socket.
    pub fn end_round(&mut self, engine: &mut ScenarioEngine) {
        let round = engine.round();
        let mut dead = Vec::new();
        for (ci, conn) in self.conns.iter_mut().enumerate() {
            if !conn.alive {
                continue;
            }
            match write_msg(
                &mut conn.stream,
                MsgKind::RoundEnd,
                &encode_round_end(round),
            ) {
                Ok(n) => {
                    self.stats.control_out_bytes += n as u64;
                    self.stats.control_out_msgs += 1;
                }
                Err(_) => dead.push(ci),
            }
        }
        for ci in dead {
            self.bury(ci, engine, round);
        }
        self.stats.rounds += 1;
    }

    /// Closes every worker socket; workers observe EOF and exit.
    pub fn shutdown(self) -> NetStats {
        self.stats
    }

    /// Marks a connection dead and pins its real churn into the engine's
    /// schedule: every hosted party leaves from the next round on.
    fn bury(&mut self, ci: usize, engine: &mut ScenarioEngine, round: usize) {
        let conn = &mut self.conns[ci];
        if !conn.alive {
            return;
        }
        conn.alive = false;
        self.stats.dead_conns += 1;
        for &p in &conn.parties {
            engine.churn_mut().pin_leave(p, round + 1);
        }
    }
}

impl CohortTransport for Coordinator {
    /// Runs one stream's exchange over the sockets: meters the broadcast
    /// through the engine, ships the identical encoded frames to the
    /// owning workers, then collects uploads under the round deadline.
    /// Outcomes come back in cohort order, as the seam requires.
    fn exchange(
        &mut self,
        x: &CohortExchange<'_>,
        _live: &PopulationView<'_>,
        engine: &mut ScenarioEngine,
        ledger: Option<&CommLedger>,
        _local_step: &mut LocalStepFn<'_>,
    ) -> Vec<UploadOutcome> {
        assert_eq!(
            *x.codec, self.codec,
            "round codec diverged from the session codec workers encode under \
             (adaptive codec control is not supported remotely)"
        );
        assert!(
            engine.spec().attack.is_none(),
            "wire-attack scenarios corrupt updates party-side in process; \
             the remote transport does not reproduce them"
        );
        let round = engine.round();
        self.round = round;
        let chunked = engine.join_config().is_some();
        let had_reference = engine.last_broadcast(x.key).is_some();
        // Single metering authority: this call records every downlink
        // payload (regular, first-contact, join chunks) on the ledger and
        // advances the join-sync state machines. What ships below is the
        // byte-identical realisation of what was just metered.
        let bcast = engine.broadcast(x.key, x.globals, x.codec, x.cohort, ledger);
        let bspec = x.codec.broadcast_spec(had_reference);
        let mut reg_frame: Option<Vec<u8>> = None;
        let mut fc_frame: Option<Vec<u8>> = None;
        let mut newly_dead: BTreeSet<usize> = BTreeSet::new();

        for (i, &p) in x.cohort.iter().enumerate() {
            let seed = x.seeds[i];
            let ci = *self
                .owner
                .get(&p)
                .unwrap_or_else(|| panic!("party {} is hosted by no worker", p.0));
            if !self.conns[ci].alive || newly_dead.contains(&ci) {
                continue;
            }
            let sent: Result<(), NetError> = if bcast.fresh.contains(&p) && chunked {
                // Ship exactly the chunks `ship_missing` just put in
                // flight (and metered); the worker reassembles the
                // snapshot frame and trains from its decode, same as the
                // engine's optimistic `join_states` entry.
                let sync = engine
                    .join_sync(x.key, p)
                    .expect("fresh party under chunked joins has a sync");
                let total = sync.num_chunks();
                let mut res = Ok(());
                for seq in sync.in_flight_chunks() {
                    let msg = JoinChunkMsg {
                        key: x.key,
                        round,
                        party: p,
                        seed,
                        seq,
                        total,
                        payload: sync.chunk_payload(seq),
                    };
                    match write_msg(
                        &mut self.conns[ci].stream,
                        MsgKind::JoinChunk,
                        &encode_join_chunk(&msg),
                    ) {
                        Ok(n) => {
                            self.stats.join_chunk_bytes += n as u64;
                            self.stats.join_chunk_msgs += 1;
                        }
                        Err(e) => {
                            res = Err(e);
                            break;
                        }
                    }
                }
                res
            } else {
                // Frames are encoded at most once per exchange and reused
                // for every recipient — identical bytes, identical
                // metering.
                let frame: &[u8] = if bcast.fresh.contains(&p) {
                    fc_frame.get_or_insert_with(|| {
                        x.codec.first_contact_spec().encode_global(x.globals, &[])
                    })
                } else {
                    reg_frame.get_or_insert_with(|| bspec.encode_global(x.globals, &[]))
                };
                let msg = BroadcastMsg {
                    key: x.key,
                    round,
                    party: p,
                    seed,
                    frame,
                };
                write_msg(
                    &mut self.conns[ci].stream,
                    MsgKind::Broadcast,
                    &encode_broadcast(&msg),
                )
                .map(|n| {
                    self.stats.broadcast_bytes += n as u64;
                    self.stats.broadcast_msgs += 1;
                })
            };
            if sent.is_err() {
                newly_dead.insert(ci);
            }
        }

        // Collect uploads per connection under the shared round deadline.
        let mut expected: BTreeMap<usize, BTreeSet<PartyId>> = BTreeMap::new();
        for &p in x.cohort {
            let ci = self.owner[&p];
            if self.conns[ci].alive && !newly_dead.contains(&ci) {
                expected.entry(ci).or_default().insert(p);
            }
        }
        let mut received: BTreeMap<PartyId, ModelUpdate> = BTreeMap::new();
        let deadline = RoundDeadline::start(self.deadline);
        for (ci, mut want) in expected {
            let conn = &mut self.conns[ci];
            while !want.is_empty() {
                let Some(rem) = deadline.remaining() else {
                    // Budget exhausted: every upload still owed on any
                    // connection is a straggler loss.
                    self.stats.deadline_misses += 1;
                    break;
                };
                if conn.stream.get_ref().set_read_timeout(Some(rem)).is_err() {
                    newly_dead.insert(ci);
                    break;
                }
                let before = conn.stream.bytes_read();
                match read_msg(&mut conn.stream) {
                    Ok((MsgKind::Upload, payload)) => {
                        let wire = (FRAME_HEADER_LEN + payload.len()) as u64;
                        let Ok(msg) = decode_upload(&payload) else {
                            newly_dead.insert(ci);
                            break;
                        };
                        if msg.key != x.key || msg.round != round {
                            // A straggler's late upload from a past round:
                            // drained and discarded, never delivered.
                            self.stats.stale_upload_bytes += wire;
                            self.stats.stale_upload_msgs += 1;
                            continue;
                        }
                        let Ok(update) = ModelUpdate::decode(msg.frame, &[]) else {
                            newly_dead.insert(ci);
                            break;
                        };
                        if want.remove(&update.party) {
                            self.stats.upload_bytes += wire;
                            self.stats.upload_msgs += 1;
                            received.insert(update.party, update);
                        } else {
                            self.stats.stale_upload_bytes += wire;
                            self.stats.stale_upload_msgs += 1;
                        }
                    }
                    Ok((MsgKind::Leave, payload)) => {
                        self.stats.control_in_bytes += (FRAME_HEADER_LEN + payload.len()) as u64;
                        self.stats.control_in_msgs += 1;
                        self.stats.leaves += 1;
                        let _ = decode_leave(&payload);
                        newly_dead.insert(ci);
                        break;
                    }
                    Ok((kind, _)) => {
                        // Anything else mid-collection is a protocol
                        // violation; the connection cannot be trusted.
                        let _ = kind;
                        newly_dead.insert(ci);
                        break;
                    }
                    Err(e) if e.is_timeout() => {
                        self.stats.deadline_misses += 1;
                        if conn.stream.bytes_read() != before {
                            // Timed out mid-frame: the stream is desynced
                            // and unrecoverable.
                            newly_dead.insert(ci);
                        }
                        break;
                    }
                    Err(_) => {
                        newly_dead.insert(ci);
                        break;
                    }
                }
            }
        }

        // Real churn enters the simulated schedule before the driver's
        // `collect` resolves the round.
        for &ci in &newly_dead {
            self.bury(ci, engine, round);
        }
        x.cohort
            .iter()
            .map(|&p| match received.remove(&p) {
                Some(update) => UploadOutcome::Delivered(update),
                None => {
                    if !self.conns[self.owner[&p]].alive {
                        // A really-dead worker also loses the join chunks
                        // in flight to it; a merely-late one physically
                        // received them, so only its upload is charged.
                        engine.churn_mut().pin_dropout(p, round);
                    }
                    self.stats.lost_uploads += 1;
                    UploadOutcome::Lost(p)
                }
            })
            .collect()
    }

    /// Driver round-complete hook: send `RoundEnd` to every live worker.
    fn round_complete(&mut self, engine: &mut ScenarioEngine) {
        self.end_round(engine);
    }
}
