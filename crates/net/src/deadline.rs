//! The round deadline — the net crate's **only** wall-clock site.
//!
//! The simulator never reads a clock: stragglers and churn are seeded
//! draws, which is what makes every run bit-reproducible (shiftex-lint
//! rule D002 bans `Instant::now` / `SystemTime::now` in deterministic
//! library code). Real sockets are different: a worker that stops talking
//! can only be detected by time passing. [`RoundDeadline`] confines that
//! non-determinism to one audited module — the coordinator asks it how
//! much of the round's budget remains and uses the answer only to bound
//! socket read timeouts. Everything the deadline *decides* (a party whose
//! upload missed the budget) is reported through the same deterministic
//! accounting as the simulated axes: an aborted-upload ledger entry and a
//! selector availability signal.
//!
//! D002 carve-out: `crates/net/src/deadline.rs` is explicitly allowlisted
//! in `shiftex-lint` (`NET_TIMING_ALLOWLIST`); the rest of the net crate
//! stays under the ban.

use std::time::{Duration, Instant};

/// A per-round wall-clock budget for collecting real uploads.
#[derive(Debug, Clone, Copy)]
pub struct RoundDeadline {
    start: Instant,
    budget: Duration,
}

impl RoundDeadline {
    /// Starts the clock on a round with `budget` to collect uploads.
    pub fn start(budget: Duration) -> Self {
        Self {
            start: Instant::now(),
            budget,
        }
    }

    /// Time left in the budget; `None` once the deadline has passed.
    /// Suitable for a socket read timeout: always non-zero when `Some`.
    pub fn remaining(&self) -> Option<Duration> {
        self.budget
            .checked_sub(self.start.elapsed())
            .filter(|d| !d.is_zero())
    }

    /// Time elapsed since the round started collecting.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_budget_and_zero_budget_is_expired() {
        let d = RoundDeadline::start(Duration::from_secs(3600));
        assert!(d.remaining().is_some());
        let d = RoundDeadline::start(Duration::ZERO);
        assert!(d.remaining().is_none());
    }
}
