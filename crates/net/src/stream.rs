//! Byte-counting stream wrapper.
//!
//! [`CountingStream`] wraps any `Read + Write` transport and counts every
//! byte that actually crosses it. The coordinator runs all federation
//! sockets through this wrapper so the wire-byte honesty tests can equate
//! *raw socket traffic* — not a reconstruction from message sizes — with
//! the [`CommLedger`](shiftex_fl::CommLedger)'s payload accounting plus
//! the protocol's fixed framing overhead.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared read/written byte counters of one [`CountingStream`].
#[derive(Debug, Default)]
pub struct ByteCounters {
    read: AtomicU64,
    written: AtomicU64,
}

impl ByteCounters {
    /// Bytes read from the underlying stream so far.
    pub fn read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }

    /// Bytes written to the underlying stream so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }
}

/// A `Read + Write` wrapper that counts every byte crossing it.
#[derive(Debug)]
pub struct CountingStream<S> {
    inner: S,
    counters: Arc<ByteCounters>,
}

impl<S> CountingStream<S> {
    /// Wraps `inner` with fresh zeroed counters.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            counters: Arc::new(ByteCounters::default()),
        }
    }

    /// A handle to this stream's counters (shared, lock-free).
    pub fn counters(&self) -> Arc<ByteCounters> {
        Arc::clone(&self.counters)
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.counters.read()
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.counters.written()
    }

    /// The wrapped stream (e.g. to set socket timeouts on a `TcpStream`).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped stream.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps, discarding the counters.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.counters.read.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.counters.written.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn counts_exact_bytes_both_ways() {
        let mut s = CountingStream::new(Cursor::new(vec![0u8; 16]));
        s.write_all(&[1, 2, 3, 4, 5]).expect("write");
        assert_eq!(s.bytes_written(), 5);
        s.get_mut().set_position(0);
        let mut buf = [0u8; 3];
        s.read_exact(&mut buf).expect("read");
        assert_eq!(s.bytes_read(), 3);
        let counters = s.counters();
        assert_eq!((counters.read(), counters.written()), (3, 5));
    }
}
