//! The party-worker end of a networked federation.
//!
//! [`serve`] speaks the worker side of the wire protocol over any
//! `Read + Write` transport: register hosted parties (`Hello`/`JoinAck`),
//! then loop — decode each `Broadcast` (or reassemble a chunked
//! first-contact join), run the caller's training closure, and ship the
//! encoded update back. Training itself is injected as a closure so this
//! crate stays free of model/data dependencies: the experiments binary
//! builds it from the algorithm's architecture, train config, and a lazy
//! population store holding the hosted parties' data streams.
//!
//! The worker exits cleanly on EOF (the coordinator closed the session)
//! or, when configured, departs gracefully with a `Leave` frame after a
//! given round. A deterministic fault hook ([`WorkerConfig::stall_after_uploads`])
//! parks the thread forever at a chosen upload count — no wall clock —
//! so CI can SIGKILL a worker that is provably mid-round.

use std::collections::BTreeMap;

use std::io::{Read, Write};

use shiftex_fl::{CodecSpec, ModelUpdate, PartyId};

use crate::frame::{
    decode_broadcast, decode_join_ack, decode_join_chunk, decode_round_end, encode_hello,
    encode_leave, encode_upload, read_msg, write_msg, MsgKind, NetError, UploadMsg, PROTO_VERSION,
};

/// One party's local training step, supplied by the embedding binary:
/// `(stream key, party, decoded global state, seed) → update`.
pub type TrainFn<'a> = dyn FnMut(usize, PartyId, &[f32], u64) -> ModelUpdate + 'a;

/// Static configuration of one worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Parties this process hosts (registered in the `Hello` handshake).
    pub parties: Vec<PartyId>,
    /// Session codec every upload is encoded under — must match the
    /// coordinator's.
    pub codec: CodecSpec,
    /// Deterministic fault injection: park the thread forever once this
    /// many uploads have been sent (the next upload never happens). The
    /// worker is then provably stalled mid-round, ready for a SIGKILL.
    pub stall_after_uploads: Option<u64>,
    /// Graceful departure: after the `RoundEnd` of this round, send a
    /// `Leave` frame for all hosted parties and exit.
    pub leave_after_round: Option<usize>,
}

impl WorkerConfig {
    /// A plain worker hosting `parties` under `codec`, no fault hooks.
    pub fn new(parties: Vec<PartyId>, codec: CodecSpec) -> Self {
        Self {
            parties,
            codec,
            stall_after_uploads: None,
            leave_after_round: None,
        }
    }
}

/// What one worker did over its session, for logs and assertions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Regular/first-contact broadcasts received.
    pub broadcasts: u64,
    /// Join-sync chunks received.
    pub join_chunks: u64,
    /// Updates trained and uploaded.
    pub uploads: u64,
    /// `RoundEnd` frames observed.
    pub rounds_seen: u64,
    /// `true` when the session ended with a graceful `Leave`.
    pub left: bool,
}

/// Reassembly state of one `(stream, party)` chunked join.
struct JoinAssembly {
    total: usize,
    round: usize,
    seed: u64,
    chunks: BTreeMap<usize, Vec<u8>>,
    /// Last round this assembly trained and uploaded for (0 = never) —
    /// re-shipped chunks of the same round must not double-train.
    uploaded_round: usize,
}

/// Runs one worker session over `stream` until the coordinator closes it.
///
/// Returns the session summary on a clean exit (EOF or graceful leave).
///
/// # Errors
///
/// Returns a [`NetError`] on socket failure, an undecodable frame, or a
/// protocol violation (wrong handshake, a broadcast for a party this
/// worker does not host, inconsistent chunk framing).
pub fn serve<S: Read + Write>(
    stream: &mut S,
    config: &WorkerConfig,
    train: &mut TrainFn<'_>,
) -> Result<WorkerSummary, NetError> {
    write_msg(stream, MsgKind::Hello, &encode_hello(&config.parties))?;
    let (kind, payload) = read_msg(stream)?;
    if kind != MsgKind::JoinAck {
        return Err(NetError::Protocol(format!(
            "expected JoinAck, got {kind:?}"
        )));
    }
    let (proto, accepted) = decode_join_ack(&payload)?;
    if proto != PROTO_VERSION || accepted != config.parties.len() {
        return Err(NetError::Protocol(format!(
            "registration rejected (proto v{proto}, {accepted} of {} parties)",
            config.parties.len()
        )));
    }

    let mut summary = WorkerSummary::default();
    let mut assemblies: BTreeMap<(usize, PartyId), JoinAssembly> = BTreeMap::new();
    loop {
        let (kind, payload) = match read_msg(stream) {
            Ok(frame) => frame,
            Err(NetError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                // Session over: the coordinator closed the socket.
                return Ok(summary);
            }
            Err(e) => return Err(e),
        };
        match kind {
            MsgKind::Broadcast => {
                let msg = decode_broadcast(&payload)?;
                if !config.parties.contains(&msg.party) {
                    return Err(NetError::Protocol(format!(
                        "broadcast for party {} which this worker does not host",
                        msg.party.0
                    )));
                }
                summary.broadcasts += 1;
                let state = CodecSpec::decode_global(msg.frame, &[])?;
                let update = train(msg.key, msg.party, &state, msg.seed);
                upload(stream, config, &mut summary, msg.key, msg.round, &update)?;
            }
            MsgKind::JoinChunk => {
                let msg = decode_join_chunk(&payload)?;
                if !config.parties.contains(&msg.party) {
                    return Err(NetError::Protocol(format!(
                        "join chunk for party {} which this worker does not host",
                        msg.party.0
                    )));
                }
                if msg.total == 0 || msg.seq >= msg.total {
                    return Err(NetError::Protocol(format!(
                        "join chunk {}/{} out of range",
                        msg.seq, msg.total
                    )));
                }
                summary.join_chunks += 1;
                let a = assemblies
                    .entry((msg.key, msg.party))
                    .or_insert_with(|| JoinAssembly {
                        total: msg.total,
                        round: msg.round,
                        seed: msg.seed,
                        chunks: BTreeMap::new(),
                        uploaded_round: 0,
                    });
                if a.total != msg.total {
                    return Err(NetError::Protocol(format!(
                        "join chunk total changed {} -> {}",
                        a.total, msg.total
                    )));
                }
                // Chunks are slices of one snapshotted frame, so re-shipped
                // bytes across rounds are identical; only the round context
                // moves forward.
                a.round = msg.round;
                a.seed = msg.seed;
                a.chunks.insert(msg.seq, msg.payload.to_vec());
                if a.chunks.len() == a.total && a.uploaded_round < a.round {
                    let frame: Vec<u8> =
                        a.chunks.values().flat_map(|c| c.iter().copied()).collect();
                    let state = CodecSpec::decode_global(&frame, &[])?;
                    let (key, round, seed) = (msg.key, a.round, a.seed);
                    a.uploaded_round = round;
                    let update = train(key, msg.party, &state, seed);
                    upload(stream, config, &mut summary, key, round, &update)?;
                }
            }
            MsgKind::RoundEnd => {
                let round = decode_round_end(&payload)?;
                summary.rounds_seen += 1;
                if config.leave_after_round.is_some_and(|r| round >= r) {
                    write_msg(stream, MsgKind::Leave, &encode_leave(&config.parties))?;
                    summary.left = true;
                    return Ok(summary);
                }
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected {other:?} frame on a worker connection"
                )));
            }
        }
    }
}

/// Encodes and ships one update, honouring the stall fault hook.
fn upload<S: Read + Write>(
    stream: &mut S,
    config: &WorkerConfig,
    summary: &mut WorkerSummary,
    key: usize,
    round: usize,
    update: &ModelUpdate,
) -> Result<(), NetError> {
    if config
        .stall_after_uploads
        .is_some_and(|k| summary.uploads >= k)
    {
        // Deterministically stalled mid-round: the trained update is never
        // sent, and no wall clock is involved. The process stays parked
        // until an external signal (the CI smoke's SIGKILL) removes it.
        loop {
            std::thread::park();
        }
    }
    let frame = update.encode(&config.codec, &[]);
    let msg = UploadMsg {
        key,
        round,
        frame: &frame,
    };
    write_msg(stream, MsgKind::Upload, &encode_upload(&msg))?;
    summary.uploads += 1;
    Ok(())
}
