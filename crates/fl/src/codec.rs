//! Pluggable wire codecs for model updates and global broadcasts.
//!
//! ShiftEx's per-expert training multiplies the communication bill: every
//! live expert's cohort ships a full model per round. This module makes the
//! wire format a first-class, swappable layer so that bill can be paid in
//! compressed bytes — and so the [`CommLedger`](crate::CommLedger) meters
//! **actual encoded bytes** instead of a nominal `4 × params` guess.
//!
//! Four [`UpdateCodec`] implementations cover the standard levers:
//!
//! * [`DenseF32`] — compact binary framing of raw `f32` little-endian words
//!   (replaces the seed's JSON wire format; lossless).
//! * [`QuantizedI8`] — affine 8-bit quantisation with a per-block
//!   `(zero_point, scale)` pair (block = 256 by default): ~3.9× smaller than
//!   dense, error bounded by `scale / 2` per coordinate.
//! * [`TopKSparse`] — magnitude sparsification: only the `⌈density · n⌉`
//!   largest-magnitude coordinates ship, as `(index, value)` pairs.
//!   Unselected coordinates decode to zero, so top-k is only meaningful on
//!   *residuals* — compose it with [`Delta`].
//! * [`Delta`] — encodes the residual against a reference vector (the last
//!   broadcast global, which both endpoints hold) with any base codec.
//!   Dense deltas are lossless up to `f32` rounding of the residual
//!   (`(p − r) + r` is not bit-exact, so delta variants always pay the
//!   real roundtrip); quantised deltas are *more* accurate than quantised
//!   absolutes (residual ranges are narrower); top-k deltas are the
//!   classic sparsified-update scheme.
//!
//! [`CodecSpec`] is the serialisable, `Copy` configuration that selects and
//! parameterises a codec; it rides inside
//! [`RoundConfig`](crate::RoundConfig) through every round path. Encoded
//! sizes are **value-independent** — [`CodecSpec::update_len`] /
//! [`CodecSpec::broadcast_len`] compute the exact wire size from the
//! parameter count alone, which is what lets the scenario engine meter
//! aborted and late uploads without re-encoding.
//!
//! # Wire format
//!
//! All integers are little-endian. Every frame starts with a 6-byte header:
//!
//! ```text
//! [kind: u8][flags: u8 (bit 0 = delta)][n_params: u32]
//! ```
//!
//! Update frames (party → aggregator) follow with 16 bytes of metadata —
//! `[party: u64][num_samples: u32][train_loss: f32]` — then the payload;
//! broadcast frames (aggregator → party) go straight to the payload.
//! Payloads:
//!
//! ```text
//! dense :  n × f32
//! quant8:  [block: u32] then per block: [zero_point: f32][scale: f32][codes: u8 × len]
//! topk  :  [k: u32] then k × ([index: u32][value: f32])
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::party::PartyId;
use crate::update::ModelUpdate;

// ---------------------------------------------------------------------------
// Errors.

/// Why a wire payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the declared content did.
    Truncated,
    /// Unknown codec tag byte.
    BadTag(u8),
    /// A sparse index pointed outside the parameter vector.
    BadIndex {
        /// The offending index.
        index: usize,
        /// Parameter-vector length.
        n: usize,
    },
    /// A declared length was internally inconsistent.
    BadLength {
        /// What the header promised.
        expected: usize,
        /// What the payload held.
        got: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::BadTag(t) => write!(f, "unknown codec tag {t:#x}"),
            CodecError::BadIndex { index, n } => {
                write!(f, "sparse index {index} out of range for {n} params")
            }
            CodecError::BadLength { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Little-endian cursor helpers.

/// Bounds-checked little-endian cursor over a wire payload.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice, starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Takes the next `len` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn f32(&mut self) -> Result<f32, CodecError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Asserts the payload was fully consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadLength`] when trailing bytes remain.
    pub fn done(&self) -> Result<(), CodecError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CodecError::BadLength {
                expected: self.pos,
                got: self.bytes.len(),
            })
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// The codec trait and its four implementations.

/// A wire codec over flat parameter vectors.
///
/// Implementations are stateless value-to-bytes transforms; framing
/// (headers, update metadata) lives in [`CodecSpec`] / [`ModelUpdate`].
/// `encoded_len` must be exact for every input of length `n` — sizes are
/// value-independent by design so the ledger can meter traffic (including
/// aborted uploads) without re-encoding payloads.
pub trait UpdateCodec {
    /// Human-readable codec name.
    fn name(&self) -> String;

    /// Exact payload size in bytes for an `n`-parameter vector.
    fn encoded_len(&self, n: usize) -> usize;

    /// Appends the encoded payload for `params` to `out`.
    fn encode_into(&self, params: &[f32], out: &mut Vec<u8>);

    /// Decodes a payload of `n` parameters from `reader`.
    fn decode_from(&self, reader: &mut Reader<'_>, n: usize) -> Result<Vec<f32>, CodecError>;
}

/// Lossless binary framing: `n` little-endian `f32` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DenseF32;

impl UpdateCodec for DenseF32 {
    fn name(&self) -> String {
        "dense".into()
    }

    fn encoded_len(&self, n: usize) -> usize {
        4 * n
    }

    fn encode_into(&self, params: &[f32], out: &mut Vec<u8>) {
        out.reserve(4 * params.len());
        for &p in params {
            put_f32(out, p);
        }
    }

    fn decode_from(&self, reader: &mut Reader<'_>, n: usize) -> Result<Vec<f32>, CodecError> {
        (0..n).map(|_| reader.f32()).collect()
    }
}

/// Affine 8-bit quantisation with a per-block `(zero_point, scale)` pair.
///
/// Each block of up to `block` coordinates is mapped to `u8` codes via
/// `code = round((x − zero_point) / scale)` with `zero_point = min(block)`
/// and `scale = (max − min) / 255`; decoding returns
/// `zero_point + code · scale`, so the per-coordinate error is bounded by
/// `scale / 2`. Payload: `1 + blocks·8/block ≈ 1.03` bytes per parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizedI8 {
    /// Coordinates per quantisation block (≥ 1).
    pub block: usize,
}

impl QuantizedI8 {
    /// The default 256-coordinate block.
    pub fn new() -> Self {
        Self { block: 256 }
    }
}

impl Default for QuantizedI8 {
    fn default() -> Self {
        Self::new()
    }
}

impl UpdateCodec for QuantizedI8 {
    fn name(&self) -> String {
        format!("quant8(block={})", self.block)
    }

    fn encoded_len(&self, n: usize) -> usize {
        let block = self.block.max(1);
        4 + n.div_ceil(block) * 8 + n
    }

    fn encode_into(&self, params: &[f32], out: &mut Vec<u8>) {
        let block = self.block.max(1);
        put_u32(out, block as u32);
        for chunk in params.chunks(block) {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &x in chunk {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            let scale = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
            put_f32(out, lo);
            put_f32(out, scale);
            for &x in chunk {
                let code = if scale > 0.0 {
                    ((x - lo) / scale).round().clamp(0.0, 255.0) as u8
                } else {
                    0
                };
                out.push(code);
            }
        }
    }

    fn decode_from(&self, reader: &mut Reader<'_>, n: usize) -> Result<Vec<f32>, CodecError> {
        let block = reader.u32()? as usize;
        if block == 0 {
            return Err(CodecError::BadLength {
                expected: 1,
                got: 0,
            });
        }
        let mut params = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let len = remaining.min(block);
            let zero_point = reader.f32()?;
            let scale = reader.f32()?;
            for &code in reader.take(len)? {
                params.push(zero_point + f32::from(code) * scale);
            }
            remaining -= len;
        }
        Ok(params)
    }
}

/// Magnitude sparsification: only the `⌈density · n⌉` largest-magnitude
/// coordinates ship, as sorted `(index, value)` pairs.
///
/// Selected coordinates are preserved **exactly**; everything else decodes
/// to zero. Ship *residuals* (compose with [`Delta`]) — top-k of absolute
/// parameters would zero out every unselected weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKSparse {
    /// Fraction of coordinates kept, in `(0, 1]`.
    pub density: f32,
}

impl TopKSparse {
    /// Number of coordinates kept from an `n`-parameter vector.
    pub fn k_for(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let d = self.density.clamp(0.0, 1.0);
        ((d * n as f32).ceil() as usize).clamp(1, n)
    }
}

impl UpdateCodec for TopKSparse {
    fn name(&self) -> String {
        format!("topk(density={})", self.density)
    }

    fn encoded_len(&self, n: usize) -> usize {
        4 + 8 * self.k_for(n)
    }

    fn encode_into(&self, params: &[f32], out: &mut Vec<u8>) {
        let k = self.k_for(params.len());
        // Deterministic selection: magnitude descending, index ascending on
        // ties, via an O(n) partition; then sort the survivors by index for
        // a canonical wire order. Magnitudes are non-negative, so their IEEE
        // bit patterns order them totally (NaN sorts above infinity and is
        // kept first — finite inputs are the caller's contract).
        let mut order: Vec<u32> = (0..params.len() as u32).collect();
        let rank = |i: u32| (std::cmp::Reverse(params[i as usize].abs().to_bits()), i);
        if k < order.len() && k > 0 {
            order.select_nth_unstable_by_key(k - 1, |&i| rank(i));
            order.truncate(k);
        }
        order.sort_unstable();
        put_u32(out, k as u32);
        for i in order {
            put_u32(out, i);
            put_f32(out, params[i as usize]);
        }
    }

    fn decode_from(&self, reader: &mut Reader<'_>, n: usize) -> Result<Vec<f32>, CodecError> {
        let k = reader.u32()? as usize;
        if k > n {
            return Err(CodecError::BadLength {
                expected: n,
                got: k,
            });
        }
        let mut params = vec![0.0f32; n];
        for _ in 0..k {
            let index = reader.u32()? as usize;
            let value = reader.f32()?;
            *params
                .get_mut(index)
                .ok_or(CodecError::BadIndex { index, n })? = value;
        }
        Ok(params)
    }
}

/// Residual coding against a reference vector with any base codec.
///
/// The reference is the last broadcast global, which both the party and the
/// aggregator hold; missing coordinates (an empty or shorter reference)
/// count as zero, so delta against nothing degenerates to the base codec.
#[derive(Debug)]
pub struct Delta<'a, C: UpdateCodec> {
    /// Codec applied to the residual.
    pub base: C,
    /// Reference vector subtracted before encoding and re-added after.
    pub reference: &'a [f32],
}

impl<C: UpdateCodec> UpdateCodec for Delta<'_, C> {
    fn name(&self) -> String {
        format!("delta+{}", self.base.name())
    }

    fn encoded_len(&self, n: usize) -> usize {
        self.base.encoded_len(n)
    }

    fn encode_into(&self, params: &[f32], out: &mut Vec<u8>) {
        let residual: Vec<f32> = params
            .iter()
            .enumerate()
            .map(|(i, &p)| p - self.reference.get(i).copied().unwrap_or(0.0))
            .collect();
        self.base.encode_into(&residual, out);
    }

    fn decode_from(&self, reader: &mut Reader<'_>, n: usize) -> Result<Vec<f32>, CodecError> {
        let mut params = self.base.decode_from(reader, n)?;
        for (i, p) in params.iter_mut().enumerate() {
            *p += self.reference.get(i).copied().unwrap_or(0.0);
        }
        Ok(params)
    }
}

// ---------------------------------------------------------------------------
// CodecSpec: serialisable configuration + framing.

/// Which base codec transforms parameter values into payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CodecKind {
    /// [`DenseF32`].
    Dense,
    /// [`QuantizedI8`] with the given block size.
    Quant8 {
        /// Coordinates per quantisation block.
        block: usize,
    },
    /// [`TopKSparse`] keeping this fraction of coordinates.
    TopK {
        /// Kept fraction in `(0, 1]`.
        density: f32,
    },
}

/// Wire-format configuration: a base codec plus an optional [`Delta`] stage.
///
/// `Copy` and serialisable so it can ride inside
/// [`RoundConfig`](crate::RoundConfig) and scenario reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecSpec {
    /// Base payload codec.
    pub kind: CodecKind,
    /// Encode residuals against the last broadcast global.
    pub delta: bool,
    /// Party-side error feedback: coordinates a lossy upload drops are
    /// accumulated locally and added to the next round's upload before
    /// encoding (EF-SGD style). Changes nothing on the wire — frame sizes
    /// and the decode path are identical — but requires per-party state, so
    /// it only takes effect on paths that hold accumulators (the
    /// [`ScenarioEngine`](crate::ScenarioEngine) upload path). Only lossy
    /// kinds benefit; it matters most for [`TopKSparse`] at low density.
    pub error_feedback: bool,
}

/// Frame header: `[kind: u8][flags: u8][n_params: u32]`.
const HEADER_LEN: usize = 6;
/// Update metadata after the header: `[party: u64][samples: u32][loss: f32]`.
const UPDATE_META_LEN: usize = 16;

const TAG_DENSE: u8 = 1;
const TAG_QUANT8: u8 = 2;
const TAG_TOPK: u8 = 3;
const FLAG_DELTA: u8 = 1;

impl Default for CodecSpec {
    fn default() -> Self {
        Self::dense()
    }
}

impl fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.error_feedback {
            write!(f, "ef+")?;
        }
        if self.delta {
            write!(f, "delta+")?;
        }
        match self.kind {
            CodecKind::Dense => write!(f, "dense"),
            CodecKind::Quant8 { block } => write!(f, "quant8(block={block})"),
            CodecKind::TopK { density } => write!(f, "topk(density={density})"),
        }
    }
}

impl CodecSpec {
    /// Lossless dense `f32` framing (the default).
    pub fn dense() -> Self {
        Self {
            kind: CodecKind::Dense,
            delta: false,
            error_feedback: false,
        }
    }

    /// Per-block affine int8 quantisation.
    ///
    /// # Panics
    ///
    /// Panics when `block` is zero.
    pub fn quant8(block: usize) -> Self {
        assert!(block >= 1, "quant8 block must be >= 1");
        Self {
            kind: CodecKind::Quant8 { block },
            delta: false,
            error_feedback: false,
        }
    }

    /// Top-k magnitude sparsification keeping `density` of the coordinates.
    ///
    /// # Panics
    ///
    /// Panics when `density` is outside `(0, 1]`.
    pub fn topk(density: f32) -> Self {
        assert!(
            density > 0.0 && density <= 1.0,
            "topk density must be in (0, 1]"
        );
        Self {
            kind: CodecKind::TopK { density },
            delta: false,
            error_feedback: false,
        }
    }

    /// Adds the delta (residual-vs-last-broadcast) stage.
    pub fn with_delta(mut self) -> Self {
        self.delta = true;
        self
    }

    /// Adds party-side error feedback (residual accumulation) to a lossy
    /// upload codec. See [`CodecSpec::error_feedback`].
    pub fn with_error_feedback(mut self) -> Self {
        self.error_feedback = true;
        self
    }

    /// Parses a CLI codec name. `block` / `density` parameterise the
    /// quantised and sparse kinds. Recognised names: `dense`, `quant8`,
    /// `delta` (dense residuals), `delta-quant8`, `topk` / `delta-topk`
    /// (both residual-coded: top-k of absolute parameters would zero every
    /// unselected weight, so the raw variant is not offered), and
    /// `ef-topk` / `ef-delta-topk` (residual-coded with party-side error
    /// feedback).
    pub fn parse(name: &str, block: usize, density: f32) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "dense" => Some(Self::dense()),
            "quant8" => Some(Self::quant8(block)),
            "delta" => Some(Self::dense().with_delta()),
            "delta-quant8" => Some(Self::quant8(block).with_delta()),
            "topk" | "delta-topk" => Some(Self::topk(density).with_delta()),
            "ef-topk" | "ef-delta-topk" => {
                Some(Self::topk(density).with_delta().with_error_feedback())
            }
            _ => None,
        }
    }

    /// `true` when encode → decode reproduces every input bit-for-bit.
    ///
    /// Only plain dense qualifies: delta coding computes `(p − r) + r` in
    /// `f32`, which is *not* bit-exact when `p` and `r` differ widely in
    /// magnitude, so delta variants always pay the real wire roundtrip.
    /// Lossless codecs skip that in-memory roundtrip on the hot path;
    /// metering still uses the exact encoded sizes.
    pub fn is_lossless(&self) -> bool {
        matches!(self.kind, CodecKind::Dense) && !self.delta
    }

    /// Exact size of an update frame (header + metadata + payload) carrying
    /// `n` parameters.
    pub fn update_len(&self, n: usize) -> usize {
        HEADER_LEN + UPDATE_META_LEN + self.payload_len(n)
    }

    /// Exact size of a broadcast frame (header + payload) carrying `n`
    /// parameters.
    pub fn broadcast_len(&self, n: usize) -> usize {
        HEADER_LEN + self.payload_len(n)
    }

    /// Upload compression ratio versus [`CodecSpec::dense`] at `n`
    /// parameters (value-independent, like every encoded size).
    pub fn compression_ratio(&self, n: usize) -> f64 {
        CodecSpec::dense().update_len(n) as f64 / self.update_len(n) as f64
    }

    /// The spec actually used for a downlink broadcast.
    ///
    /// Sparsified downlinks only make sense as residuals against state the
    /// party already holds: top-k of the absolute globals would zero most
    /// of the model. With no delta stage or no stored reference the
    /// broadcast therefore falls back to a dense full-state frame — and is
    /// metered at that honest size. Dense and quantised kinds broadcast
    /// as themselves (quantisation works on absolutes).
    pub fn broadcast_spec(&self, has_reference: bool) -> CodecSpec {
        match self.kind {
            CodecKind::TopK { .. } if !(self.delta && has_reference) => CodecSpec::dense(),
            _ => *self,
        }
    }

    /// The spec used for a **first-contact** downlink: a party that has
    /// never received a broadcast on this stream holds no delta reference,
    /// so delta stages are undecodable for it and sparse frames would zero
    /// most of the model. First contact therefore ships a self-contained
    /// full-state frame: the base codec without the delta stage, with
    /// sparse kinds falling back to dense. The
    /// [`ScenarioEngine`](crate::ScenarioEngine) meters these frames on the
    /// distinct `first_contact_*` ledger counters so comm tables do not
    /// silently undercount joins.
    pub fn first_contact_spec(&self) -> CodecSpec {
        let kind = match self.kind {
            CodecKind::TopK { .. } => CodecKind::Dense,
            other => other,
        };
        CodecSpec {
            kind,
            delta: false,
            error_feedback: false,
        }
    }

    /// Exact payload size for `n` parameters.
    pub fn payload_len(&self, n: usize) -> usize {
        match self.kind {
            CodecKind::Dense => DenseF32.encoded_len(n),
            CodecKind::Quant8 { block } => QuantizedI8 { block }.encoded_len(n),
            CodecKind::TopK { density } => TopKSparse { density }.encoded_len(n),
        }
    }

    fn tag(&self) -> u8 {
        match self.kind {
            CodecKind::Dense => TAG_DENSE,
            CodecKind::Quant8 { .. } => TAG_QUANT8,
            CodecKind::TopK { .. } => TAG_TOPK,
        }
    }

    fn write_header(&self, n: usize, out: &mut Vec<u8>) {
        out.push(self.tag());
        out.push(if self.delta { FLAG_DELTA } else { 0 });
        put_u32(out, n as u32);
    }

    fn encode_payload(&self, params: &[f32], reference: &[f32], out: &mut Vec<u8>) {
        macro_rules! with_base {
            ($base:expr) => {
                if self.delta {
                    Delta {
                        base: $base,
                        reference,
                    }
                    .encode_into(params, out)
                } else {
                    $base.encode_into(params, out)
                }
            };
        }
        match self.kind {
            CodecKind::Dense => with_base!(DenseF32),
            CodecKind::Quant8 { block } => with_base!(QuantizedI8 { block }),
            CodecKind::TopK { density } => with_base!(TopKSparse { density }),
        }
    }

    fn decode_payload(
        &self,
        reader: &mut Reader<'_>,
        n: usize,
        reference: &[f32],
    ) -> Result<Vec<f32>, CodecError> {
        macro_rules! with_base {
            ($base:expr) => {
                if self.delta {
                    Delta {
                        base: $base,
                        reference,
                    }
                    .decode_from(reader, n)
                } else {
                    $base.decode_from(reader, n)
                }
            };
        }
        match self.kind {
            CodecKind::Dense => with_base!(DenseF32),
            CodecKind::Quant8 { block } => with_base!(QuantizedI8 { block }),
            CodecKind::TopK { density } => with_base!(TopKSparse { density }),
        }
    }

    /// Reads a header, returning the spec it declares and the parameter
    /// count. `Quant8` block and `TopK` density live in the payload (and in
    /// the explicit `k`), so the returned spec is sufficient to decode.
    fn read_header(reader: &mut Reader<'_>) -> Result<(CodecSpec, usize), CodecError> {
        let tag = reader.u8()?;
        let flags = reader.u8()?;
        let n = reader.u32()? as usize;
        let kind = match tag {
            TAG_DENSE => CodecKind::Dense,
            // Block size is re-read from the payload; density is implied by
            // the explicit element count. Placeholder parameters are fine.
            TAG_QUANT8 => CodecKind::Quant8 { block: 256 },
            TAG_TOPK => CodecKind::TopK { density: 1.0 },
            other => return Err(CodecError::BadTag(other)),
        };
        Ok((
            CodecSpec {
                kind,
                delta: flags & FLAG_DELTA != 0,
                // Error feedback is party-side state, invisible on the wire.
                error_feedback: false,
            },
            n,
        ))
    }

    /// Encodes a global-model broadcast against `reference` (the previous
    /// broadcast; empty = zeros, degenerating delta to its base codec).
    pub fn encode_global(&self, params: &[f32], reference: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.broadcast_len(params.len()));
        self.write_header(params.len(), &mut out);
        self.encode_payload(params, reference, &mut out);
        debug_assert_eq!(out.len(), self.broadcast_len(params.len()));
        out
    }

    /// Decodes a broadcast frame (self-describing header).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the frame is truncated, carries an
    /// unknown tag, or holds inconsistent lengths.
    pub fn decode_global(bytes: &[u8], reference: &[f32]) -> Result<Vec<f32>, CodecError> {
        let mut reader = Reader::new(bytes);
        let (spec, n) = Self::read_header(&mut reader)?;
        let params = spec.decode_payload(&mut reader, n, reference)?;
        reader.done()?;
        Ok(params)
    }

    /// Encodes a full update frame. Exposed through
    /// [`ModelUpdate::encode`](crate::ModelUpdate::encode).
    pub(crate) fn encode_update(&self, update: &ModelUpdate, reference: &[f32]) -> Vec<u8> {
        let n = update.params.len();
        let mut out = Vec::with_capacity(self.update_len(n));
        self.write_header(n, &mut out);
        out.extend_from_slice(&(update.party.0 as u64).to_le_bytes());
        put_u32(&mut out, update.num_samples as u32);
        put_f32(&mut out, update.train_loss);
        self.encode_payload(&update.params, reference, &mut out);
        debug_assert_eq!(out.len(), self.update_len(n));
        out
    }

    /// Decodes a full update frame (self-describing header).
    pub(crate) fn decode_update(
        bytes: &[u8],
        reference: &[f32],
    ) -> Result<ModelUpdate, CodecError> {
        let mut reader = Reader::new(bytes);
        let (spec, n) = Self::read_header(&mut reader)?;
        let party = PartyId(reader.u64()? as usize);
        let num_samples = reader.u32()? as usize;
        let train_loss = reader.f32()?;
        let params = spec.decode_payload(&mut reader, n, reference)?;
        reader.done()?;
        Ok(ModelUpdate {
            party,
            params,
            num_samples,
            train_loss,
        })
    }

    /// Sends `params` across the wire and back: encode against `reference`,
    /// decode the payload the receiver would see. Lossless codecs return the
    /// input unchanged without paying the roundtrip.
    pub fn transport(&self, params: Vec<f32>, reference: &[f32]) -> Vec<f32> {
        if self.is_lossless() {
            return params;
        }
        let wire = self.encode_global(&params, reference);
        // lint:allow(panic): decoding a frame this codec just encoded cannot fail
        Self::decode_global(&wire, reference).expect("self-encoded payload decodes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(spec: &CodecSpec, params: &[f32], reference: &[f32]) -> Vec<f32> {
        let wire = spec.encode_global(params, reference);
        assert_eq!(
            wire.len(),
            spec.broadcast_len(params.len()),
            "{spec}: encoded_len must be exact"
        );
        CodecSpec::decode_global(&wire, reference).expect("roundtrip decodes")
    }

    #[test]
    fn dense_roundtrip_is_bit_exact() {
        let params = vec![1.0, -2.5, 0.0, f32::MIN_POSITIVE, 3.4e38, -1.0e-20];
        assert_eq!(roundtrip(&CodecSpec::dense(), &params, &[]), params);
    }

    #[test]
    fn empty_vectors_roundtrip_under_every_codec() {
        for spec in [
            CodecSpec::dense(),
            CodecSpec::quant8(256),
            CodecSpec::topk(0.1),
            CodecSpec::dense().with_delta(),
            CodecSpec::quant8(4).with_delta(),
            CodecSpec::topk(0.5).with_delta(),
        ] {
            assert_eq!(roundtrip(&spec, &[], &[]), Vec::<f32>::new(), "{spec}");
        }
    }

    #[test]
    fn quant8_error_is_bounded_by_half_scale_per_block() {
        let params: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin() * 10.0).collect();
        let spec = CodecSpec::quant8(256);
        let decoded = roundtrip(&spec, &params, &[]);
        for chunk in params.chunks(256).zip(decoded.chunks(256)) {
            let (orig, dec) = chunk;
            let lo = orig.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = orig.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let scale = (hi - lo) / 255.0;
            for (&a, &b) in orig.iter().zip(dec.iter()) {
                assert!(
                    (a - b).abs() <= scale * 0.5 + 1e-5,
                    "quant error {} exceeds half-scale {}",
                    (a - b).abs(),
                    scale * 0.5
                );
            }
        }
    }

    #[test]
    fn quant8_constant_block_is_exact() {
        let params = vec![4.25f32; 300];
        assert_eq!(roundtrip(&CodecSpec::quant8(256), &params, &[]), params);
    }

    #[test]
    fn topk_keeps_largest_magnitudes_exactly_and_zeroes_the_rest() {
        let params = vec![0.1, -9.0, 0.2, 7.0, -0.3, 0.0, 8.0, -0.4];
        let spec = CodecSpec {
            kind: CodecKind::TopK { density: 0.375 },
            delta: false,
            error_feedback: false,
        };
        let decoded = roundtrip(&spec, &params, &[]);
        assert_eq!(decoded, vec![0.0, -9.0, 0.0, 7.0, 0.0, 0.0, 8.0, 0.0]);
    }

    #[test]
    fn topk_tie_break_is_deterministic_by_index() {
        let params = vec![1.0, -1.0, 1.0, 1.0];
        let spec = CodecSpec {
            kind: CodecKind::TopK { density: 0.5 },
            delta: false,
            error_feedback: false,
        };
        let decoded = roundtrip(&spec, &params, &[]);
        assert_eq!(
            decoded,
            vec![1.0, -1.0, 0.0, 0.0],
            "lowest indices win ties"
        );
    }

    #[test]
    fn delta_dense_roundtrips_exactly_on_representable_residuals() {
        let params = vec![1.5, -0.25, 3.0];
        let reference = vec![1.0, 1.0, 1.0];
        let spec = CodecSpec::dense().with_delta();
        assert_eq!(roundtrip(&spec, &params, &reference), params);
    }

    #[test]
    fn delta_dense_is_not_bit_lossless_and_says_so() {
        // (p − r) + r rounds when magnitudes differ widely — which is why
        // is_lossless() must not let delta variants skip the roundtrip.
        assert!(CodecSpec::dense().is_lossless());
        assert!(!CodecSpec::dense().with_delta().is_lossless());
        let spec = CodecSpec::dense().with_delta();
        let decoded = roundtrip(&spec, &[1e-8], &[1.0]);
        assert_eq!(decoded, vec![0.0], "tiny p against large r rounds away");
    }

    #[test]
    fn delta_topk_recovers_reference_plus_largest_residuals() {
        let reference = vec![10.0, 20.0, 30.0, 40.0];
        let params = vec![10.1, 25.0, 30.0, 40.2]; // residuals 0.1, 5.0, 0.0, 0.2
        let spec = CodecSpec::topk(0.25).with_delta();
        let decoded = roundtrip(&spec, &params, &reference);
        assert_eq!(decoded, vec![10.0, 25.0, 30.0, 40.0]);
    }

    #[test]
    fn short_or_empty_reference_counts_as_zeros() {
        let params = vec![1.0, 2.0, 3.0];
        let spec = CodecSpec::dense().with_delta();
        assert_eq!(roundtrip(&spec, &params, &[]), params);
        assert_eq!(roundtrip(&spec, &params, &[0.5]), params);
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert_eq!(
            CodecSpec::decode_global(&[], &[]),
            Err(CodecError::Truncated)
        );
        assert_eq!(
            CodecSpec::decode_global(&[9, 0, 1, 0, 0, 0], &[]),
            Err(CodecError::BadTag(9))
        );
        let mut wire = CodecSpec::dense().encode_global(&[1.0, 2.0], &[]);
        wire.truncate(wire.len() - 1);
        assert_eq!(
            CodecSpec::decode_global(&wire, &[]),
            Err(CodecError::Truncated)
        );
        let mut wire = CodecSpec::dense().encode_global(&[1.0], &[]);
        wire.push(0);
        assert!(matches!(
            CodecSpec::decode_global(&wire, &[]),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn topk_decode_rejects_out_of_range_indices() {
        let spec = CodecSpec::topk(1.0);
        let mut wire = spec.encode_global(&[1.0, 2.0], &[]);
        // Corrupt the first index (header 6 bytes + k 4 bytes).
        wire[10] = 0xff;
        assert!(matches!(
            CodecSpec::decode_global(&wire, &[]),
            Err(CodecError::BadIndex { .. }) | Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn parse_covers_the_cli_names() {
        assert_eq!(
            CodecSpec::parse("dense", 256, 0.1),
            Some(CodecSpec::dense())
        );
        assert_eq!(
            CodecSpec::parse("quant8", 64, 0.1),
            Some(CodecSpec::quant8(64))
        );
        assert_eq!(
            CodecSpec::parse("delta", 256, 0.1),
            Some(CodecSpec::dense().with_delta())
        );
        assert_eq!(
            CodecSpec::parse("delta-quant8", 128, 0.1),
            Some(CodecSpec::quant8(128).with_delta())
        );
        // Raw top-k is never offered: both names carry the delta stage.
        assert_eq!(
            CodecSpec::parse("topk", 256, 0.05),
            Some(CodecSpec::topk(0.05).with_delta())
        );
        assert_eq!(
            CodecSpec::parse("DELTA-TOPK", 256, 0.05),
            Some(CodecSpec::topk(0.05).with_delta())
        );
        assert_eq!(CodecSpec::parse("gzip", 256, 0.1), None);
    }

    #[test]
    fn quant8_compression_ratio_beats_3_5x() {
        let spec = CodecSpec::quant8(256);
        for n in [10_000, 100_000, 1_000_000] {
            let ratio = spec.compression_ratio(n);
            assert!(ratio >= 3.5, "quant8 ratio {ratio:.2} at n={n}");
        }
    }

    #[test]
    fn update_frames_carry_metadata() {
        let update = ModelUpdate {
            party: PartyId(7),
            params: vec![1.0, -1.0, 0.5],
            num_samples: 42,
            train_loss: 0.75,
        };
        let spec = CodecSpec::dense();
        let wire = spec.encode_update(&update, &[]);
        assert_eq!(wire.len(), spec.update_len(3));
        let back = CodecSpec::decode_update(&wire, &[]).expect("decodes");
        assert_eq!(back, update);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(CodecSpec::dense().to_string(), "dense");
        assert_eq!(CodecSpec::quant8(256).to_string(), "quant8(block=256)");
        assert_eq!(
            CodecSpec::topk(0.05).with_delta().to_string(),
            "delta+topk(density=0.05)"
        );
        assert_eq!(
            CodecSpec::topk(0.05)
                .with_delta()
                .with_error_feedback()
                .to_string(),
            "ef+delta+topk(density=0.05)"
        );
    }

    #[test]
    fn error_feedback_parses_and_stays_off_the_wire() {
        assert_eq!(
            CodecSpec::parse("ef-topk", 256, 0.02),
            Some(CodecSpec::topk(0.02).with_delta().with_error_feedback())
        );
        // The wire format is identical: same sizes, and a decoded header
        // never carries the flag.
        let ef = CodecSpec::topk(0.1).with_delta().with_error_feedback();
        let plain = CodecSpec::topk(0.1).with_delta();
        assert_eq!(ef.update_len(500), plain.update_len(500));
        assert_eq!(ef.broadcast_len(500), plain.broadcast_len(500));
    }

    #[test]
    fn first_contact_spec_is_self_contained() {
        // Sparse and delta stages need state the joiner lacks.
        assert_eq!(
            CodecSpec::topk(0.05).with_delta().first_contact_spec(),
            CodecSpec::dense()
        );
        assert_eq!(
            CodecSpec::dense().with_delta().first_contact_spec(),
            CodecSpec::dense()
        );
        // Absolute quantisation decodes without any reference.
        assert_eq!(
            CodecSpec::quant8(128).with_delta().first_contact_spec(),
            CodecSpec::quant8(128)
        );
        assert_eq!(CodecSpec::dense().first_contact_spec(), CodecSpec::dense());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_dense_roundtrip_exact(params in proptest::collection::vec(-100.0f32..100.0, 0..600)) {
            let spec = CodecSpec::dense();
            prop_assert_eq!(roundtrip(&spec, &params, &[]), params);
        }

        #[test]
        fn prop_quant8_roundtrip_within_half_scale(
            params in proptest::collection::vec(-50.0f32..50.0, 1..600),
            block in 1usize..300,
        ) {
            let spec = CodecSpec::quant8(block);
            let decoded = roundtrip(&spec, &params, &[]);
            for (chunk, dec) in params.chunks(block).zip(decoded.chunks(block)) {
                let lo = chunk.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let bound = (hi - lo) / 255.0 * 0.5 + 1e-4;
                for (&a, &b) in chunk.iter().zip(dec.iter()) {
                    prop_assert!((a - b).abs() <= bound, "error {} > bound {}", (a - b).abs(), bound);
                }
            }
        }

        #[test]
        fn prop_topk_selected_coordinates_are_exact(
            params in proptest::collection::vec(-10.0f32..10.0, 1..400),
            density_pct in 1u32..=100,
        ) {
            let spec = CodecSpec::topk(density_pct as f32 / 100.0);
            let decoded = roundtrip(&spec, &params, &[]);
            let kept = decoded.iter().filter(|v| **v != 0.0).count();
            let k = TopKSparse { density: density_pct as f32 / 100.0 }.k_for(params.len());
            prop_assert!(kept <= k, "kept {} > k {}", kept, k);
            // Every surviving coordinate is bit-identical to its source.
            for (&orig, &dec) in params.iter().zip(decoded.iter()) {
                prop_assert!(dec == 0.0 || dec == orig);
            }
        }

        #[test]
        fn prop_delta_quant8_roundtrip_tracks_reference(
            reference in proptest::collection::vec(-20.0f32..20.0, 64),
            noise in proptest::collection::vec(-0.5f32..0.5, 64),
        ) {
            // Residuals are small, so delta+quant8 reconstructs tightly even
            // though absolute values span a wide range.
            let params: Vec<f32> = reference.iter().zip(noise.iter()).map(|(r, n)| r + n).collect();
            let spec = CodecSpec::quant8(32).with_delta();
            let decoded = roundtrip(&spec, &params, &reference);
            for (&a, &b) in params.iter().zip(decoded.iter()) {
                prop_assert!((a - b).abs() <= 1.0 / 255.0 + 1e-4);
            }
        }

        #[test]
        fn prop_encoded_len_matches_actual_bytes(
            params in proptest::collection::vec(-5.0f32..5.0, 0..500),
            pick in 0usize..6,
        ) {
            let spec = [
                CodecSpec::dense(),
                CodecSpec::quant8(64),
                CodecSpec::topk(0.1),
                CodecSpec::dense().with_delta(),
                CodecSpec::quant8(256).with_delta(),
                CodecSpec::topk(0.25).with_delta(),
            ][pick];
            let wire = spec.encode_global(&params, &[]);
            prop_assert_eq!(wire.len(), spec.broadcast_len(params.len()));
            let update = ModelUpdate {
                party: PartyId(1),
                params: params.clone(),
                num_samples: 5,
                train_loss: 0.5,
            };
            let uw = spec.encode_update(&update, &[]);
            prop_assert_eq!(uw.len(), spec.update_len(params.len()));
        }
    }
}
