//! The unified algorithm API: every federated algorithm — ShiftEx and all
//! baselines — implements [`FederatedAlgorithm`], and one generic driver
//! ([`run_algorithm_round`]) threads the scenario engine (churn, stragglers,
//! staleness-aware async aggregation), the wire codec, the participant
//! selector, and the communication ledger through each of them identically.
//!
//! The paper's claim is comparative, so the runtime must be too: an
//! algorithm that only runs on a bespoke driver cannot be measured under
//! the same churn schedule, deadline pressure, and quantised uplinks as its
//! competitors. The trait factors a round into the five things algorithms
//! actually differ in:
//!
//! 1. **state** — how many models are maintained ([`streams`] — one per
//!    global model / expert) and what each broadcasts
//!    ([`broadcast_state`]);
//! 2. **cohorting** — which live parties train each stream this round
//!    ([`cohort`]); single-model algorithms delegate to the pluggable
//!    [`ParticipantSelector`] (uniform / OORT), mixture and cluster
//!    algorithms bring their own policy;
//! 3. **local work** — the party-side step ([`local_step`], defaulting to
//!    SGD via [`local_update`] under the algorithm's
//!    [`train_config`]);
//! 4. **folding** — how decoded, staleness-weighted updates enter the
//!    model ([`fold`]);
//! 5. **window reaction** — what happens at a shift boundary
//!    ([`begin_window`]: detection, re-clustering, expert management).
//!
//! Everything else — selection gating by churn, mid-round dropout fates,
//! deadline scoring, buffering, staleness discounts, codec encode/decode,
//! first-contact full-state frames, error feedback, byte metering — is the
//! driver's job and therefore *identical across algorithms by
//! construction*.
//!
//! [`streams`]: FederatedAlgorithm::streams
//! [`broadcast_state`]: FederatedAlgorithm::broadcast_state
//! [`cohort`]: FederatedAlgorithm::cohort
//! [`local_step`]: FederatedAlgorithm::local_step
//! [`train_config`]: FederatedAlgorithm::train_config
//! [`fold`]: FederatedAlgorithm::fold
//! [`begin_window`]: FederatedAlgorithm::begin_window

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_nn::{ArchSpec, TrainConfig};

use crate::codec::CodecSpec;
use crate::comm::CommLedger;
use crate::control::CodecController;
use crate::party::{Party, PartyId};
use crate::population::{PopulationStore, PopulationView};
use crate::robust::{FoldPolicy, UpdateVerdict};
use crate::round::local_update;
use crate::scenario::{RoundMode, ScenarioEngine, WeightedUpdate};
use crate::selection::ParticipantSelector;
use crate::transport::{CohortExchange, CohortTransport, LocalTransport, UploadOutcome};
use crate::update::ModelUpdate;

/// One federated algorithm's lifecycle under the scenario runtime.
///
/// Implementations must be deterministic given the driver's RNG: every
/// stochastic choice draws from the `rng` handed in, in a call order that
/// does not depend on anything but the inputs. The driver guarantees the
/// same in return, which is what makes whole scenario runs rerun-identical.
pub trait FederatedAlgorithm {
    /// Algorithm name as it appears in tables and reports.
    fn name(&self) -> &str;

    /// The model architecture every stream trains.
    fn arch(&self) -> &ArchSpec;

    /// One-time W0 setup: build the initial model state from this run's RNG
    /// stream and enrol the population behind `parties`. Called exactly
    /// once, before any round. Algorithms must stream parties through the
    /// view (one resident at a time) rather than collecting them.
    fn init(&mut self, parties: &PopulationView<'_>, rng: &mut StdRng);

    /// Window-boundary hook: the enrolled members' data has just advanced
    /// to `window` (≥ 1). Shift detection, re-clustering, expert management
    /// — whatever the algorithm does between windows.
    fn begin_window(&mut self, window: usize, members: &PopulationView<'_>, rng: &mut StdRng);

    /// Keys of the update streams (one per concurrently trained model) in
    /// training order. Single-model algorithms return `vec![0]`; mixture
    /// algorithms one stable key per expert. Keys index the engine's
    /// staleness buffers and broadcast references, so they must not be
    /// reused across distinct models within a run.
    fn streams(&self) -> Vec<usize>;

    /// Current global parameters of stream `key` (what a round broadcasts).
    fn broadcast_state(&self, key: usize) -> Vec<f32>;

    /// Local-training hyper-parameters for stream `key`.
    fn train_config(&self, key: usize) -> TrainConfig;

    /// This round's cohort for stream `key`, drawn from the live (enrolled,
    /// pre-dropout) view. The returned order is the training and
    /// aggregation order. Algorithms without their own policy should
    /// delegate to `selector`; those with one (FLIPS clusters, per-expert
    /// selection) may ignore it.
    fn cohort(
        &mut self,
        key: usize,
        live: &PopulationView<'_>,
        selector: &mut dyn ParticipantSelector,
        rng: &mut StdRng,
    ) -> Vec<PartyId>;

    /// One party's local step from the decoded broadcast, under an
    /// independent RNG stream derived from `seed`.
    fn local_step(&self, key: usize, party: &Party, decoded: &[f32], seed: u64) -> ModelUpdate {
        local_update(self.arch(), decoded, party, &self.train_config(key), seed)
    }

    /// Folds the decoded, staleness-weighted updates the engine released
    /// into stream `key` under `policy` — algorithms delegate the value
    /// combination to [`aggregate_robust`](crate::robust::aggregate_robust)
    /// so every (algorithm × fold) cell shares one robust-statistics
    /// implementation, and return its per-update verdicts so the driver can
    /// meter quarantines and feed the selector. An empty `ready` set must
    /// leave the stream's parameters untouched (churn can empty any round)
    /// and return no verdicts.
    fn fold(
        &mut self,
        key: usize,
        ready: &[WeightedUpdate],
        server_lr: f32,
        policy: &FoldPolicy,
    ) -> Vec<UpdateVerdict>;

    /// Post-round hook after every stream folded (e.g. personalised local
    /// steps for fine-tuned parties). Default: nothing.
    fn end_round(&mut self, _live: &PopulationView<'_>, _rng: &mut StdRng) {}

    /// Sample-weighted population accuracy over `parties`, each evaluated
    /// under the model this algorithm currently assigns to it.
    fn eval(&self, parties: &PopulationView<'_>) -> f32;

    /// Dense model index currently assigned to `party` (for the
    /// expert-distribution figures); single-model algorithms return 0.
    fn model_index(&self, party: PartyId) -> usize;

    /// Number of distinct models currently maintained.
    fn num_models(&self) -> usize;
}

/// Per-round robust-aggregation telemetry, summed over an algorithm's
/// streams: how many updates arrived, how many the fold refused, and how
/// suspicious the cohort looked (fold-specific distance scores from
/// [`UpdateVerdict::score`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Updates the engine released into folds this round.
    pub received: usize,
    /// Updates a robust fold quarantined (received but not aggregated).
    pub quarantined: usize,
    /// Updates that entered an aggregation (`received − quarantined`).
    pub folded: usize,
    /// Mean fold distance score over received updates (0 under `Mean`).
    pub mean_score: f32,
    /// Largest fold distance score this round (0 under `Mean`).
    pub max_score: f32,
}

impl RobustnessReport {
    /// Accumulates one stream's fold verdicts into the round report.
    fn absorb(&mut self, verdicts: &[UpdateVerdict]) {
        let prior = self.received as f32;
        self.received += verdicts.len();
        for v in verdicts {
            if v.quarantined {
                self.quarantined += 1;
            } else {
                self.folded += 1;
            }
            self.max_score = self.max_score.max(v.score);
        }
        if self.received > 0 {
            let sum: f32 = prior * self.mean_score + verdicts.iter().map(|v| v.score).sum::<f32>();
            self.mean_score = sum / self.received as f32;
        }
    }
}

/// What one scenario-mediated round did, across all of an algorithm's
/// streams.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoRoundOutcome {
    /// 1-based round index (the engine's clock after this round began).
    pub round: usize,
    /// Enrolled members this round (after join/leave churn).
    pub live: Vec<PartyId>,
    /// Updates folded into an aggregation, summed over streams (excludes
    /// quarantined updates).
    pub folded: usize,
    /// Parties whose uploads were aborted this round (mid-round dropout or
    /// late-drop), across streams.
    pub lost: Vec<PartyId>,
    /// Updates deferred into staleness buffers this round, across streams.
    pub deferred: usize,
    /// Robust-aggregation telemetry for this round.
    pub robustness: RobustnessReport,
}

/// The codec policy a round runs under: one static spec for every stream,
/// or an adaptive [`CodecController`] consulted per stream against the
/// observed byte ledger and the stream's error-feedback magnitude.
#[derive(Debug, Clone, Copy)]
pub enum RoundCodec<'a> {
    /// The same spec on every stream — the pre-controller behaviour, with
    /// byte accounting pinned by the conformance goldens.
    Static(&'a CodecSpec),
    /// Per-`(round, stream)` choice within a byte budget. The controller
    /// is pure, so adaptive rounds stay rerun-identical.
    Adaptive(&'a CodecController),
}

/// Runs one scenario-mediated round of `algorithm`: advances the engine's
/// round clock, gates the pool by churn, and — per stream — selects a
/// cohort, broadcasts the encoded globals (first-contact recipients get
/// metered full-state frames), fans out local steps (label-poisoning
/// attackers train on flipped labels), ships every upload through `codec`
/// (with error feedback when configured; wire-level attackers corrupt
/// theirs in transit), lets the engine apply dropout/straggler/staleness
/// fates, feeds selector utility, liveness, and rejection signals, and
/// folds whatever matured under `policy`, metering and refunding whatever
/// the fold quarantines.
///
/// This is the *only* round driver: ShiftEx and every baseline pay for the
/// same scenario axes and the same bytes, so head-to-head numbers compare
/// algorithms rather than runtimes.
#[allow(clippy::too_many_arguments)] // the round's full I/O surface: wire, fold, meter, seed
pub fn run_algorithm_round<A: FederatedAlgorithm + ?Sized>(
    algorithm: &mut A,
    population: &PopulationStore,
    engine: &mut ScenarioEngine,
    codec: &CodecSpec,
    selector: &mut dyn ParticipantSelector,
    policy: &FoldPolicy,
    ledger: Option<&CommLedger>,
    rng: &mut StdRng,
) -> AlgoRoundOutcome {
    run_algorithm_round_with(
        algorithm,
        population,
        engine,
        RoundCodec::Static(codec),
        selector,
        policy,
        ledger,
        rng,
    )
}

/// Like [`run_algorithm_round`] but with the codec policy generalised to
/// [`RoundCodec`]: an adaptive controller picks each stream's spec from
/// the observed ledger snapshot and the stream's error-feedback magnitude
/// before the stream broadcasts. The static arm is byte-for-byte the old
/// driver.
#[allow(clippy::too_many_arguments)] // the round's full I/O surface: wire, fold, meter, seed
pub fn run_algorithm_round_with<A: FederatedAlgorithm + ?Sized>(
    algorithm: &mut A,
    population: &PopulationStore,
    engine: &mut ScenarioEngine,
    codec: RoundCodec<'_>,
    selector: &mut dyn ParticipantSelector,
    policy: &FoldPolicy,
    ledger: Option<&CommLedger>,
    rng: &mut StdRng,
) -> AlgoRoundOutcome {
    run_algorithm_round_transported(
        algorithm,
        population,
        engine,
        codec,
        selector,
        policy,
        ledger,
        rng,
        &mut LocalTransport,
    )
}

/// Like [`run_algorithm_round_with`] but with the broadcast → local-step →
/// upload leg of each stream delegated to an explicit [`CohortTransport`]:
/// [`LocalTransport`] reproduces the in-process exchange bit-for-bit, a
/// networked transport ships the same encoded frames to worker processes
/// over real sockets. Parties the transport reports as
/// [`UploadOutcome::Lost`] (real disconnects, sockets stalled past the
/// round deadline) are metered as aborted uploads at the exact frame size
/// and fed to the selector's availability hook — the same paths the
/// engine's simulated churn and straggler axes use.
#[allow(clippy::too_many_arguments)] // the round's full I/O surface: wire, fold, meter, seed
pub fn run_algorithm_round_transported<A: FederatedAlgorithm + ?Sized>(
    algorithm: &mut A,
    population: &PopulationStore,
    engine: &mut ScenarioEngine,
    codec: RoundCodec<'_>,
    selector: &mut dyn ParticipantSelector,
    policy: &FoldPolicy,
    ledger: Option<&CommLedger>,
    rng: &mut StdRng,
    transport: &mut dyn CohortTransport,
) -> AlgoRoundOutcome {
    let round = engine.begin_round();
    selector.begin_round();
    let all_ids = population.party_ids();
    let live_ids = engine.live_members(&all_ids);
    let live = population.view(live_ids.clone());
    let server_lr = match engine.spec().mode {
        RoundMode::Sync => 1.0,
        RoundMode::Async(a) => a.server_lr,
    };

    let mut deferred = 0usize;
    let mut lost = Vec::new();
    let mut robustness = RobustnessReport::default();
    for key in algorithm.streams() {
        let cohort_ids = algorithm.cohort(key, &live, selector, rng);
        let globals = algorithm.broadcast_state(key);
        // Resolve the stream's codec: static specs pass through untouched;
        // an adaptive controller decides from (round, stream, cohort size,
        // model size, observed ledger, EF magnitude) — all deterministic.
        let adaptive_spec;
        let codec: &CodecSpec = match codec {
            RoundCodec::Static(spec) => spec,
            RoundCodec::Adaptive(controller) => {
                let totals = ledger.map(|l| l.totals()).unwrap_or_default();
                adaptive_spec = controller.spec_for(
                    round,
                    key,
                    cohort_ids.len(),
                    globals.len(),
                    &totals,
                    engine.ef_magnitude(key),
                );
                &adaptive_spec
            }
        };
        // One pre-drawn seed per member keeps results independent of
        // training order (and identical to the parallel fan-out and to a
        // networked coordinator, which draws these exact seeds here before
        // any socket I/O).
        let seeds: Vec<u64> = cohort_ids.iter().map(|_| rng.random::<u64>()).collect();
        let outcomes = transport.exchange(
            &CohortExchange {
                key,
                globals: &globals,
                codec,
                cohort: &cohort_ids,
                seeds: &seeds,
            },
            &live,
            engine,
            ledger,
            &mut |party, decoded, seed| algorithm.local_step(key, party, decoded, seed),
        );
        let mut arrived: Vec<ModelUpdate> = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                UploadOutcome::Delivered(update) => arrived.push(update),
                UploadOutcome::Lost(party) => {
                    // A real loss (socket died or stalled past the round
                    // deadline): the party paid for the upload it never
                    // landed — meter the exact frame size as aborted and
                    // let availability-aware selectors cool the party
                    // down, exactly as the simulated axes do.
                    if let Some(l) = ledger {
                        l.record_aborted_upload(codec.update_len(globals.len()));
                    }
                    selector.on_unavailable(party);
                    lost.push(party);
                }
            }
        }
        let delivery = engine.collect(key, arrived, codec, ledger);
        for &party in &delivery.lost {
            selector.on_unavailable(party);
        }
        deferred += delivery.deferred.len();
        lost.extend_from_slice(&delivery.lost);
        let verdicts = algorithm.fold(key, &delivery.ready, server_lr, policy);
        let quarantined: BTreeSet<PartyId> = verdicts
            .iter()
            .filter(|v| v.quarantined)
            .map(|v| v.party)
            .collect();
        for w in &delivery.ready {
            if quarantined.contains(&w.update.party) {
                // The upload completed and its bytes were metered; overlay
                // the rejection, tell the selector the party was alive but
                // refused, and refund the shipped mass into the party's
                // error-feedback accumulator so lossy codecs re-ship it.
                if let Some(ledger) = ledger {
                    ledger.record_quarantined_upload(w.update.encoded_len(codec));
                }
                selector.on_rejected(w.update.party);
                engine.refund_quarantined(key, codec, &w.update);
            } else {
                selector.observe(w.update.party, w.update.train_loss);
            }
        }
        robustness.absorb(&verdicts);
    }
    algorithm.end_round(&live, rng);
    // Close the round on the transport (a networked coordinator tells its
    // workers; the local transport is a no-op).
    transport.round_complete(engine);

    AlgoRoundOutcome {
        round,
        live: live_ids,
        folded: robustness.folded,
        lost,
        deferred,
        robustness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ChurnSpec, ScenarioSpec};
    use crate::selection::UniformSelector;
    use rand::SeedableRng;
    use shiftex_data::{ImageShape, PrototypeGenerator};
    use shiftex_nn::Sequential;

    /// Minimal single-model reference implementation for driver tests.
    struct PlainFedAvg {
        spec: ArchSpec,
        params: Vec<f32>,
        ppr: usize,
    }

    impl FederatedAlgorithm for PlainFedAvg {
        fn name(&self) -> &str {
            "plain"
        }
        fn arch(&self) -> &ArchSpec {
            &self.spec
        }
        fn init(&mut self, _parties: &PopulationView<'_>, rng: &mut StdRng) {
            self.params = Sequential::build(&self.spec, rng).params_flat();
        }
        fn begin_window(&mut self, _w: usize, _m: &PopulationView<'_>, _rng: &mut StdRng) {}
        fn streams(&self) -> Vec<usize> {
            vec![0]
        }
        fn broadcast_state(&self, _key: usize) -> Vec<f32> {
            self.params.clone()
        }
        fn train_config(&self, _key: usize) -> TrainConfig {
            TrainConfig::default()
        }
        fn cohort(
            &mut self,
            _key: usize,
            live: &PopulationView<'_>,
            selector: &mut dyn ParticipantSelector,
            rng: &mut StdRng,
        ) -> Vec<PartyId> {
            if live.is_empty() {
                return Vec::new();
            }
            let infos = live.infos();
            let chosen: BTreeSet<PartyId> =
                selector.select(&infos, self.ppr, rng).into_iter().collect();
            live.ids()
                .iter()
                .copied()
                .filter(|id| chosen.contains(id))
                .collect()
        }
        fn fold(
            &mut self,
            _key: usize,
            ready: &[WeightedUpdate],
            server_lr: f32,
            policy: &FoldPolicy,
        ) -> Vec<UpdateVerdict> {
            let fold = crate::robust::aggregate_robust(&self.params, ready, server_lr, policy);
            if let Some(p) = fold.params {
                self.params = p;
            }
            fold.verdicts
        }
        fn eval(&self, parties: &PopulationView<'_>) -> f32 {
            crate::evaluate_on_view(&self.spec, &self.params, parties)
        }
        fn model_index(&self, _party: PartyId) -> usize {
            0
        }
        fn num_models(&self) -> usize {
            1
        }
    }

    fn setup(n: usize, seed: u64) -> (PlainFedAvg, Vec<Party>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        let parties: Vec<Party> = (0..n)
            .map(|i| {
                Party::new(
                    PartyId(i),
                    gen.generate_uniform(24, &mut rng),
                    gen.generate_uniform(12, &mut rng),
                )
            })
            .collect();
        let spec = ArchSpec::mlp("algo", 16, &[10], 3);
        let alg = PlainFedAvg {
            spec,
            params: Vec::new(),
            ppr: n,
        };
        (alg, parties)
    }

    #[test]
    fn driver_round_matches_legacy_job_round() {
        // The generic driver on a plain single-model algorithm must be
        // bit-identical to FederatedJob::run_rounds_scenario: same RNG
        // draw order, same aggregation.
        let (mut alg, parties) = setup(5, 0);
        let ids: Vec<PartyId> = parties.iter().map(Party::id).collect();
        let store = PopulationStore::from_parties(parties.clone());

        let mut rng = StdRng::seed_from_u64(1);
        alg.init(&store.view(store.party_ids()), &mut rng);
        let init = alg.params.clone();
        let mut engine = ScenarioEngine::new(ScenarioSpec::sync(3), &ids);
        for _ in 0..2 {
            run_algorithm_round(
                &mut alg,
                &store,
                &mut engine,
                &CodecSpec::dense(),
                &mut UniformSelector,
                &FoldPolicy::Mean,
                None,
                &mut rng,
            );
        }

        let mut job = crate::FederatedJob::new(
            alg.spec.clone(),
            parties.clone(),
            crate::RoundConfig {
                participants_per_round: 5,
                ..Default::default()
            },
        );
        let mut rng2 = StdRng::seed_from_u64(1);
        // Burn the draw the algorithm's init consumed.
        let init2 = Sequential::build(&alg.spec, &mut rng2).params_flat();
        assert_eq!(init, init2);
        let mut engine2 = ScenarioEngine::new(ScenarioSpec::sync(3), &ids);
        let report =
            job.run_rounds_scenario(init2, 2, &mut UniformSelector, &mut engine2, &mut rng2);
        assert_eq!(alg.params, report.params, "driver == legacy job path");
    }

    #[test]
    fn driver_survives_a_fully_churned_round() {
        let (mut alg, parties) = setup(4, 7);
        let ids: Vec<PartyId> = parties.iter().map(Party::id).collect();
        let store = PopulationStore::from_parties(parties);
        let mut rng = StdRng::seed_from_u64(8);
        alg.init(&store.view(store.party_ids()), &mut rng);
        let before = alg.params.clone();
        let spec = ScenarioSpec::sync(1).with_churn(ChurnSpec::dropout_only(1.0));
        let mut engine = ScenarioEngine::new(spec, &ids);
        let out = run_algorithm_round(
            &mut alg,
            &store,
            &mut engine,
            &CodecSpec::dense(),
            &mut UniformSelector,
            &FoldPolicy::Mean,
            None,
            &mut rng,
        );
        assert_eq!(out.folded, 0);
        assert_eq!(out.lost.len(), 4);
        assert_eq!(alg.params, before, "no survivors → globals unchanged");
    }

    #[test]
    fn driver_meters_first_contact_then_regular_frames() {
        let (mut alg, parties) = setup(3, 11);
        let ids: Vec<PartyId> = parties.iter().map(Party::id).collect();
        let store = PopulationStore::from_parties(parties);
        let mut rng = StdRng::seed_from_u64(12);
        alg.init(&store.view(store.party_ids()), &mut rng);
        let codec = CodecSpec::quant8(256).with_delta();
        let ledger = CommLedger::new();
        let mut engine = ScenarioEngine::new(ScenarioSpec::sync(2), &ids);
        run_algorithm_round(
            &mut alg,
            &store,
            &mut engine,
            &codec,
            &mut UniformSelector,
            &FoldPolicy::Mean,
            Some(&ledger),
            &mut rng,
        );
        let n = alg.params.len();
        let t1 = ledger.totals();
        assert_eq!(t1.down_bytes, 0, "round 1 is all first contact");
        assert_eq!(
            t1.first_contact_down_bytes,
            3 * codec.first_contact_spec().broadcast_len(n) as u64
        );
        run_algorithm_round(
            &mut alg,
            &store,
            &mut engine,
            &codec,
            &mut UniformSelector,
            &FoldPolicy::Mean,
            Some(&ledger),
            &mut rng,
        );
        let t2 = ledger.totals();
        assert_eq!(
            t2.down_bytes,
            3 * codec.broadcast_len(n) as u64,
            "round 2 recipients hold the reference"
        );
        assert_eq!(
            t2.first_contact_down_bytes, t1.first_contact_down_bytes,
            "no new first contacts"
        );
    }
}
