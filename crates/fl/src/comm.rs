//! Communication accounting: upload/download byte ledger shared across
//! threads.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Aggregate communication counters for one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommTotals {
    /// Bytes uploaded party → aggregator.
    pub up_bytes: u64,
    /// Bytes downloaded aggregator → party.
    pub down_bytes: u64,
    /// Message count in either direction.
    pub messages: u64,
    /// Bytes of aborted/late uploads (dropped stragglers, mid-round churn):
    /// traffic a party paid for that never became an aggregated update.
    pub aborted_up_bytes: u64,
    /// Count of aborted/late uploads.
    pub aborted_messages: u64,
    /// Bytes of first-contact downlinks: self-contained full-state frames
    /// sent to parties that hold no broadcast reference yet (new joiners,
    /// round-1 cohorts). Metered separately from `down_bytes` so comm
    /// tables under delta/sparse codecs do not silently undercount joins.
    pub first_contact_down_bytes: u64,
    /// Count of first-contact downlinks.
    pub first_contact_messages: u64,
    /// Bytes of uploads a robust fold quarantined. Unlike aborted traffic
    /// these payloads *completed* — the bytes are already in `up_bytes` —
    /// so this is an overlay counter: wire spend whose update was rejected
    /// at aggregation time.
    pub quarantined_up_bytes: u64,
    /// Count of quarantined uploads.
    pub quarantined_updates: u64,
    /// Bytes of chunked join-sync downlinks: bounded-size slices of a
    /// first-contact full-state frame shipped by a
    /// [`JoinSync`](crate::JoinSync) state machine, re-shipped slices
    /// included. Kept off `first_contact_down_bytes` so the monolithic and
    /// chunked join paths stay separately auditable.
    pub join_chunk_down_bytes: u64,
    /// Count of join-sync chunks shipped.
    pub join_chunk_messages: u64,
    /// Overlay: join-path bytes (monolithic first-contact frames or
    /// individual chunks) whose delivery was lost to mid-round churn. The
    /// spend stays in its primary counter; this records what of it bought
    /// no state, mirroring the lost-upload refund rules on the uplink.
    pub join_lost_down_bytes: u64,
    /// Count of lost join frames/chunks.
    pub join_lost_messages: u64,
}

/// Thread-safe communication ledger.
///
/// Every simulated exchange is metered here, which is how the harness
/// reports ShiftEx's communication overhead next to the baselines'.
#[derive(Debug, Default)]
pub struct CommLedger {
    totals: Mutex<CommTotals>,
}

impl CommLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a party → aggregator payload.
    pub fn record_upload(&self, bytes: usize) {
        let mut t = self.totals.lock();
        t.up_bytes += bytes as u64;
        t.messages += 1;
    }

    /// Records an aggregator → party payload.
    pub fn record_download(&self, bytes: usize) {
        let mut t = self.totals.lock();
        t.down_bytes += bytes as u64;
        t.messages += 1;
    }

    /// Records an aggregator → party full-state payload for a recipient
    /// with no broadcast reference (first contact on a stream). Counted as
    /// a real message but kept on distinct byte/message counters — see
    /// [`CommTotals::first_contact_down_bytes`].
    pub fn record_first_contact_download(&self, bytes: usize) {
        let mut t = self.totals.lock();
        t.first_contact_down_bytes += bytes as u64;
        t.first_contact_messages += 1;
        t.messages += 1;
    }

    /// Records a party → aggregator upload that was aborted or discarded
    /// (mid-round dropout, or a straggler past the deadline under a drop
    /// policy). Kept separate from successful traffic so overhead reports
    /// stay honest under churn: the bytes were spent, the update wasn't.
    pub fn record_aborted_upload(&self, bytes: usize) {
        let mut t = self.totals.lock();
        t.aborted_up_bytes += bytes as u64;
        t.aborted_messages += 1;
    }

    /// Records a delivered party → aggregator upload that a robust fold
    /// then quarantined. The upload already hit `up_bytes` when it shipped;
    /// this overlays the rejection so robustness tables can report what the
    /// federation paid for updates it refused to aggregate.
    pub fn record_quarantined_upload(&self, bytes: usize) {
        let mut t = self.totals.lock();
        t.quarantined_up_bytes += bytes as u64;
        t.quarantined_updates += 1;
    }

    /// Records `chunks` join-sync chunk downlinks totalling `bytes` (each
    /// chunk is a real message). Chunked joins are metered here instead of
    /// [`CommLedger::record_first_contact_download`] so the two join paths
    /// never double-count.
    pub fn record_join_chunks(&self, bytes: usize, chunks: usize) {
        let mut t = self.totals.lock();
        t.join_chunk_down_bytes += bytes as u64;
        t.join_chunk_messages += chunks as u64;
        t.messages += chunks as u64;
    }

    /// Records `frames` join-path downlinks totalling `bytes` that were
    /// lost to mid-round churn before the recipient could use them. Overlay
    /// only: the spend already hit its primary counter when it shipped, so
    /// neither bytes nor messages are re-counted here.
    pub fn record_join_loss(&self, bytes: usize, frames: usize) {
        let mut t = self.totals.lock();
        t.join_lost_down_bytes += bytes as u64;
        t.join_lost_messages += frames as u64;
    }

    /// Snapshot of the counters.
    pub fn totals(&self) -> CommTotals {
        *self.totals.lock()
    }

    /// Resets all counters.
    pub fn reset(&self) {
        *self.totals.lock() = CommTotals::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_both_directions() {
        let ledger = CommLedger::new();
        ledger.record_upload(100);
        ledger.record_download(40);
        ledger.record_upload(60);
        let t = ledger.totals();
        assert_eq!(t.up_bytes, 160);
        assert_eq!(t.down_bytes, 40);
        assert_eq!(t.messages, 3);
    }

    #[test]
    fn aborted_uploads_are_metered_separately() {
        let ledger = CommLedger::new();
        ledger.record_upload(100);
        ledger.record_aborted_upload(70);
        ledger.record_aborted_upload(30);
        let t = ledger.totals();
        assert_eq!(t.up_bytes, 100);
        assert_eq!(t.messages, 1, "aborted uploads are not successful messages");
        assert_eq!(t.aborted_up_bytes, 100);
        assert_eq!(t.aborted_messages, 2);
    }

    #[test]
    fn first_contact_downloads_are_metered_separately() {
        let ledger = CommLedger::new();
        ledger.record_download(100);
        ledger.record_first_contact_download(400);
        let t = ledger.totals();
        assert_eq!(t.down_bytes, 100);
        assert_eq!(t.first_contact_down_bytes, 400);
        assert_eq!(t.first_contact_messages, 1);
        assert_eq!(t.messages, 2, "a first-contact frame is a real message");
    }

    #[test]
    fn quarantined_uploads_overlay_successful_traffic() {
        let ledger = CommLedger::new();
        ledger.record_upload(100);
        ledger.record_upload(100);
        ledger.record_quarantined_upload(100);
        let t = ledger.totals();
        assert_eq!(t.up_bytes, 200, "quarantine never un-counts the upload");
        assert_eq!(t.quarantined_up_bytes, 100);
        assert_eq!(t.quarantined_updates, 1);
        assert_eq!(t.messages, 2, "a quarantined upload is not a new message");
    }

    #[test]
    fn join_chunks_are_messages_but_losses_are_overlay() {
        let ledger = CommLedger::new();
        ledger.record_join_chunks(300, 3);
        ledger.record_join_loss(100, 1);
        let t = ledger.totals();
        assert_eq!(t.join_chunk_down_bytes, 300);
        assert_eq!(t.join_chunk_messages, 3);
        assert_eq!(t.messages, 3, "every shipped chunk is a real message");
        assert_eq!(t.join_lost_down_bytes, 100);
        assert_eq!(t.join_lost_messages, 1);
        assert_eq!(
            t.down_bytes, 0,
            "chunked joins never touch the regular downlink counter"
        );
        assert_eq!(t.first_contact_down_bytes, 0);
    }

    #[test]
    fn reset_clears() {
        let ledger = CommLedger::new();
        ledger.record_upload(10);
        ledger.reset();
        assert_eq!(ledger.totals(), CommTotals::default());
    }

    #[test]
    fn ledger_is_thread_safe() {
        let ledger = std::sync::Arc::new(CommLedger::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = ledger.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.record_upload(1);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(ledger.totals().up_bytes, 4000);
    }
}
