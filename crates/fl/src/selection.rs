//! Participant selection interface.
//!
//! Different strategies plug different policies in here: uniform sampling
//! (FedAvg/FedProx), label-cluster-balanced FLIPS, utility-guided OORT.

use rand::rngs::StdRng;

use crate::party::{PartyId, PartyInfo};

/// A participant-selection policy.
///
/// Implementations may keep state across rounds (exploration/exploitation
/// balances, cluster assignments); `select` is handed the published metadata
/// of the *eligible* parties for this round and must return a subset of
/// their ids.
pub trait ParticipantSelector {
    /// Round boundary: called exactly once per federation round, before any
    /// `select` call of that round. Multi-model algorithms call `select`
    /// once *per model stream*, so time-based bookkeeping (utility decay,
    /// cooldown expiry) belongs here, not in `select`. Default: ignored.
    fn begin_round(&mut self) {}

    /// Picks `m` parties (or all, when fewer are eligible). May be called
    /// several times per round (once per model stream needing a cohort).
    fn select(&mut self, pool: &[PartyInfo], m: usize, rng: &mut StdRng) -> Vec<PartyId>;

    /// Feedback hook: called after a round with each participant's training
    /// loss, for utility-driven selectors. Default: ignored.
    fn observe(&mut self, _party: PartyId, _train_loss: f32) {}

    /// Liveness feedback: `party` was selected but its update never made it
    /// into an aggregation (mid-round dropout, or a straggler past the
    /// deadline). Availability-aware selectors can down-weight flaky
    /// parties. Default: ignored.
    fn on_unavailable(&mut self, _party: PartyId) {}

    /// Rejection feedback: `party` delivered its update on time but a
    /// robust fold quarantined it. The party was *alive* and paid the
    /// bytes, so availability cooldowns must not fire here — this hook is
    /// the seam for a future reputation signal, kept deliberately separate
    /// from [`on_unavailable`](Self::on_unavailable). Default: ignored.
    fn on_rejected(&mut self, _party: PartyId) {}

    /// Human-readable policy name.
    fn name(&self) -> &str {
        "selector"
    }
}

/// Uniform random selection without replacement.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformSelector;

impl ParticipantSelector for UniformSelector {
    fn select(&mut self, pool: &[PartyInfo], m: usize, rng: &mut StdRng) -> Vec<PartyId> {
        let m = m.min(pool.len());
        shiftex_tensor::rngx::sample_without_replacement(rng, pool.len(), m)
            .into_iter()
            .map(|i| pool[i].id)
            .collect()
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pool(n: usize) -> Vec<PartyInfo> {
        (0..n)
            .map(|i| PartyInfo {
                id: PartyId(i),
                num_samples: 10,
                label_hist: vec![0.5, 0.5],
                last_loss: None,
            })
            .collect()
    }

    #[test]
    fn selects_requested_count_without_duplicates() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sel = UniformSelector;
        let picked = sel.select(&pool(20), 8, &mut rng);
        assert_eq!(picked.len(), 8);
        let mut ids: Vec<usize> = picked.iter().map(|p| p.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn caps_at_pool_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sel = UniformSelector;
        assert_eq!(sel.select(&pool(3), 10, &mut rng).len(), 3);
    }

    #[test]
    fn covers_all_parties_over_many_rounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sel = UniformSelector;
        let p = pool(10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            for id in sel.select(&p, 3, &mut rng) {
                seen.insert(id);
            }
        }
        assert_eq!(seen.len(), 10, "uniform selection should cover the pool");
    }
}
