//! A multi-round federated job over a fixed party population.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use shiftex_nn::ArchSpec;

use crate::comm::CommLedger;
use crate::party::{Party, PartyId};
use crate::population::PopulationStore;
use crate::round::{run_round, run_round_scenario, RoundConfig};
use crate::scenario::{ParticipationStats, ScenarioEngine};
use crate::selection::ParticipantSelector;

/// Report of a [`FederatedJob::run_rounds`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Final aggregated parameters.
    pub params: Vec<f32>,
    /// Population-wide test accuracy after each round.
    pub accuracy_per_round: Vec<f32>,
    /// Cohort mean training loss per round.
    pub loss_per_round: Vec<f32>,
}

/// Per-round participation record of a scenario job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundParticipation {
    /// 1-based round index.
    pub round: usize,
    /// Enrolled members this round (after join/leave churn).
    pub live: usize,
    /// This round's counter deltas (selected/delivered/dropped/…).
    pub delta: ParticipationStats,
    /// Population accuracy on the live members after the round.
    pub accuracy: f32,
    /// Encoded upstream bytes this round, including aborted uploads (the
    /// traffic was paid either way).
    pub up_bytes: u64,
    /// Encoded downstream (broadcast) bytes this round, to recipients that
    /// already held the stream's broadcast reference.
    pub down_bytes: u64,
    /// Encoded bytes of first-contact full-state downlinks this round (new
    /// joiners, round-1 cohorts) — distinct so join costs are visible.
    pub first_contact_down_bytes: u64,
    /// Updates a robust fold quarantined this round (legacy mean-only jobs
    /// always report 0).
    pub quarantined: u64,
    /// Largest fold distance score this round (0 under the mean fold).
    pub fold_score: f32,
}

/// Report of a [`FederatedJob::run_rounds_scenario`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioJobReport {
    /// Final aggregated parameters.
    pub params: Vec<f32>,
    /// Live-member test accuracy after each round.
    pub accuracy_per_round: Vec<f32>,
    /// Weighted mean training loss of aggregated updates per round
    /// (`None` when a round aggregated nothing).
    pub loss_per_round: Vec<Option<f32>>,
    /// Per-round participation records.
    pub participation: Vec<RoundParticipation>,
    /// Cumulative counters over the whole job.
    pub totals: ParticipationStats,
}

/// A federated training job: architecture + party population + round config.
///
/// Strategies (ShiftEx, baselines) drive jobs against different cohorts —
/// e.g. ShiftEx trains each expert with a job over that expert's cohort.
#[derive(Debug)]
pub struct FederatedJob {
    spec: ArchSpec,
    population: PopulationStore,
    cfg: RoundConfig,
    ledger: CommLedger,
}

impl FederatedJob {
    /// Creates a job over a resident party population.
    pub fn new(spec: ArchSpec, parties: Vec<Party>, cfg: RoundConfig) -> Self {
        Self::from_population(spec, PopulationStore::from_parties(parties), cfg)
    }

    /// Creates a job over an existing population store — resident or lazy.
    pub fn from_population(spec: ArchSpec, population: PopulationStore, cfg: RoundConfig) -> Self {
        Self {
            spec,
            population,
            cfg,
            ledger: CommLedger::new(),
        }
    }

    /// The architecture trained by this job.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Enrolled party ids, in canonical population order.
    pub fn party_ids(&self) -> Vec<PartyId> {
        self.population.party_ids()
    }

    /// The population store backing this job.
    pub fn population(&self) -> &PopulationStore {
        &self.population
    }

    /// Mutates one party in place (data injection, targeted poisoning).
    /// Returns `None` if `id` is not enrolled. Window advancement goes
    /// through [`PopulationStore`]-level APIs instead.
    pub fn with_party_mut<R>(&mut self, id: PartyId, f: impl FnOnce(&mut Party) -> R) -> Option<R> {
        self.population.with_party_mut(id, f)
    }

    /// Round configuration.
    pub fn config(&self) -> &RoundConfig {
        &self.cfg
    }

    /// Communication ledger for this job.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Runs `rounds` federated rounds from `init_params` with `selector`
    /// picking each cohort from the full population.
    ///
    /// # Panics
    ///
    /// Panics if the job has no parties.
    pub fn run_rounds(
        &mut self,
        init_params: Vec<f32>,
        rounds: usize,
        selector: &mut dyn ParticipantSelector,
        rng: &mut StdRng,
    ) -> JobReport {
        self.run_rounds_on(init_params, rounds, selector, None, rng)
    }

    /// Like [`FederatedJob::run_rounds`] but restricted to an eligible subset
    /// of parties (expert cohorts).
    ///
    /// # Panics
    ///
    /// Panics if the eligible set is empty.
    pub fn run_rounds_on(
        &mut self,
        init_params: Vec<f32>,
        rounds: usize,
        selector: &mut dyn ParticipantSelector,
        eligible: Option<&[PartyId]>,
        rng: &mut StdRng,
    ) -> JobReport {
        let eligible: Vec<PartyId> = match eligible {
            Some(ids) => {
                let wanted: std::collections::BTreeSet<PartyId> = ids.iter().copied().collect();
                self.population
                    .party_ids()
                    .into_iter()
                    .filter(|id| wanted.contains(id))
                    .collect()
            }
            None => self.population.party_ids(),
        };
        assert!(!eligible.is_empty(), "no eligible parties");

        let mut params = init_params;
        let mut accuracy_per_round = Vec::with_capacity(rounds);
        let mut loss_per_round = Vec::with_capacity(rounds);
        let view = self.population.view(eligible.clone());
        for _ in 0..rounds {
            selector.begin_round();
            let infos = view.infos();
            let chosen = selector.select(&infos, self.cfg.participants_per_round, rng);
            let chosen_set: std::collections::BTreeSet<PartyId> = chosen.into_iter().collect();
            let cohort_ids: Vec<PartyId> = eligible
                .iter()
                .copied()
                .filter(|id| chosen_set.contains(id))
                .collect();
            // Materialize the cohort for the round, everyone if selection
            // came back empty; it is evicted again when `cohort` drops.
            let cohort: Vec<Party> = if cohort_ids.is_empty() {
                view.parties(&eligible)
            } else {
                view.parties(&cohort_ids)
            };
            let cohort_refs: Vec<&Party> = cohort.iter().collect();
            let outcome = run_round(
                &self.spec,
                &params,
                &cohort_refs,
                &self.cfg,
                Some(&self.ledger),
                rng,
            );
            drop(cohort_refs);
            drop(cohort);
            for u in &outcome.updates {
                selector.observe(u.party, u.train_loss);
            }
            params = outcome.params;
            loss_per_round.push(outcome.mean_loss);
            accuracy_per_round.push(crate::evaluate_on_view(&self.spec, &params, &view));
        }
        JobReport {
            params,
            accuracy_per_round,
            loss_per_round,
        }
    }

    /// Runs `rounds` rounds under a scenario engine: join/leave churn gates
    /// the eligible pool, selected parties can drop mid-round or straggle
    /// past the deadline, and aggregation follows the engine's round mode
    /// (synchronous or staleness-aware buffered).
    ///
    /// Rounds where churn empties the pool (or no update survives) keep the
    /// current parameters and are still recorded, so the report always has
    /// `rounds` entries.
    pub fn run_rounds_scenario(
        &mut self,
        init_params: Vec<f32>,
        rounds: usize,
        selector: &mut dyn ParticipantSelector,
        engine: &mut ScenarioEngine,
        rng: &mut StdRng,
    ) -> ScenarioJobReport {
        let all_ids = self.population.party_ids();
        let mut params = init_params;
        let mut accuracy_per_round = Vec::with_capacity(rounds);
        let mut loss_per_round = Vec::with_capacity(rounds);
        let mut participation = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let round = engine.begin_round();
            selector.begin_round();
            let before = engine.stats();
            let comm_before = self.ledger.totals();
            let live = engine.live_members(&all_ids);
            let view = self.population.view(live);
            // Selection only happens over a non-empty live pool, but the
            // round runs regardless: even with nobody live, previously
            // deferred updates can mature out of the staleness buffer.
            let cohort: Vec<Party> = if view.is_empty() {
                Vec::new()
            } else {
                let infos = view.infos();
                let chosen = selector.select(&infos, self.cfg.participants_per_round, rng);
                let chosen_set: std::collections::BTreeSet<PartyId> = chosen.into_iter().collect();
                let cohort_ids: Vec<PartyId> = view
                    .ids()
                    .iter()
                    .copied()
                    .filter(|id| chosen_set.contains(id))
                    .collect();
                view.parties(&cohort_ids)
            };
            let cohort_refs: Vec<&Party> = cohort.iter().collect();
            let outcome = run_round_scenario(
                &self.spec,
                &params,
                &cohort_refs,
                &self.cfg,
                engine,
                0,
                Some(&self.ledger),
                rng,
            );
            // Evict the cohort: only O(cohort) parties were ever resident.
            drop(cohort_refs);
            drop(cohort);
            for &(party, loss, _) in &outcome.folded {
                selector.observe(party, loss);
            }
            for &party in &outcome.lost {
                selector.on_unavailable(party);
            }
            let mean_loss = outcome.mean_loss;
            params = outcome.params;
            let accuracy = crate::evaluate_on_view(&self.spec, &params, &view);
            accuracy_per_round.push(accuracy);
            loss_per_round.push(mean_loss);
            let comm = self.ledger.totals();
            participation.push(RoundParticipation {
                round,
                live: view.len(),
                delta: engine.stats().minus(&before),
                accuracy,
                up_bytes: (comm.up_bytes + comm.aborted_up_bytes)
                    - (comm_before.up_bytes + comm_before.aborted_up_bytes),
                down_bytes: comm.down_bytes - comm_before.down_bytes,
                first_contact_down_bytes: comm.first_contact_down_bytes
                    - comm_before.first_contact_down_bytes,
                quarantined: comm.quarantined_updates - comm_before.quarantined_updates,
                fold_score: 0.0,
            });
        }
        ScenarioJobReport {
            params,
            accuracy_per_round,
            loss_per_round,
            participation,
            totals: engine.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::UniformSelector;
    use rand::SeedableRng;
    use shiftex_data::{ImageShape, PrototypeGenerator};
    use shiftex_nn::Sequential;

    fn job(n: usize, seed: u64) -> (FederatedJob, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        let parties: Vec<Party> = (0..n)
            .map(|i| {
                Party::new(
                    PartyId(i),
                    gen.generate_uniform(24, &mut rng),
                    gen.generate_uniform(12, &mut rng),
                )
            })
            .collect();
        let spec = ArchSpec::mlp("t", 16, &[10], 3);
        let init = Sequential::build(&spec, &mut rng).params_flat();
        (
            FederatedJob::new(spec, parties, RoundConfig::default()),
            init,
        )
    }

    #[test]
    fn job_improves_over_rounds() {
        let (mut job, init) = job(6, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let report = job.run_rounds(init, 10, &mut UniformSelector, &mut rng);
        assert_eq!(report.accuracy_per_round.len(), 10);
        let first = report.accuracy_per_round[0];
        let last = *report.accuracy_per_round.last().unwrap();
        assert!(
            last >= first,
            "accuracy should not regress: {first} -> {last}"
        );
        // Hard synthetic task: clearly above the 33 % chance level suffices.
        assert!(last > 0.38, "final accuracy {last}");
    }

    #[test]
    fn restricted_cohort_only_uses_eligible() {
        let (mut job, init) = job(6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let eligible = [PartyId(0), PartyId(1)];
        let report = job.run_rounds_on(init, 2, &mut UniformSelector, Some(&eligible), &mut rng);
        assert_eq!(report.accuracy_per_round.len(), 2);
    }

    #[test]
    fn ledger_accumulates_across_rounds() {
        let (mut job, init) = job(4, 4);
        let mut rng = StdRng::seed_from_u64(5);
        job.run_rounds(init, 3, &mut UniformSelector, &mut rng);
        assert!(job.ledger().totals().messages >= 3 * 2 * 4 / 2);
    }

    #[test]
    fn scenario_job_survives_churn_and_reports_every_round() {
        use crate::scenario::{ChurnSpec, ScenarioEngine, ScenarioSpec};
        let (mut job, init) = job(8, 8);
        let ids: Vec<PartyId> = job.party_ids();
        let spec = ScenarioSpec::sync(3).with_churn(ChurnSpec {
            join_fraction: 0.25,
            join_ramp_rounds: 3,
            leave_fraction: 0.25,
            leave_after: 2,
            horizon: 6,
            dropout: 0.3,
        });
        let mut engine = ScenarioEngine::new(spec, &ids);
        let mut rng = StdRng::seed_from_u64(9);
        let report = job.run_rounds_scenario(init, 6, &mut UniformSelector, &mut engine, &mut rng);
        assert_eq!(report.accuracy_per_round.len(), 6);
        assert_eq!(report.participation.len(), 6);
        let totals = report.totals;
        assert_eq!(
            totals.selected,
            totals.delivered + totals.dropped_churn + totals.dropped_late + totals.deferred,
            "every selected update has exactly one first-round fate: {totals:?}"
        );
        assert!(
            totals.dropped_churn > 0,
            "30% dropout over 6 rounds: {totals:?}"
        );
        // Aborted uploads are on the ledger.
        assert_eq!(
            job.ledger().totals().aborted_messages,
            totals.dropped_churn + totals.dropped_late
        );
    }

    #[test]
    fn deferred_updates_mature_even_when_pool_empties() {
        use crate::scenario::{
            ChurnSchedule, DelayDist, LatePolicy, ScenarioEngine, ScenarioSpec, StragglerSpec,
        };
        let (mut job, init) = job(3, 14);
        let ids: Vec<PartyId> = job.party_ids();
        // Every update is 1 round late; every party leaves after round 1.
        let spec = ScenarioSpec::sync(2).with_stragglers(StragglerSpec {
            dist: DelayDist::Constant(1.5),
            slow_fraction: 0.0,
            slow_factor: 1.0,
            deadline: 1.0,
            late: LatePolicy::Defer,
        });
        let mut engine = ScenarioEngine::new(spec, &ids);
        let mut churn = ChurnSchedule::always_on(0.0, 0);
        for &id in &ids {
            churn = churn.with_leave(id, 2);
        }
        *engine.churn_mut() = churn;
        let mut rng = StdRng::seed_from_u64(15);
        let report =
            job.run_rounds_scenario(init.clone(), 2, &mut UniformSelector, &mut engine, &mut rng);
        // Round 1 trains and defers; round 2 has nobody live, but the
        // deferred updates still mature and aggregate.
        assert_eq!(report.participation[1].live, 0);
        assert_eq!(report.participation[1].delta.delivered, 3);
        assert_eq!(report.totals.deferred, 3);
        assert_ne!(report.params, init, "matured updates must be folded in");
    }

    #[test]
    fn scenario_job_with_everyone_left_keeps_initial_params() {
        use crate::scenario::{ChurnSchedule, ScenarioEngine, ScenarioSpec};
        let (mut job, init) = job(3, 10);
        let ids: Vec<PartyId> = job.party_ids();
        let mut engine = ScenarioEngine::new(ScenarioSpec::sync(0), &ids);
        // Everyone leaves before round 1, so every round is empty.
        let mut churn = ChurnSchedule::always_on(0.0, 0);
        for &id in &ids {
            churn = churn.with_leave(id, 1);
        }
        *engine.churn_mut() = churn;
        let mut rng = StdRng::seed_from_u64(11);
        let report =
            job.run_rounds_scenario(init.clone(), 3, &mut UniformSelector, &mut engine, &mut rng);
        assert_eq!(report.params, init);
        assert_eq!(report.totals.selected, 0);
        assert!(report.participation.iter().all(|r| r.live == 0));
    }

    #[test]
    #[should_panic(expected = "no eligible parties")]
    fn rejects_empty_eligible_set() {
        let (mut job, init) = job(2, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = job.run_rounds_on(init, 1, &mut UniformSelector, Some(&[]), &mut rng);
    }
}
