//! A multi-round federated job over a fixed party population.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use shiftex_nn::ArchSpec;

use crate::comm::CommLedger;
use crate::party::{Party, PartyId};
use crate::round::{run_round, RoundConfig};
use crate::selection::ParticipantSelector;

/// Report of a [`FederatedJob::run_rounds`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Final aggregated parameters.
    pub params: Vec<f32>,
    /// Population-wide test accuracy after each round.
    pub accuracy_per_round: Vec<f32>,
    /// Cohort mean training loss per round.
    pub loss_per_round: Vec<f32>,
}

/// A federated training job: architecture + party population + round config.
///
/// Strategies (ShiftEx, baselines) drive jobs against different cohorts —
/// e.g. ShiftEx trains each expert with a job over that expert's cohort.
#[derive(Debug)]
pub struct FederatedJob {
    spec: ArchSpec,
    parties: Vec<Party>,
    cfg: RoundConfig,
    ledger: CommLedger,
}

impl FederatedJob {
    /// Creates a job.
    pub fn new(spec: ArchSpec, parties: Vec<Party>, cfg: RoundConfig) -> Self {
        Self {
            spec,
            parties,
            cfg,
            ledger: CommLedger::new(),
        }
    }

    /// The architecture trained by this job.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// All parties.
    pub fn parties(&self) -> &[Party] {
        &self.parties
    }

    /// Mutable access to parties (window advancement).
    pub fn parties_mut(&mut self) -> &mut Vec<Party> {
        &mut self.parties
    }

    /// Round configuration.
    pub fn config(&self) -> &RoundConfig {
        &self.cfg
    }

    /// Communication ledger for this job.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Runs `rounds` federated rounds from `init_params` with `selector`
    /// picking each cohort from the full population.
    ///
    /// # Panics
    ///
    /// Panics if the job has no parties.
    pub fn run_rounds(
        &mut self,
        init_params: Vec<f32>,
        rounds: usize,
        selector: &mut dyn ParticipantSelector,
        rng: &mut StdRng,
    ) -> JobReport {
        self.run_rounds_on(init_params, rounds, selector, None, rng)
    }

    /// Like [`FederatedJob::run_rounds`] but restricted to an eligible subset
    /// of parties (expert cohorts).
    ///
    /// # Panics
    ///
    /// Panics if the eligible set is empty.
    pub fn run_rounds_on(
        &mut self,
        init_params: Vec<f32>,
        rounds: usize,
        selector: &mut dyn ParticipantSelector,
        eligible: Option<&[PartyId]>,
        rng: &mut StdRng,
    ) -> JobReport {
        let eligible: Vec<usize> = match eligible {
            Some(ids) => {
                let wanted: std::collections::HashSet<PartyId> = ids.iter().copied().collect();
                (0..self.parties.len())
                    .filter(|&i| wanted.contains(&self.parties[i].id()))
                    .collect()
            }
            None => (0..self.parties.len()).collect(),
        };
        assert!(!eligible.is_empty(), "no eligible parties");

        let mut params = init_params;
        let mut accuracy_per_round = Vec::with_capacity(rounds);
        let mut loss_per_round = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let infos: Vec<_> = eligible.iter().map(|&i| self.parties[i].info()).collect();
            let chosen = selector.select(&infos, self.cfg.participants_per_round, rng);
            let chosen_set: std::collections::HashSet<PartyId> = chosen.into_iter().collect();
            let cohort: Vec<&Party> = eligible
                .iter()
                .map(|&i| &self.parties[i])
                .filter(|p| chosen_set.contains(&p.id()))
                .collect();
            let cohort = if cohort.is_empty() {
                eligible.iter().map(|&i| &self.parties[i]).collect()
            } else {
                cohort
            };
            let outcome = run_round(
                &self.spec,
                &params,
                &cohort,
                &self.cfg,
                Some(&self.ledger),
                rng,
            );
            for u in &outcome.updates {
                selector.observe(u.party, u.train_loss);
            }
            params = outcome.params;
            loss_per_round.push(outcome.mean_loss);
            let eval_parties: Vec<Party> =
                eligible.iter().map(|&i| self.parties[i].clone()).collect();
            accuracy_per_round.push(crate::evaluate_on_parties(
                &self.spec,
                &params,
                &eval_parties,
            ));
        }
        JobReport {
            params,
            accuracy_per_round,
            loss_per_round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::UniformSelector;
    use rand::SeedableRng;
    use shiftex_data::{ImageShape, PrototypeGenerator};
    use shiftex_nn::Sequential;

    fn job(n: usize, seed: u64) -> (FederatedJob, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        let parties: Vec<Party> = (0..n)
            .map(|i| {
                Party::new(
                    PartyId(i),
                    gen.generate_uniform(24, &mut rng),
                    gen.generate_uniform(12, &mut rng),
                )
            })
            .collect();
        let spec = ArchSpec::mlp("t", 16, &[10], 3);
        let init = Sequential::build(&spec, &mut rng).params_flat();
        (
            FederatedJob::new(spec, parties, RoundConfig::default()),
            init,
        )
    }

    #[test]
    fn job_improves_over_rounds() {
        let (mut job, init) = job(6, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let report = job.run_rounds(init, 10, &mut UniformSelector, &mut rng);
        assert_eq!(report.accuracy_per_round.len(), 10);
        let first = report.accuracy_per_round[0];
        let last = *report.accuracy_per_round.last().unwrap();
        assert!(
            last >= first,
            "accuracy should not regress: {first} -> {last}"
        );
        // Hard synthetic task: clearly above the 33 % chance level suffices.
        assert!(last > 0.38, "final accuracy {last}");
    }

    #[test]
    fn restricted_cohort_only_uses_eligible() {
        let (mut job, init) = job(6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let eligible = [PartyId(0), PartyId(1)];
        let report = job.run_rounds_on(init, 2, &mut UniformSelector, Some(&eligible), &mut rng);
        assert_eq!(report.accuracy_per_round.len(), 2);
    }

    #[test]
    fn ledger_accumulates_across_rounds() {
        let (mut job, init) = job(4, 4);
        let mut rng = StdRng::seed_from_u64(5);
        job.run_rounds(init, 3, &mut UniformSelector, &mut rng);
        assert!(job.ledger().totals().messages >= 3 * 2 * 4 / 2);
    }

    #[test]
    #[should_panic(expected = "no eligible parties")]
    fn rejects_empty_eligible_set() {
        let (mut job, init) = job(2, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = job.run_rounds_on(init, 1, &mut UniformSelector, Some(&[]), &mut rng);
    }
}
