//! Model updates: the unit of party → aggregator communication.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::party::PartyId;

/// One party's contribution to a federated round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Originating party.
    pub party: PartyId,
    /// Updated flattened model parameters.
    pub params: Vec<f32>,
    /// Number of local training samples (FedAvg weight).
    pub num_samples: usize,
    /// Final local training loss (selector utility signal).
    pub train_loss: f32,
}

impl ModelUpdate {
    /// Serialises the update into a wire payload.
    ///
    /// The simulator meters these payloads through
    /// [`CommLedger`](crate::CommLedger), so the byte size is the honest
    /// cost of the exchange.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("update serialisation cannot fail"))
    }

    /// Deserialises a wire payload.
    ///
    /// # Errors
    ///
    /// Returns an error when the payload is not a valid update.
    pub fn from_bytes(bytes: &Bytes) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }

    /// Nominal payload size in bytes (4 bytes per parameter + metadata),
    /// used for communication accounting without paying serialisation cost
    /// on the hot path.
    pub fn nominal_size_bytes(&self) -> usize {
        self.params.len() * 4 + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update() -> ModelUpdate {
        ModelUpdate {
            party: PartyId(3),
            params: vec![1.0, -2.0, 0.5],
            num_samples: 42,
            train_loss: 0.7,
        }
    }

    #[test]
    fn roundtrips_through_bytes() {
        let u = update();
        let b = u.to_bytes();
        let back = ModelUpdate::from_bytes(&b).expect("valid payload");
        assert_eq!(back, u);
    }

    #[test]
    fn nominal_size_scales_with_params() {
        let u = update();
        assert_eq!(u.nominal_size_bytes(), 3 * 4 + 32);
    }

    #[test]
    fn rejects_garbage() {
        let b = Bytes::from_static(b"not json");
        assert!(ModelUpdate::from_bytes(&b).is_err());
    }
}
