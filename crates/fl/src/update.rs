//! Model updates: the unit of party → aggregator communication.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, CodecSpec};
use crate::party::PartyId;

/// One party's contribution to a federated round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Originating party.
    pub party: PartyId,
    /// Updated flattened model parameters.
    pub params: Vec<f32>,
    /// Number of local training samples (FedAvg weight).
    pub num_samples: usize,
    /// Final local training loss (selector utility signal).
    pub train_loss: f32,
}

impl ModelUpdate {
    /// Encodes the update into its wire frame under `codec`.
    ///
    /// `reference` is the last broadcast global — the vector both endpoints
    /// hold — used by delta-coded specs (others ignore it). The simulator
    /// meters these payloads through [`CommLedger`](crate::CommLedger), so
    /// the byte size is the honest cost of the exchange.
    pub fn encode(&self, codec: &CodecSpec, reference: &[f32]) -> Bytes {
        Bytes::from(codec.encode_update(self, reference))
    }

    /// Decodes a wire frame (self-describing: the codec is read from the
    /// frame header). `reference` must match the one used to encode.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the payload is truncated, carries an
    /// unknown codec tag, or holds inconsistent lengths.
    pub fn decode(bytes: &[u8], reference: &[f32]) -> Result<Self, CodecError> {
        CodecSpec::decode_update(bytes, reference)
    }

    /// Exact wire size of this update under `codec` — by construction equal
    /// to `self.encode(codec, _).len()` without paying the encode. This is
    /// what the ledger meters, replacing the seed's `4 × params + 32` guess.
    pub fn encoded_len(&self, codec: &CodecSpec) -> usize {
        codec.update_len(self.params.len())
    }

    /// Ships the update across the wire and back: encode against
    /// `reference`, then decode what the aggregator would see. Lossless
    /// codecs return the update unchanged without paying the roundtrip.
    pub fn transport(self, codec: &CodecSpec, reference: &[f32]) -> Self {
        if codec.is_lossless() {
            return self;
        }
        let wire = self.encode(codec, reference);
        // lint:allow(panic): decoding a frame this codec just encoded cannot fail
        Self::decode(&wire, reference).expect("self-encoded update decodes")
    }

    /// Like [`ModelUpdate::transport`] but with party-side error feedback:
    /// `feedback` accumulates the coordinates the lossy encode dropped, and
    /// is added to the raw parameters before encoding (EF-SGD). The caller
    /// owns one accumulator per `(stream, party)` — the
    /// [`ScenarioEngine`](crate::ScenarioEngine) holds them for scenario
    /// runs. Wire sizes are value-independent, so metering is unchanged.
    pub fn transport_with_feedback(
        mut self,
        codec: &CodecSpec,
        reference: &[f32],
        feedback: &mut Vec<f32>,
    ) -> Self {
        if codec.is_lossless() {
            return self;
        }
        feedback.resize(self.params.len(), 0.0);
        for (p, e) in self.params.iter_mut().zip(feedback.iter()) {
            *p += *e;
        }
        let compensated = self.params.clone();
        let out = self.transport(codec, reference);
        for ((e, &c), &d) in feedback
            .iter_mut()
            .zip(compensated.iter())
            .zip(out.params.iter())
        {
            *e = c - d;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update() -> ModelUpdate {
        ModelUpdate {
            party: PartyId(3),
            params: vec![1.0, -2.0, 0.5],
            num_samples: 42,
            train_loss: 0.7,
        }
    }

    #[test]
    fn roundtrips_through_bytes() {
        let u = update();
        for codec in [CodecSpec::dense(), CodecSpec::dense().with_delta()] {
            let b = u.encode(&codec, &[0.5, 0.5, 0.5]);
            let back = ModelUpdate::decode(&b, &[0.5, 0.5, 0.5]).expect("valid payload");
            assert_eq!(back, u, "{codec}");
        }
    }

    #[test]
    fn encoded_len_is_exact_for_every_codec() {
        let u = update();
        for codec in [
            CodecSpec::dense(),
            CodecSpec::quant8(2),
            CodecSpec::topk(0.4).with_delta(),
        ] {
            assert_eq!(
                u.encoded_len(&codec),
                u.encode(&codec, &[]).len(),
                "{codec}"
            );
        }
    }

    #[test]
    fn transport_is_identity_for_lossless_codecs() {
        let u = update();
        assert_eq!(u.clone().transport(&CodecSpec::dense(), &[]), u);
        let roundtripped = u
            .clone()
            .transport(&CodecSpec::quant8(2), &[])
            .params
            .clone();
        for (&a, &b) in u.params.iter().zip(roundtripped.iter()) {
            assert!((a - b).abs() <= (3.0f32 / 255.0) * 0.5 + 1e-5);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(ModelUpdate::decode(b"not a frame", &[]).is_err());
    }
}
