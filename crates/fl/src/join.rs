//! Chunked, resumable first-contact synchronisation.
//!
//! Since the codec refactor a party seeing a stream for the first time has
//! received one monolithic self-contained full-state frame — under churn
//! that frame dominates total downlink bytes (the README's codec sweep
//! splits it out). [`JoinSync`] replaces the monolith with a per
//! `(stream, party)` state machine: the first-contact frame is encoded
//! once under a join codec (typically int8-quantised), snapshotted, and
//! shipped as bounded-size chunks. Delivery is tracked per chunk, so a
//! sync interrupted by mid-round churn *resumes* — only the chunks whose
//! shipment was lost re-ship, and the loss is overlaid on the
//! [`CommLedger`](crate::CommLedger) (`join_lost_*`) in the same spirit as
//! the uplink's lost-upload refund rules.
//!
//! Because every chunk is a slice of the one snapshotted frame, the
//! reassembled bytes are identical to the monolithic frame by
//! construction, independent of loss and re-ship order: lossless join
//! codecs reassemble the dense state bit-identically, and quantised ones
//! stay within their per-coordinate quantisation envelope (both
//! proptest-pinned).

use serde::{Deserialize, Serialize};

use crate::codec::CodecSpec;

/// Per-chunk wire overhead: `[seq: u32][total: u32]` framing prepended to
/// each chunk's payload slice so an out-of-order receiver can place it.
pub const JOIN_CHUNK_HEADER_LEN: usize = 8;

/// Configuration of the chunked join path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinConfig {
    /// Codec for the full-state first-contact frame. Reduced through
    /// [`CodecSpec::first_contact_spec`] before encoding, so delta / error
    /// feedback are stripped and sparse kinds fall back to dense — the
    /// frame must be self-contained.
    pub codec: CodecSpec,
    /// Maximum payload bytes per chunk (header excluded). Must be ≥ 1.
    pub chunk_bytes: usize,
}

impl JoinConfig {
    /// Int8-quantised join frames (block = 256) in `chunk_bytes`-sized
    /// chunks — the default configuration of the adaptive comm path.
    pub fn quantized(chunk_bytes: usize) -> Self {
        Self {
            codec: CodecSpec::quant8(256),
            chunk_bytes,
        }
    }

    /// Dense (lossless) join frames in `chunk_bytes`-sized chunks.
    pub fn dense(chunk_bytes: usize) -> Self {
        Self {
            codec: CodecSpec::dense(),
            chunk_bytes,
        }
    }

    /// Replaces the join-frame codec.
    pub fn with_codec(mut self, codec: CodecSpec) -> Self {
        self.codec = codec;
        self
    }
}

/// Delivery state of one chunk of a join frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    /// Never shipped, or shipped and lost — will ship on the next contact.
    Pending,
    /// Shipped this round; acked or lost when the round's churn resolves.
    InFlight,
    /// Received by the party.
    Delivered,
}

/// One `(stream, party)` first-contact sync in progress.
///
/// Lifecycle: [`JoinSync::begin`] snapshots the encoded frame →
/// [`ship_missing`](JoinSync::ship_missing) puts every undelivered chunk
/// in flight (metered by the caller) → the round's churn verdict resolves
/// the flight via [`ack_in_flight`](JoinSync::ack_in_flight) (party
/// survived: chunks land in the receive buffer) or
/// [`lose_in_flight`](JoinSync::lose_in_flight) (party churned: chunks
/// revert to pending, wire bytes reported lost). When
/// [`is_complete`](JoinSync::is_complete) the receive buffer holds the
/// frame bit-identically and [`decoded`](JoinSync::decoded) yields the
/// state the party trains from.
#[derive(Debug, Clone)]
pub struct JoinSync {
    /// Encoded self-contained frame, snapshotted at sync start. Chunks are
    /// slices of this buffer, so a multi-round sync reassembles the state
    /// of the round it began — the party catches up via regular deltas.
    frame: Vec<u8>,
    /// Receiver-side reassembly buffer, filled as chunks are acked.
    received: Vec<u8>,
    state: Vec<ChunkState>,
    chunk_bytes: usize,
}

impl JoinSync {
    /// Starts a sync for `global` under `config`, snapshotting the encoded
    /// first-contact frame.
    pub fn begin(global: &[f32], config: &JoinConfig) -> Self {
        let spec = config.codec.first_contact_spec();
        let frame = spec.encode_global(global, &[]);
        let chunk_bytes = config.chunk_bytes.max(1);
        let chunks = frame.len().div_ceil(chunk_bytes).max(1);
        Self {
            received: vec![0; frame.len()],
            state: vec![ChunkState::Pending; chunks],
            frame,
            chunk_bytes,
        }
    }

    /// Total number of chunks in the frame.
    pub fn num_chunks(&self) -> usize {
        self.state.len()
    }

    /// Chunks already delivered.
    pub fn delivered_chunks(&self) -> usize {
        self.state
            .iter()
            .filter(|s| **s == ChunkState::Delivered)
            .count()
    }

    /// Has every chunk been delivered?
    pub fn is_complete(&self) -> bool {
        self.state.iter().all(|s| *s == ChunkState::Delivered)
    }

    /// Byte range of chunk `i` within the frame.
    fn chunk_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = i * self.chunk_bytes;
        start..self.frame.len().min(start + self.chunk_bytes)
    }

    /// Exact wire size of chunk `i` (header + payload slice).
    pub fn wire_len(&self, i: usize) -> usize {
        JOIN_CHUNK_HEADER_LEN + self.chunk_range(i).len()
    }

    /// Indices of the chunks currently in flight — shipped by
    /// [`ship_missing`](Self::ship_missing) but not yet resolved by the
    /// round's churn verdict. A networked coordinator writes exactly these
    /// chunks to the joiner's socket after the engine's broadcast metered
    /// them.
    pub fn in_flight_chunks(&self) -> Vec<usize> {
        (0..self.state.len())
            .filter(|&i| self.state[i] == ChunkState::InFlight)
            .collect()
    }

    /// Payload slice of chunk `i` (the [`JOIN_CHUNK_HEADER_LEN`]-byte
    /// header excluded). `i` must be below [`num_chunks`](Self::num_chunks).
    pub fn chunk_payload(&self, i: usize) -> &[u8] {
        &self.frame[self.chunk_range(i)]
    }

    /// Puts every not-yet-delivered chunk in flight, returning the
    /// `(bytes, chunks)` shipped this call — exactly what the caller must
    /// meter. Chunks already in flight are not double-shipped.
    pub fn ship_missing(&mut self) -> (usize, usize) {
        let mut bytes = 0usize;
        let mut chunks = 0usize;
        for i in 0..self.state.len() {
            if self.state[i] == ChunkState::Pending {
                self.state[i] = ChunkState::InFlight;
                bytes += self.wire_len(i);
                chunks += 1;
            }
        }
        (bytes, chunks)
    }

    /// The party survived the round: in-flight chunks land, their payload
    /// slices are written into the receive buffer.
    pub fn ack_in_flight(&mut self) {
        for i in 0..self.state.len() {
            if self.state[i] == ChunkState::InFlight {
                self.state[i] = ChunkState::Delivered;
                let range = self.chunk_range(i);
                self.received[range.clone()].copy_from_slice(&self.frame[range]);
            }
        }
    }

    /// The party churned out mid-round: in-flight chunks are lost and
    /// revert to pending (they re-ship at the next contact). Returns the
    /// `(bytes, chunks)` lost, for the ledger's `join_lost_*` overlay.
    pub fn lose_in_flight(&mut self) -> (usize, usize) {
        let mut bytes = 0usize;
        let mut chunks = 0usize;
        for i in 0..self.state.len() {
            if self.state[i] == ChunkState::InFlight {
                self.state[i] = ChunkState::Pending;
                bytes += self.wire_len(i);
                chunks += 1;
            }
        }
        (bytes, chunks)
    }

    /// The snapshotted encoded frame (what a monolithic first contact
    /// would have shipped in one message).
    pub fn frame(&self) -> &[u8] {
        &self.frame
    }

    /// The receiver's reassembled frame bytes (only meaningful for the
    /// delivered chunk ranges until [`JoinSync::is_complete`]).
    pub fn reassembled(&self) -> &[u8] {
        &self.received
    }

    /// Decodes the frame the party is being synced onto. The engine calls
    /// this optimistically at ship time (the party trains from it; if the
    /// party churns the training was wasted anyway), so it decodes the
    /// snapshot rather than the receive buffer. `None` only if the
    /// snapshot itself is undecodable, which a self-encoded frame never is.
    pub fn decoded(&self) -> Option<Vec<f32>> {
        CodecSpec::decode_global(&self.frame, &[]).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn global(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn single_round_sync_ships_every_chunk_once() {
        let g = global(100);
        let cfg = JoinConfig::dense(64);
        let mut sync = JoinSync::begin(&g, &cfg);
        let frame_len = sync.frame().len();
        assert_eq!(frame_len, CodecSpec::dense().broadcast_len(100));
        let (bytes, chunks) = sync.ship_missing();
        assert_eq!(chunks, frame_len.div_ceil(64));
        assert_eq!(bytes, frame_len + chunks * JOIN_CHUNK_HEADER_LEN);
        // Nothing further to ship while the flight is unresolved.
        assert_eq!(sync.ship_missing(), (0, 0));
        sync.ack_in_flight();
        assert!(sync.is_complete());
        assert_eq!(sync.reassembled(), sync.frame());
        assert_eq!(sync.decoded().expect("self-encoded"), g);
    }

    #[test]
    fn lost_flight_reships_and_reassembles_bit_identically() {
        let g = global(77);
        let mut sync = JoinSync::begin(&g, &JoinConfig::dense(32));
        let (shipped, chunks) = sync.ship_missing();
        let (lost, lost_chunks) = sync.lose_in_flight();
        assert_eq!((shipped, chunks), (lost, lost_chunks));
        assert!(!sync.is_complete());
        // Resume: everything re-ships, then lands.
        let (reshipped, rechunks) = sync.ship_missing();
        assert_eq!((reshipped, rechunks), (shipped, chunks));
        sync.ack_in_flight();
        assert!(sync.is_complete());
        assert_eq!(sync.reassembled(), sync.frame());
    }

    #[test]
    fn quantized_sync_stays_within_the_quant8_envelope() {
        let g = global(300);
        let mut sync = JoinSync::begin(&g, &JoinConfig::quantized(128));
        sync.ship_missing();
        sync.ack_in_flight();
        let decoded = sync.decoded().expect("self-encoded");
        let lo = g.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = g.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let tol = (hi - lo) / 255.0 * 0.5 + 1e-5;
        for (&a, &b) in g.iter().zip(decoded.iter()) {
            assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any loss schedule ends in a bit-identical reassembly, and every
        /// shipped byte is accounted exactly once: lost or delivered.
        #[test]
        fn prop_reassembly_survives_any_loss_schedule(
            params in proptest::collection::vec(-10.0f32..10.0, 1..400),
            chunk_bytes in 1usize..96,
            losses in proptest::collection::vec(any::<bool>(), 0..6),
        ) {
            let cfg = JoinConfig::dense(chunk_bytes);
            let mut sync = JoinSync::begin(&params, &cfg);
            let mut shipped = 0usize;
            let mut lost = 0usize;
            for &lose in &losses {
                if sync.is_complete() {
                    break;
                }
                shipped += sync.ship_missing().0;
                if lose {
                    lost += sync.lose_in_flight().0;
                    prop_assert!(!sync.is_complete());
                } else {
                    sync.ack_in_flight();
                }
            }
            // Final contact always survives.
            shipped += sync.ship_missing().0;
            sync.ack_in_flight();
            prop_assert!(sync.is_complete());
            prop_assert_eq!(sync.reassembled(), sync.frame());
            prop_assert_eq!(sync.decoded().expect("dense frame"), params);
            let frame_wire: usize = (0..sync.num_chunks()).map(|i| sync.wire_len(i)).sum();
            prop_assert_eq!(shipped, lost + frame_wire, "every byte lost or delivered once");
        }

        /// Chunk framing partitions the frame exactly: payload bytes sum to
        /// the frame length and headers to one per chunk.
        #[test]
        fn prop_chunks_partition_the_frame(
            n in 1usize..600,
            chunk_bytes in 1usize..128,
        ) {
            let params: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let sync = JoinSync::begin(&params, &JoinConfig::quantized(chunk_bytes));
            let wire: usize = (0..sync.num_chunks()).map(|i| sync.wire_len(i)).sum();
            prop_assert_eq!(
                wire,
                sync.frame().len() + sync.num_chunks() * JOIN_CHUNK_HEADER_LEN
            );
            prop_assert_eq!(sync.num_chunks(), sync.frame().len().div_ceil(chunk_bytes));
        }
    }

    #[test]
    fn quantized_frame_undercuts_dense_by_3x_plus() {
        let n = 2146; // the smoke-scale Lite model's parameter count
        let g = global(n);
        let dense = CodecSpec::dense().broadcast_len(n);
        let sync = JoinSync::begin(&g, &JoinConfig::quantized(1024));
        let chunked: usize = (0..sync.num_chunks()).map(|i| sync.wire_len(i)).sum();
        assert!(
            chunked * 3 <= dense,
            "chunked quant8 join ({chunked} B) must undercut dense ({dense} B) 3x"
        );
    }
}
