//! Robust aggregation folds: value-level combinators between "decoded,
//! staleness-weighted updates" and "new global parameters".
//!
//! The scenario engine can now mark a fraction of the population hostile
//! ([`AttackSpec`](crate::scenario::AttackSpec)): sign-flipped, inflated,
//! or label-poisoned updates arrive at the aggregator looking exactly like
//! honest ones. Plain weighted averaging ([`aggregate_weighted`]) has a
//! breakdown point of zero — one unbounded update moves the mean
//! arbitrarily — so every algorithm's `fold` now routes through
//! [`aggregate_robust`] under a [`FoldPolicy`]:
//!
//! * [`FoldPolicy::Mean`] — today's behaviour, **bit-identical** to
//!   [`aggregate_weighted`] (the conformance goldens pin this);
//! * [`FoldPolicy::TrimmedMean`] — coordinate-wise β-trimmed weighted mean:
//!   the ⌊β·n⌋ lowest and highest values of every coordinate are discarded
//!   before averaging, bounding the influence of any ⌊β·n⌋ outliers;
//! * [`FoldPolicy::CoordinateMedian`] — coordinate-wise weighted median,
//!   the classic ½-breakdown-point estimator;
//! * [`FoldPolicy::Krum`] — multi-Krum selection: each update is scored by
//!   the summed squared distances to its nearest neighbours, the `f`
//!   highest-scored updates are quarantined, and the survivors are averaged
//!   with their staleness weights intact.
//!
//! Every fold also returns one [`UpdateVerdict`] per input — whether the
//! update was quarantined (rejected outright, its bytes metered on the
//! ledger's quarantine counters and its error-feedback residual refunded)
//! and a per-fold distance score for the detection surface.

use serde::{Deserialize, Serialize};

use crate::party::PartyId;
use crate::scenario::{aggregate_weighted, WeightedUpdate};

/// How an algorithm folds staleness-weighted updates into its globals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FoldPolicy {
    /// Staleness-weighted federated averaging — bit-identical to
    /// [`aggregate_weighted`], zero breakdown point.
    #[default]
    Mean,
    /// Coordinate-wise β-trimmed weighted mean: per coordinate, the
    /// ⌊β·n⌋ lowest and ⌊β·n⌋ highest values are discarded before the
    /// weighted average. Updates trimmed on a majority of coordinates are
    /// quarantined.
    TrimmedMean {
        /// Trim fraction per tail, clamped to `[0, 0.5)` by construction
        /// (`k` is capped so at least one value survives per coordinate).
        beta: f32,
    },
    /// Coordinate-wise weighted median. Nothing is quarantined — every
    /// update votes — but the per-update distance to the median vector is
    /// reported as its score.
    CoordinateMedian,
    /// Multi-Krum: assume at most `f` Byzantine updates per fold; the `f`
    /// highest Krum-scored updates are quarantined and the rest averaged.
    Krum {
        /// Tolerated Byzantine updates per fold.
        f: usize,
    },
}

impl std::fmt::Display for FoldPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FoldPolicy::Mean => write!(f, "mean"),
            FoldPolicy::TrimmedMean { beta } => write!(f, "trimmed(beta={beta:.2})"),
            FoldPolicy::CoordinateMedian => write!(f, "median"),
            FoldPolicy::Krum { f: ff } => write!(f, "krum(f={ff})"),
        }
    }
}

impl FoldPolicy {
    /// Parses a CLI name: `mean`, `trimmed`, `median`, `krum` (the trimmed
    /// β and Krum `f` knobs come from the caller's flags).
    pub fn parse(name: &str, trim_beta: f32, krum_f: usize) -> Option<FoldPolicy> {
        match name.to_ascii_lowercase().as_str() {
            "mean" => Some(FoldPolicy::Mean),
            "trimmed" | "trimmed-mean" => Some(FoldPolicy::TrimmedMean { beta: trim_beta }),
            "median" | "coordinate-median" => Some(FoldPolicy::CoordinateMedian),
            "krum" => Some(FoldPolicy::Krum { f: krum_f }),
            _ => None,
        }
    }
}

/// The fold's judgement of one input update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateVerdict {
    /// Whose update.
    pub party: PartyId,
    /// Rejected outright by the fold: it contributed nothing to the new
    /// globals (Krum non-selection, or majority-trimmed under trimmed mean).
    pub quarantined: bool,
    /// Per-fold distance score — 0 under [`FoldPolicy::Mean`]; fraction of
    /// trimmed coordinates under trimmed mean; RMS distance to the median
    /// vector under coordinate median; the per-coordinate-normalised Krum
    /// score under Krum. Higher = more anomalous.
    pub score: f32,
}

/// Result of one robust fold: the new parameters (when anything could be
/// aggregated) plus one verdict per input update.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustFold {
    /// New global parameters; `None` when nothing could be aggregated (the
    /// caller keeps its current globals).
    pub params: Option<Vec<f32>>,
    /// One verdict per element of the input `ready` slice, in order.
    pub verdicts: Vec<UpdateVerdict>,
}

impl RobustFold {
    /// Verdicts of quarantined updates.
    pub fn quarantined(&self) -> impl Iterator<Item = &UpdateVerdict> {
        self.verdicts.iter().filter(|v| v.quarantined)
    }
}

/// Does this update carry aggregation weight? (Same predicate as
/// [`aggregate_weighted`]: zero-weight and zero-sample updates are inert.)
fn is_valid(w: &WeightedUpdate) -> bool {
    w.weight > 0.0 && w.update.num_samples > 0
}

/// Server-rate blend, identical to the tail of [`aggregate_weighted`]:
/// `params ← (1-η)·global + η·avg` with η clamped to `[0, 1]`.
fn blend(global: &[f32], mut avg: Vec<f32>, server_lr: f32) -> Vec<f32> {
    let eta = server_lr.clamp(0.0, 1.0);
    if eta < 1.0 {
        for (acc, &g) in avg.iter_mut().zip(global.iter()) {
            *acc = (1.0 - eta) * g + eta * *acc;
        }
    }
    avg
}

/// Folds `ready` into `global` under `policy`.
///
/// [`FoldPolicy::Mean`] delegates verbatim to [`aggregate_weighted`] so the
/// default path stays bit-identical to the pre-robustness runtime. The
/// robust folds reuse the same validity predicate and the same η blend, so
/// switching policies changes *only* the location estimator.
pub fn aggregate_robust(
    global: &[f32],
    ready: &[WeightedUpdate],
    server_lr: f32,
    policy: &FoldPolicy,
) -> RobustFold {
    match *policy {
        FoldPolicy::Mean => RobustFold {
            params: aggregate_weighted(global, ready, server_lr),
            verdicts: ready
                .iter()
                .map(|w| UpdateVerdict {
                    party: w.update.party,
                    quarantined: false,
                    score: 0.0,
                })
                .collect(),
        },
        FoldPolicy::TrimmedMean { beta } => trimmed_mean(global, ready, server_lr, beta),
        FoldPolicy::CoordinateMedian => coordinate_median(global, ready, server_lr),
        FoldPolicy::Krum { f } => krum(global, ready, server_lr, f),
    }
}

fn inert_verdicts(ready: &[WeightedUpdate]) -> Vec<UpdateVerdict> {
    ready
        .iter()
        .map(|w| UpdateVerdict {
            party: w.update.party,
            quarantined: false,
            score: 0.0,
        })
        .collect()
}

/// Coordinate-wise β-trimmed weighted mean. `k = ⌊β·n⌋` values are trimmed
/// from each tail of every coordinate (capped so at least one survives);
/// the remainder is weighted-averaged. An update trimmed on more than half
/// its coordinates is quarantined.
fn trimmed_mean(global: &[f32], ready: &[WeightedUpdate], server_lr: f32, beta: f32) -> RobustFold {
    let valid: Vec<usize> = (0..ready.len()).filter(|&i| is_valid(&ready[i])).collect();
    let n = valid.len();
    if n == 0 {
        return RobustFold {
            params: None,
            verdicts: inert_verdicts(ready),
        };
    }
    let k = ((beta.max(0.0) * n as f32).floor() as usize).min((n - 1) / 2);
    if k == 0 {
        // Nothing to trim: exactly the weighted mean.
        return RobustFold {
            params: aggregate_weighted(global, ready, server_lr),
            verdicts: inert_verdicts(ready),
        };
    }
    let dim = global.len();
    let mut avg = vec![0.0f32; dim];
    let mut trimmed_counts = vec![0usize; ready.len()];
    // (value, weight, ready-index) scratch, reused per coordinate.
    let mut col: Vec<(f32, f32, usize)> = Vec::with_capacity(n);
    for (c, acc) in avg.iter_mut().enumerate() {
        col.clear();
        for &i in &valid {
            let w = &ready[i];
            let v = w.update.params.get(c).copied().unwrap_or(0.0);
            col.push((v, w.weight, i));
        }
        col.sort_by(|a, b| a.0.total_cmp(&b.0));
        let kept = &col[k..n - k];
        let total: f32 = kept.iter().map(|&(_, w, _)| w).sum();
        if total > 0.0 {
            *acc = kept.iter().map(|&(v, w, _)| v * w).sum::<f32>() / total;
        }
        for &(_, _, i) in col[..k].iter().chain(col[n - k..].iter()) {
            trimmed_counts[i] += 1;
        }
    }
    let verdicts = ready
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let score = if is_valid(w) && dim > 0 {
                trimmed_counts[i] as f32 / dim as f32
            } else {
                0.0
            };
            UpdateVerdict {
                party: w.update.party,
                quarantined: score > 0.5,
                score,
            }
        })
        .collect();
    RobustFold {
        params: Some(blend(global, avg, server_lr)),
        verdicts,
    }
}

/// Coordinate-wise weighted median: per coordinate, the smallest value at
/// which the cumulative weight reaches half the total. Scores are each
/// update's RMS distance to the median vector; nothing is quarantined.
fn coordinate_median(global: &[f32], ready: &[WeightedUpdate], server_lr: f32) -> RobustFold {
    let valid: Vec<usize> = (0..ready.len()).filter(|&i| is_valid(&ready[i])).collect();
    let n = valid.len();
    if n == 0 {
        return RobustFold {
            params: None,
            verdicts: inert_verdicts(ready),
        };
    }
    let dim = global.len();
    let mut med = vec![0.0f32; dim];
    let mut col: Vec<(f32, f32)> = Vec::with_capacity(n);
    for (c, out) in med.iter_mut().enumerate() {
        col.clear();
        let mut total = 0.0f32;
        for &i in &valid {
            let w = &ready[i];
            let v = w.update.params.get(c).copied().unwrap_or(0.0);
            col.push((v, w.weight));
            total += w.weight;
        }
        col.sort_by(|a, b| a.0.total_cmp(&b.0));
        let half = total * 0.5;
        let mut cum = 0.0f32;
        let mut chosen = col[n - 1].0;
        for &(v, w) in col.iter() {
            cum += w;
            if cum >= half {
                chosen = v;
                break;
            }
        }
        *out = chosen;
    }
    let verdicts = ready
        .iter()
        .map(|w| {
            let score = if is_valid(w) && dim > 0 {
                let ss: f32 = med
                    .iter()
                    .enumerate()
                    .map(|(c, &m)| {
                        let d = w.update.params.get(c).copied().unwrap_or(0.0) - m;
                        d * d
                    })
                    .sum();
                (ss / dim as f32).sqrt()
            } else {
                0.0
            };
            UpdateVerdict {
                party: w.update.party,
                quarantined: false,
                score,
            }
        })
        .collect();
    RobustFold {
        params: Some(blend(global, med, server_lr)),
        verdicts,
    }
}

/// Multi-Krum over the valid updates: score each by the sum of its
/// `n - f - 2` smallest squared distances to the others (clamped to ≥ 1
/// neighbour), select the `n - f` lowest-scored (clamped to ≥ 1), and
/// average the selection with staleness weights intact. Non-selected
/// updates are quarantined.
fn krum(global: &[f32], ready: &[WeightedUpdate], server_lr: f32, f: usize) -> RobustFold {
    let valid: Vec<usize> = (0..ready.len()).filter(|&i| is_valid(&ready[i])).collect();
    let n = valid.len();
    if n == 0 {
        return RobustFold {
            params: None,
            verdicts: inert_verdicts(ready),
        };
    }
    let dim = global.len().max(1);
    // Pairwise squared distances between valid updates.
    let mut dist = vec![0.0f32; n * n];
    for a in 0..n {
        for b in (a + 1)..n {
            let pa = &ready[valid[a]].update.params;
            let pb = &ready[valid[b]].update.params;
            let len = pa.len().max(pb.len());
            let mut ss = 0.0f32;
            for c in 0..len {
                let d = pa.get(c).copied().unwrap_or(0.0) - pb.get(c).copied().unwrap_or(0.0);
                ss += d * d;
            }
            dist[a * n + b] = ss;
            dist[b * n + a] = ss;
        }
    }
    let neighbours = n.saturating_sub(f + 2).max(1).min(n.saturating_sub(1));
    let mut scores = vec![0.0f32; n];
    if n > 1 {
        let mut row: Vec<f32> = Vec::with_capacity(n - 1);
        for (a, score) in scores.iter_mut().enumerate() {
            row.clear();
            for b in 0..n {
                if b != a {
                    row.push(dist[a * n + b]);
                }
            }
            row.sort_by(f32::total_cmp);
            *score = row[..neighbours].iter().sum::<f32>() / dim as f32;
        }
    }
    // Select the n - f lowest-scored updates (ties broken by input order).
    let select = n.saturating_sub(f).max(1);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    let mut selected = vec![false; ready.len()];
    for &a in &order[..select] {
        selected[valid[a]] = true;
    }
    let chosen: Vec<WeightedUpdate> = ready
        .iter()
        .enumerate()
        .filter(|&(i, _)| selected[i])
        .map(|(_, w)| w.clone())
        .collect();
    let score_of: Vec<f32> = {
        let mut per_ready = vec![0.0f32; ready.len()];
        for (a, &i) in valid.iter().enumerate() {
            per_ready[i] = scores[a];
        }
        per_ready
    };
    let verdicts = ready
        .iter()
        .enumerate()
        .map(|(i, w)| UpdateVerdict {
            party: w.update.party,
            quarantined: is_valid(w) && !selected[i],
            score: score_of[i],
        })
        .collect();
    RobustFold {
        params: aggregate_weighted(global, &chosen, server_lr),
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::ModelUpdate;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn wu(party: usize, params: Vec<f32>, weight: f32) -> WeightedUpdate {
        WeightedUpdate {
            update: ModelUpdate {
                party: PartyId(party),
                params,
                num_samples: 10,
                train_loss: 0.5,
            },
            staleness: 0,
            weight,
        }
    }

    fn honest(n: usize) -> Vec<WeightedUpdate> {
        (0..n)
            .map(|i| wu(i, vec![1.0 + 0.01 * i as f32, -1.0, 0.5], 10.0))
            .collect()
    }

    #[test]
    fn mean_policy_is_bit_identical_to_aggregate_weighted() {
        let ready = honest(5);
        let global = vec![0.25, 0.5, -0.75];
        for lr in [1.0, 0.5] {
            let plain = aggregate_weighted(&global, &ready, lr);
            let robust = aggregate_robust(&global, &ready, lr, &FoldPolicy::Mean);
            assert_eq!(plain, robust.params);
            assert!(robust.verdicts.iter().all(|v| !v.quarantined));
        }
    }

    #[test]
    fn trimmed_mean_discards_one_outlier_per_tail() {
        let mut ready = honest(4);
        ready.push(wu(4, vec![1000.0, -1000.0, 1000.0], 10.0));
        let fold = aggregate_robust(
            &[0.0; 3],
            &ready,
            1.0,
            &FoldPolicy::TrimmedMean { beta: 0.2 },
        );
        let params = fold.params.expect("aggregates");
        assert!(
            params[0] < 2.0,
            "outlier must not drag the mean: {params:?}"
        );
        // The attacker is extreme on every coordinate → quarantined.
        let v = &fold.verdicts[4];
        assert!(v.quarantined && v.score > 0.5, "{v:?}");
        assert!(!fold.verdicts[1].quarantined);
    }

    #[test]
    fn trimmed_mean_with_tiny_cohorts_degrades_to_mean() {
        let ready = honest(2);
        let trimmed = aggregate_robust(
            &[0.0; 3],
            &ready,
            1.0,
            &FoldPolicy::TrimmedMean { beta: 0.4 },
        );
        let mean = aggregate_weighted(&[0.0; 3], &ready, 1.0);
        assert_eq!(trimmed.params, mean, "k = 0 at n = 2");
    }

    #[test]
    fn coordinate_median_resists_a_minority_of_liars() {
        let mut ready = honest(4);
        ready.push(wu(4, vec![1e6, 1e6, 1e6], 10.0));
        let fold = aggregate_robust(&[0.0; 3], &ready, 1.0, &FoldPolicy::CoordinateMedian);
        let params = fold.params.expect("aggregates");
        assert!(params[0] < 2.0 && params[1] < 0.0);
        // Detection surface: the liar's distance score dwarfs the honest.
        assert!(fold.verdicts[4].score > 100.0 * fold.verdicts[0].score);
        assert!(fold.verdicts.iter().all(|v| !v.quarantined));
    }

    #[test]
    fn krum_quarantines_the_far_updates() {
        let mut ready = honest(5);
        ready.push(wu(5, vec![-50.0, 50.0, -50.0], 10.0));
        ready.push(wu(6, vec![60.0, -60.0, 60.0], 10.0));
        let fold = aggregate_robust(&[0.0; 3], &ready, 1.0, &FoldPolicy::Krum { f: 2 });
        let quarantined: Vec<usize> = fold.quarantined().map(|v| v.party.0).collect();
        assert_eq!(quarantined, vec![5, 6]);
        let params = fold.params.expect("aggregates");
        assert!((params[0] - 1.02).abs() < 0.1, "{params:?}");
    }

    #[test]
    fn krum_single_update_is_selected() {
        let ready = honest(1);
        let fold = aggregate_robust(&[0.0; 3], &ready, 1.0, &FoldPolicy::Krum { f: 2 });
        assert!(fold.params.is_some());
        assert!(!fold.verdicts[0].quarantined);
    }

    #[test]
    fn all_folds_handle_empty_and_inert_inputs() {
        let policies = [
            FoldPolicy::Mean,
            FoldPolicy::TrimmedMean { beta: 0.2 },
            FoldPolicy::CoordinateMedian,
            FoldPolicy::Krum { f: 1 },
        ];
        let inert = vec![wu(0, vec![1.0, 1.0, 1.0], 0.0)];
        for p in &policies {
            assert!(aggregate_robust(&[0.0; 3], &[], 1.0, p).params.is_none());
            let fold = aggregate_robust(&[0.0; 3], &inert, 1.0, p);
            assert!(fold.params.is_none(), "{p}: zero-weight input is inert");
            assert!(!fold.verdicts[0].quarantined);
        }
    }

    #[test]
    fn robust_folds_respect_server_lr() {
        let ready = honest(3);
        let global = vec![10.0, 10.0, 10.0];
        for p in [
            FoldPolicy::TrimmedMean { beta: 0.34 },
            FoldPolicy::CoordinateMedian,
            FoldPolicy::Krum { f: 1 },
        ] {
            let full = aggregate_robust(&global, &ready, 1.0, &p)
                .params
                .expect("aggregates");
            let half = aggregate_robust(&global, &ready, 0.5, &p)
                .params
                .expect("aggregates");
            for c in 0..3 {
                let blended = 0.5 * global[c] + 0.5 * full[c];
                assert!((half[c] - blended).abs() < 1e-5, "{p}: coordinate {c}");
            }
        }
    }

    /// Deterministic Fisher–Yates driven by a multiplicative hash, so the
    /// permutation-invariance property needs no extra RNG plumbing.
    fn shuffled(ready: &[WeightedUpdate], seed: u64) -> Vec<WeightedUpdate> {
        let mut v = ready.to_vec();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for i in (1..v.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    /// An honest cohort clustered around `center`. Per-party offsets are
    /// geometrically spaced so no two parties coincide and no two pairwise
    /// distances tie — exact ties are legitimately broken in input order,
    /// which would make the quarantine *set* order-dependent.
    fn clustered(center: &[f32], n: usize, jitter: f32) -> Vec<WeightedUpdate> {
        (0..n)
            .map(|i| {
                let offset = jitter * 1.37f32.powi(i as i32) / 1.37f32.powi(n as i32);
                let params = center.iter().map(|&x| x + offset).collect();
                wu(i, params, 10.0)
            })
            .collect()
    }

    const ALL_POLICIES: [FoldPolicy; 4] = [
        FoldPolicy::Mean,
        FoldPolicy::TrimmedMean { beta: 0.2 },
        FoldPolicy::CoordinateMedian,
        FoldPolicy::Krum { f: 2 },
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_every_fold_is_permutation_invariant(
            center in proptest::collection::vec(-5.0f32..5.0, 1..6),
            n in 4usize..10,
            perm_seed in 0u64..1_000_000,
        ) {
            let ready = clustered(&center, n, 0.5);
            let global = vec![0.0; center.len()];
            for policy in &ALL_POLICIES {
                let a = aggregate_robust(&global, &ready, 1.0, policy);
                let b = aggregate_robust(&global, &shuffled(&ready, perm_seed), 1.0, policy);
                // The quarantined *set* must not depend on arrival order.
                let qa: BTreeSet<PartyId> = a.quarantined().map(|v| v.party).collect();
                let qb: BTreeSet<PartyId> = b.quarantined().map(|v| v.party).collect();
                prop_assert_eq!(qa, qb, "{}: quarantine set must be order-free", policy);
                let (pa, pb) = (a.params.expect("aggregates"), b.params.expect("aggregates"));
                for (x, y) in pa.iter().zip(pb.iter()) {
                    prop_assert!(
                        (x - y).abs() <= 1e-3 * (1.0 + x.abs()),
                        "{policy}: {x} vs {y} after permutation"
                    );
                }
            }
        }

        #[test]
        fn prop_trimmed_and_median_survive_a_bounded_attacker(
            center in proptest::collection::vec(-1.0f32..1.0, 1..6),
            n_honest in 4usize..10,
            magnitude in 100.0f32..10_000.0,
        ) {
            // One attacker among ≥ 4 honest parties stays within each rule's
            // breakdown point (β·n ≥ 1 for trimmed; < 50 % for the median),
            // so the fold must land inside the honest coordinate envelope.
            let mut ready = clustered(&center, n_honest, 0.2);
            let dim = center.len();
            ready.push(wu(n_honest, vec![magnitude; dim], 10.0));
            for policy in [
                FoldPolicy::TrimmedMean { beta: 0.2 },
                FoldPolicy::CoordinateMedian,
            ] {
                let fold = aggregate_robust(&vec![0.0; dim], &ready, 1.0, &policy);
                let params = fold.params.expect("aggregates");
                for (c, &folded) in params.iter().enumerate() {
                    let honest: Vec<f32> =
                        (0..n_honest).map(|i| ready[i].update.params[c]).collect();
                    let lo = honest.iter().copied().fold(f32::INFINITY, f32::min);
                    let hi = honest.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    prop_assert!(
                        folded >= lo - 1e-4 && folded <= hi + 1e-4,
                        "{policy}: coordinate {c} = {folded} escaped honest [{lo}, {hi}]"
                    );
                }
            }
        }

        #[test]
        fn prop_krum_never_folds_a_far_attacker(
            center in proptest::collection::vec(-2.0f32..2.0, 2..6),
            n_honest in 4usize..9,
            f in 1usize..3,
        ) {
            // f far-away sign-flip-style outliers vs a tight honest cluster:
            // multi-Krum must quarantine every attacker and keep ≥ 1 honest.
            let mut ready = clustered(&center, n_honest, 0.1);
            let dim = center.len();
            for a in 0..f {
                let far: Vec<f32> = center.iter().map(|&x| -x - 50.0 * (a + 1) as f32).collect();
                ready.push(wu(n_honest + a, far, 10.0));
            }
            let fold = aggregate_robust(&vec![0.0; dim], &ready, 1.0, &FoldPolicy::Krum { f });
            let quarantined: BTreeSet<usize> = fold.quarantined().map(|v| v.party.0).collect();
            for a in 0..f {
                prop_assert!(
                    quarantined.contains(&(n_honest + a)),
                    "attacker {a} escaped the krum quarantine: {quarantined:?}"
                );
            }
            prop_assert!(fold.params.is_some(), "honest survivors must aggregate");
        }
    }

    #[test]
    fn policy_display_and_parse_round_trip() {
        assert_eq!(FoldPolicy::parse("mean", 0.2, 2), Some(FoldPolicy::Mean));
        assert_eq!(
            FoldPolicy::parse("trimmed", 0.25, 2),
            Some(FoldPolicy::TrimmedMean { beta: 0.25 })
        );
        assert_eq!(
            FoldPolicy::parse("median", 0.2, 2),
            Some(FoldPolicy::CoordinateMedian)
        );
        assert_eq!(
            FoldPolicy::parse("krum", 0.2, 3),
            Some(FoldPolicy::Krum { f: 3 })
        );
        assert_eq!(FoldPolicy::parse("bogus", 0.2, 2), None);
        assert_eq!(FoldPolicy::Mean.to_string(), "mean");
        assert_eq!(FoldPolicy::Krum { f: 2 }.to_string(), "krum(f=2)");
    }
}
