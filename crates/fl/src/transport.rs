//! The cohort transport seam: where a round's broadcast → local-step →
//! upload exchange actually happens.
//!
//! [`run_algorithm_round_with`](crate::run_algorithm_round_with)
//! historically inlined the exchange: materialize the cohort, hand every
//! member the decoded broadcast, call its local step, and ship the result
//! through the simulated wire
//! ([`ScenarioEngine::transport_upload`]). That is exactly the part of a
//! round that stops being simulation once parties are real processes on
//! real sockets, so it now lives behind [`CohortTransport`]:
//!
//! * [`LocalTransport`] reproduces the historical inline exchange
//!   bit-for-bit — the default for every in-process scenario run and the
//!   reference the conformance goldens pin;
//! * a networked implementation (`shiftex_net`) ships the same encoded
//!   codec frames over TCP to worker processes and reports parties whose
//!   sockets stalled past the round deadline or disconnected as
//!   [`UploadOutcome::Lost`]. The driver meters each loss as an aborted
//!   upload and feeds it to
//!   [`ParticipantSelector::on_unavailable`](crate::ParticipantSelector::on_unavailable)
//!   — real stragglers and real churn entering the same accounting as the
//!   engine's simulated axes.
//!
//! A remote transport reproduces the *default*
//! [`FederatedAlgorithm::local_step`](crate::FederatedAlgorithm::local_step)
//! (seeded [`local_update`](crate::local_update) under the algorithm's
//! train config) on the worker side. No algorithm in this workspace
//! overrides `local_step`; one that did could not train its cohort
//! remotely and must keep using [`LocalTransport`].

use crate::codec::CodecSpec;
use crate::comm::CommLedger;
use crate::party::{Party, PartyId};
use crate::population::PopulationView;
use crate::scenario::ScenarioEngine;
use crate::update::ModelUpdate;

/// What came back (or didn't) for one cohort member's upload.
#[derive(Debug, Clone, PartialEq)]
pub enum UploadOutcome {
    /// The update completed its wire roundtrip: this is the decoded update
    /// exactly as the aggregator sees it (post-codec, post-simulated-attack
    /// for [`LocalTransport`]; decoded from the real socket frame for a
    /// networked transport).
    Delivered(ModelUpdate),
    /// The party trained (or was asked to) but its upload never arrived:
    /// a real mid-round disconnect or a socket stalled past the round
    /// deadline. The driver meters the loss as an aborted upload at the
    /// exact frame size and notifies the selector's availability hook.
    Lost(PartyId),
}

/// Everything the driver resolved about one stream's exchange before
/// handing it to the transport: the stream key, the raw globals to encode,
/// the codec the round runs under (post-adaptive-controller), the cohort in
/// training/aggregation order, and one pre-drawn training seed per member.
///
/// Seeds are drawn by the driver from its own RNG *before* the exchange,
/// in cohort order — a networked coordinator therefore draws exactly the
/// same seeds as the in-process driver, which is what makes the sync
/// loopback path bit-identical.
#[derive(Debug)]
pub struct CohortExchange<'a> {
    /// Update-stream key.
    pub key: usize,
    /// Raw (pre-encode) global parameters of the stream.
    pub globals: &'a [f32],
    /// The codec this stream's round runs under.
    pub codec: &'a CodecSpec,
    /// Cohort in training and aggregation order.
    pub cohort: &'a [PartyId],
    /// One pre-drawn local-training seed per cohort member, same order.
    pub seeds: &'a [u64],
}

/// One party's local step: `(party, decoded_broadcast, seed) → update`.
/// The driver passes a closure delegating to
/// [`FederatedAlgorithm::local_step`](crate::FederatedAlgorithm::local_step).
pub type LocalStepFn<'a> = dyn FnMut(&Party, &[f32], u64) -> ModelUpdate + 'a;

/// The seam between the round driver and wherever cohort training runs.
///
/// An implementation owns the full broadcast → train → upload leg of one
/// stream's round: it must call [`ScenarioEngine::broadcast`] exactly once
/// (the engine is the metering and first-contact authority for both the
/// local and the networked path) and return one [`UploadOutcome`] per
/// cohort member **in cohort order** — aggregation order is part of the
/// bit-reproducibility contract.
pub trait CohortTransport {
    /// Executes one stream's exchange for this round.
    fn exchange(
        &mut self,
        exchange: &CohortExchange<'_>,
        live: &PopulationView<'_>,
        engine: &mut ScenarioEngine,
        ledger: Option<&CommLedger>,
        local_step: &mut LocalStepFn<'_>,
    ) -> Vec<UploadOutcome>;

    /// Called by the driver once per round, after every stream's exchange
    /// has been folded. A networked transport closes the round on the wire
    /// (workers learn their stragglers' uploads were dropped); the local
    /// transport has nothing to do.
    fn round_complete(&mut self, engine: &mut ScenarioEngine) {
        let _ = engine;
    }
}

/// The in-process transport: cohort members are materialized from the
/// population view, trained in this process, and their uploads shipped
/// through the engine's simulated wire
/// ([`ScenarioEngine::transport_upload`] — codec roundtrip, error
/// feedback, wire-level attack corruption). Bit-identical to the driver's
/// historical inline exchange.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalTransport;

impl CohortTransport for LocalTransport {
    fn exchange(
        &mut self,
        x: &CohortExchange<'_>,
        live: &PopulationView<'_>,
        engine: &mut ScenarioEngine,
        ledger: Option<&CommLedger>,
        local_step: &mut LocalStepFn<'_>,
    ) -> Vec<UploadOutcome> {
        // The round's working set: only the sampled cohort is materialized,
        // and dropping it at the end of this exchange is the eviction that
        // keeps residency O(cohort) regardless of population size.
        let cohort: Vec<Party> = live.parties(x.cohort);
        let bcast = engine.broadcast(x.key, x.globals, x.codec, x.cohort, ledger);
        let updates: Vec<ModelUpdate> = cohort
            .iter()
            .zip(x.seeds.iter())
            .map(|(party, &seed)| {
                // Each party trains from the frame it actually received:
                // veterans the regular (possibly delta-coded) decode,
                // first contacts their self-contained full-state decode.
                // Label-flip adversaries train honestly — on poisoned data.
                if engine.poisons_labels(party.id()) {
                    let poisoned = party.label_flipped();
                    local_step(&poisoned, bcast.state_for(party.id()), seed)
                } else {
                    local_step(party, bcast.state_for(party.id()), seed)
                }
            })
            .collect();
        drop(cohort);
        updates
            .into_iter()
            .map(|u| {
                UploadOutcome::Delivered(engine.transport_upload(x.key, u, x.codec, &bcast.decoded))
            })
            .collect()
    }
}
