//! One federated round: local training on a cohort, metered exchange,
//! federated averaging.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use shiftex_nn::{fedavg, train_local_params, ArchSpec, TrainConfig};

use crate::codec::CodecSpec;
use crate::comm::CommLedger;
use crate::party::{Party, PartyId};
use crate::scenario::{aggregate_weighted, RoundMode, ScenarioEngine};
use crate::update::ModelUpdate;

/// Configuration of a federated round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundConfig {
    /// Local-training hyper-parameters.
    pub train: TrainConfig,
    /// Cohort size per round (capped at the eligible-pool size).
    pub participants_per_round: usize,
    /// Run local training on parallel threads.
    pub parallel: bool,
    /// Wire codec for broadcasts and uploads (dense binary by default).
    pub codec: CodecSpec,
}

impl Default for RoundConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            participants_per_round: 10,
            parallel: false,
            codec: CodecSpec::dense(),
        }
    }
}

/// Result of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundOutcome {
    /// Aggregated (FedAvg) parameters.
    pub params: Vec<f32>,
    /// Per-participant updates (metadata retained; params already folded).
    pub updates: Vec<ModelUpdate>,
    /// Sample-weighted mean training loss across the cohort.
    pub mean_loss: f32,
}

/// Runs local training for `cohort` from `global_params` and aggregates.
///
/// The exchange goes through `cfg.codec` end to end: every member trains
/// from the **decoded broadcast** (lossy codecs degrade it honestly), every
/// upload is the decoded wire payload the aggregator would see, and the
/// ledger meters exact encoded sizes in both directions. Under the default
/// [`CodecSpec::dense`] this is bit-identical to an uncoded round.
///
/// Each cohort member gets an independent RNG seeded from `rng`, so results
/// are identical whether `parallel` is on or off.
///
/// # Panics
///
/// Panics if `cohort` is empty or every member has zero training samples.
pub fn run_round(
    spec: &ArchSpec,
    global_params: &[f32],
    cohort: &[&Party],
    cfg: &RoundConfig,
    ledger: Option<&CommLedger>,
    rng: &mut StdRng,
) -> RoundOutcome {
    assert!(!cohort.is_empty(), "round with empty cohort");
    let codec = cfg.codec;
    // Broadcast: one encoded frame of globals per selected member. A plain
    // round has no broadcast history, so delta codecs reference zeros and
    // sparsified downlinks fall back to a dense full-state frame.
    let bspec = codec.broadcast_spec(false);
    let broadcast = bspec.transport(global_params.to_vec(), &[]);
    if let Some(ledger) = ledger {
        let down = bspec.broadcast_len(global_params.len());
        for _ in cohort {
            ledger.record_download(down);
        }
    }
    let updates = train_cohort(spec, &broadcast, cohort, cfg, rng);
    // Uplink: each update crosses the wire (residuals reference the
    // broadcast both sides hold); the aggregator folds what it decodes.
    let updates: Vec<ModelUpdate> = updates
        .into_iter()
        .map(|u| u.transport(&codec, &broadcast))
        .collect();
    if let Some(ledger) = ledger {
        for u in &updates {
            ledger.record_upload(u.encoded_len(&codec));
        }
    }

    let weighted: Vec<(&[f32], usize)> = updates
        .iter()
        .filter(|u| u.num_samples > 0)
        .map(|u| (u.params.as_slice(), u.num_samples))
        .collect();
    assert!(!weighted.is_empty(), "no cohort member had training data");
    let params = fedavg(
        &weighted.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
        &weighted.iter().map(|(_, n)| *n).collect::<Vec<_>>(),
    );
    let total: usize = weighted.iter().map(|(_, n)| *n).sum();
    let mean_loss = updates
        .iter()
        .map(|u| u.train_loss * u.num_samples as f32)
        .sum::<f32>()
        / total as f32;
    RoundOutcome {
        params,
        updates,
        mean_loss,
    }
}

/// Local training only: every cohort member trains from `global_params` and
/// returns its update, with no aggregation or metering. Each member gets an
/// independent RNG seeded from `rng`, so results are identical whether
/// `cfg.parallel` is on or off. The scenario engine composes this with
/// churn/straggler fates before aggregation; [`run_round`] composes it with
/// immediate federated averaging.
pub fn train_cohort(
    spec: &ArchSpec,
    global_params: &[f32],
    cohort: &[&Party],
    cfg: &RoundConfig,
    rng: &mut StdRng,
) -> Vec<ModelUpdate> {
    let seeds: Vec<u64> = cohort.iter().map(|_| rng.random::<u64>()).collect();
    if cfg.parallel {
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = cohort
                .iter()
                .zip(seeds.iter())
                .map(|(party, &seed)| {
                    scope.spawn(move |_| local_update(spec, global_params, party, &cfg.train, seed))
                })
                .collect();
            handles
                .into_iter()
                // lint:allow(panic): propagate a worker panic instead of silently dropping its update
                .map(|h| h.join().expect("local training panicked"))
                .collect()
        })
        // lint:allow(panic): scoped-thread teardown only fails if a worker panicked — propagate it
        .expect("training scope panicked")
    } else {
        cohort
            .iter()
            .zip(seeds.iter())
            .map(|(party, &seed)| local_update(spec, global_params, party, &cfg.train, seed))
            .collect()
    }
}

/// Result of one scenario-mediated round on one update stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRoundOutcome {
    /// Parameters after aggregation (unchanged when nothing aggregated).
    pub params: Vec<f32>,
    /// `(party, train_loss, staleness)` of every update folded in.
    pub folded: Vec<(PartyId, f32, usize)>,
    /// Parties whose uploads were aborted this round.
    pub lost: Vec<PartyId>,
    /// Updates deferred into the staleness buffer this round.
    pub deferred: usize,
    /// Weight-averaged training loss of the folded updates, if any.
    pub mean_loss: Option<f32>,
}

impl ScenarioRoundOutcome {
    /// Number of updates folded into the aggregation.
    pub fn aggregated(&self) -> usize {
        self.folded.len()
    }
}

/// Runs one scenario-mediated round on stream `key`: the cohort trains,
/// the [`ScenarioEngine`] applies churn/straggler/staleness fates, and
/// whatever it releases is staleness-weight aggregated into `global_params`.
///
/// The exchange goes through `cfg.codec`: the engine broadcasts an encoded
/// frame of the globals per stream (delta codecs reference the stream's
/// previous broadcast), the cohort trains from the decoded broadcast, and
/// every upload — delivered, deferred, aborted, or stale-dropped — is
/// metered at its exact encoded size.
///
/// Unlike [`run_round`] an empty cohort is legal (churn can empty a round):
/// buffered updates may still mature, and with none the parameters simply
/// pass through.
///
/// The caller advances the engine's round clock (one
/// [`ScenarioEngine::begin_round`] per global tick — streams share it).
#[allow(clippy::too_many_arguments)] // mirrors run_round + (engine, stream key)
pub fn run_round_scenario(
    spec: &ArchSpec,
    global_params: &[f32],
    cohort: &[&Party],
    cfg: &RoundConfig,
    engine: &mut ScenarioEngine,
    key: usize,
    ledger: Option<&CommLedger>,
    rng: &mut StdRng,
) -> ScenarioRoundOutcome {
    let codec = cfg.codec;
    // Every selected member pulls the encoded globals before training.
    let recipients: Vec<PartyId> = cohort.iter().map(|p| p.id()).collect();
    // This legacy path trains the whole cohort from the regular decoded
    // frame (first-contact metering still applies); the generic
    // `run_algorithm_round` driver additionally hands first contacts their
    // own full-state decode.
    let broadcast = engine
        .broadcast(key, global_params, &codec, &recipients, ledger)
        .decoded;
    let updates = train_cohort(spec, &broadcast, cohort, cfg, rng);
    let updates: Vec<ModelUpdate> = updates
        .into_iter()
        .map(|u| engine.transport_upload(key, u, &codec, &broadcast))
        .collect();
    let delivery = engine.collect(key, updates, &codec, ledger);
    let server_lr = match engine.spec().mode {
        RoundMode::Sync => 1.0,
        RoundMode::Async(a) => a.server_lr,
    };
    let params = aggregate_weighted(global_params, &delivery.ready, server_lr)
        .unwrap_or_else(|| global_params.to_vec());
    let folded: Vec<(PartyId, f32, usize)> = delivery
        .ready
        .iter()
        .map(|w| (w.update.party, w.update.train_loss, w.staleness))
        .collect();
    let total_w: f32 = delivery.ready.iter().map(|w| w.weight).sum();
    let mean_loss = (total_w > 0.0).then(|| {
        delivery
            .ready
            .iter()
            .map(|w| w.update.train_loss * w.weight)
            .sum::<f32>()
            / total_w
    });
    ScenarioRoundOutcome {
        params,
        folded,
        lost: delivery.lost,
        deferred: delivery.deferred.len(),
        mean_loss,
    }
}

/// One party's local training step from the (decoded) global parameters,
/// under an independent RNG stream derived from `seed`. Parties with no
/// training data return a zero-sample echo of the globals. This is the unit
/// [`train_cohort`] fans out — and the default
/// [`FederatedAlgorithm::local_step`](crate::FederatedAlgorithm::local_step).
pub fn local_update(
    spec: &ArchSpec,
    global_params: &[f32],
    party: &Party,
    train: &TrainConfig,
    seed: u64,
) -> ModelUpdate {
    let mut rng = StdRng::seed_from_u64(seed);
    if party.train().is_empty() {
        return ModelUpdate {
            party: party.id(),
            params: global_params.to_vec(),
            num_samples: 0,
            train_loss: 0.0,
        };
    }
    let fit = train_local_params(
        spec,
        global_params,
        party.train_features(),
        party.train_labels(),
        train,
        &mut rng,
    );
    ModelUpdate {
        party: party.id(),
        params: fit.params,
        num_samples: fit.num_samples,
        train_loss: fit.final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::PartyId;
    use shiftex_data::{ImageShape, PrototypeGenerator};
    use shiftex_nn::Sequential;

    fn setup(n_parties: usize, seed: u64) -> (ArchSpec, Vec<f32>, Vec<Party>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        let parties: Vec<Party> = (0..n_parties)
            .map(|i| {
                Party::new(
                    PartyId(i),
                    gen.generate_uniform(24, &mut rng),
                    gen.generate_uniform(12, &mut rng),
                )
            })
            .collect();
        let spec = ArchSpec::mlp("t", 16, &[12], 3);
        let init = Sequential::build(&spec, &mut rng).params_flat();
        (spec, init, parties)
    }

    #[test]
    fn round_produces_update_per_participant() {
        let (spec, init, parties) = setup(4, 0);
        let cohort: Vec<&Party> = parties.iter().collect();
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_round(
            &spec,
            &init,
            &cohort,
            &RoundConfig::default(),
            None,
            &mut rng,
        );
        assert_eq!(out.updates.len(), 4);
        assert_eq!(out.params.len(), init.len());
        assert!(out.mean_loss.is_finite());
    }

    #[test]
    fn parallel_and_serial_rounds_agree() {
        let (spec, init, parties) = setup(4, 2);
        let cohort: Vec<&Party> = parties.iter().collect();
        let mut cfg = RoundConfig::default();

        let mut rng1 = StdRng::seed_from_u64(3);
        cfg.parallel = false;
        let serial = run_round(&spec, &init, &cohort, &cfg, None, &mut rng1);

        let mut rng2 = StdRng::seed_from_u64(3);
        cfg.parallel = true;
        let parallel = run_round(&spec, &init, &cohort, &cfg, None, &mut rng2);

        assert_eq!(serial.params, parallel.params);
    }

    #[test]
    fn rounds_improve_global_accuracy() {
        // Fixture seeds are calibrated to the workspace's deterministic RNG
        // stream (see shims/rand): this draw starts below the 33 % chance
        // level and trains to ~0.54 in five rounds.
        let (spec, init, parties) = setup(6, 11);
        let cohort: Vec<&Party> = parties.iter().collect();
        let mut rng = StdRng::seed_from_u64(12);
        let before = crate::evaluate_on_parties(&spec, &init, &parties);
        let mut params = init;
        for _ in 0..5 {
            params = run_round(
                &spec,
                &params,
                &cohort,
                &RoundConfig::default(),
                None,
                &mut rng,
            )
            .params;
        }
        let after = crate::evaluate_on_parties(&spec, &params, &parties);
        assert!(
            after > before,
            "federated training should help: {before} -> {after}"
        );
        // The synthetic generator is deliberately hard (class signal ~0.25 of
        // noise scale); 5 rounds on 16-dim data lands well above the 33 %
        // chance level without saturating.
        assert!(after > 0.38, "post-training accuracy {after}");
    }

    #[test]
    fn ledger_meters_both_directions() {
        let (spec, init, parties) = setup(3, 6);
        let cohort: Vec<&Party> = parties.iter().collect();
        let ledger = CommLedger::new();
        let mut rng = StdRng::seed_from_u64(7);
        run_round(
            &spec,
            &init,
            &cohort,
            &RoundConfig::default(),
            Some(&ledger),
            &mut rng,
        );
        let totals = ledger.totals();
        assert_eq!(totals.messages, 6); // 3 downloads + 3 uploads
        assert!(totals.up_bytes > 0 && totals.down_bytes > 0);
    }

    #[test]
    fn scenario_round_without_axes_matches_plain_round() {
        let (spec, init, parties) = setup(4, 20);
        let cohort: Vec<&Party> = parties.iter().collect();
        let cfg = RoundConfig::default();

        let mut rng1 = StdRng::seed_from_u64(21);
        let plain = run_round(&spec, &init, &cohort, &cfg, None, &mut rng1);

        let mut rng2 = StdRng::seed_from_u64(21);
        let mut engine = ScenarioEngine::new(
            crate::scenario::ScenarioSpec::sync(0),
            &parties.iter().map(|p| p.id()).collect::<Vec<_>>(),
        );
        engine.begin_round();
        let scen = run_round_scenario(&spec, &init, &cohort, &cfg, &mut engine, 0, None, &mut rng2);
        assert_eq!(scen.aggregated(), 4);
        for (a, b) in plain.params.iter().zip(scen.params.iter()) {
            assert!((a - b).abs() < 1e-5, "sync no-axes scenario = FedAvg");
        }
    }

    #[test]
    fn scenario_round_with_zero_survivors_keeps_params() {
        // Dropout probability 1: every selected party crashes mid-round.
        let (spec, init, parties) = setup(3, 22);
        let cohort: Vec<&Party> = parties.iter().collect();
        let ids: Vec<PartyId> = parties.iter().map(|p| p.id()).collect();
        let scenario = crate::scenario::ScenarioSpec::sync(1)
            .with_churn(crate::scenario::ChurnSpec::dropout_only(1.0));
        let mut engine = ScenarioEngine::new(scenario, &ids);
        let ledger = CommLedger::new();
        let mut rng = StdRng::seed_from_u64(23);
        engine.begin_round();
        let out = run_round_scenario(
            &spec,
            &init,
            &cohort,
            &RoundConfig::default(),
            &mut engine,
            0,
            Some(&ledger),
            &mut rng,
        );
        assert_eq!(out.params, init, "no survivors → globals unchanged");
        assert_eq!(out.aggregated(), 0);
        assert_eq!(out.lost.len(), 3);
        assert!(out.mean_loss.is_none());
        assert_eq!(ledger.totals().aborted_messages, 3);

        // An entirely empty cohort (churn emptied the pool) is also legal.
        engine.begin_round();
        let out = run_round_scenario(
            &spec,
            &init,
            &[],
            &RoundConfig::default(),
            &mut engine,
            0,
            None,
            &mut rng,
        );
        assert_eq!(out.params, init);
        assert_eq!(out.aggregated(), 0);
    }

    /// The pre-refactor sync path, inlined: train the cohort from the raw
    /// globals, then plain sample-weighted FedAvg — no wire stage at all.
    fn uncoded_round(
        spec: &ArchSpec,
        init: &[f32],
        cohort: &[&Party],
        cfg: &RoundConfig,
        seed: u64,
    ) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let updates = train_cohort(spec, init, cohort, cfg, &mut rng);
        let weighted: Vec<(&[f32], usize)> = updates
            .iter()
            .filter(|u| u.num_samples > 0)
            .map(|u| (u.params.as_slice(), u.num_samples))
            .collect();
        fedavg(
            &weighted.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            &weighted.iter().map(|(_, n)| *n).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn dense_codec_round_is_bit_identical_to_uncoded_path() {
        let (spec, init, parties) = setup(4, 30);
        let cohort: Vec<&Party> = parties.iter().collect();
        let cfg = RoundConfig::default();
        let reference = uncoded_round(&spec, &init, &cohort, &cfg, 31);
        let mut rng = StdRng::seed_from_u64(31);
        let coded = run_round(&spec, &init, &cohort, &cfg, None, &mut rng);
        assert_eq!(coded.params, reference, "dense must be lossless");

        // Delta+dense pays a real roundtrip ((p − r) + r rounds in f32), so
        // it is near-lossless, not bit-identical.
        let cfg = RoundConfig {
            codec: CodecSpec::dense().with_delta(),
            ..RoundConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(31);
        let delta = run_round(&spec, &init, &cohort, &cfg, None, &mut rng);
        for (&a, &b) in reference.iter().zip(delta.params.iter()) {
            assert!(
                (a - b).abs() <= a.abs().max(1.0) * 1e-6,
                "delta+dense drifted: {a} vs {b}"
            );
        }
    }

    #[test]
    fn quantized_round_stays_numerically_pinned_to_dense() {
        let (spec, init, parties) = setup(4, 32);
        let cohort: Vec<&Party> = parties.iter().collect();
        let dense = {
            let mut rng = StdRng::seed_from_u64(33);
            run_round(
                &spec,
                &init,
                &cohort,
                &RoundConfig::default(),
                None,
                &mut rng,
            )
        };
        let rel_to = |coded: &[f32]| {
            let num: f32 = dense
                .params
                .iter()
                .zip(coded.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let den: f32 = dense.params.iter().map(|a| a * a).sum();
            (num / den.max(f32::MIN_POSITIVE)).sqrt()
        };
        for codec in [CodecSpec::quant8(256), CodecSpec::quant8(256).with_delta()] {
            let cfg = RoundConfig {
                codec,
                ..RoundConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(33);
            let coded = run_round(&spec, &init, &cohort, &cfg, None, &mut rng);
            let rel = rel_to(&coded.params);
            assert!(
                rel <= 1e-2,
                "{codec}: aggregated params drift {rel:.2e} from the dense reference"
            );
        }
        // Top-k is aggressive by design (only a quarter of the residual
        // ships), so it is not held to the int8 pinning bound — but it must
        // still move the globals toward the dense result, not away.
        let cfg = RoundConfig {
            codec: CodecSpec::topk(0.25).with_delta(),
            ..RoundConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(33);
        let coded = run_round(&spec, &init, &cohort, &cfg, None, &mut rng);
        assert!(
            rel_to(&coded.params) < rel_to(&init),
            "sparsified round must land closer to the dense result than the start"
        );
    }

    #[test]
    fn ledger_meters_exact_encoded_sizes_per_codec() {
        let (spec, init, parties) = setup(3, 34);
        let cohort: Vec<&Party> = parties.iter().collect();
        let n = init.len();
        for codec in [
            CodecSpec::dense(),
            CodecSpec::quant8(128),
            CodecSpec::topk(0.1).with_delta(),
        ] {
            let cfg = RoundConfig {
                codec,
                ..RoundConfig::default()
            };
            let ledger = CommLedger::new();
            let mut rng = StdRng::seed_from_u64(35);
            run_round(&spec, &init, &cohort, &cfg, Some(&ledger), &mut rng);
            let totals = ledger.totals();
            // Downlinks use the broadcast spec (sparse codecs fall back to
            // dense full-state frames when no delta reference exists).
            let down = codec.broadcast_spec(false).broadcast_len(n) as u64;
            assert_eq!(totals.down_bytes, 3 * down, "{codec}");
            assert_eq!(totals.up_bytes, 3 * codec.update_len(n) as u64, "{codec}");
        }
    }

    #[test]
    fn scenario_round_broadcasts_delta_against_previous_round() {
        // Two consecutive scenario rounds on one stream: the second round's
        // uplink/downlink still decode correctly when the codec is delta
        // against the engine's stored broadcast reference.
        let (spec, init, parties) = setup(3, 36);
        let cohort: Vec<&Party> = parties.iter().collect();
        let cfg = RoundConfig {
            codec: CodecSpec::quant8(256).with_delta(),
            ..RoundConfig::default()
        };
        let mut engine = ScenarioEngine::new(
            crate::scenario::ScenarioSpec::sync(0),
            &parties.iter().map(|p| p.id()).collect::<Vec<_>>(),
        );
        let ledger = CommLedger::new();
        let mut rng = StdRng::seed_from_u64(37);
        engine.begin_round();
        let r1 = run_round_scenario(
            &spec,
            &init,
            &cohort,
            &cfg,
            &mut engine,
            0,
            Some(&ledger),
            &mut rng,
        );
        assert!(engine.last_broadcast(0).is_some());
        engine.begin_round();
        let r2 = run_round_scenario(
            &spec,
            &r1.params,
            &cohort,
            &cfg,
            &mut engine,
            0,
            Some(&ledger),
            &mut rng,
        );
        assert_eq!(r2.aggregated(), 3);
        let totals = ledger.totals();
        let n = init.len();
        // Round 1's recipients hold no reference: their full-state frames
        // land on the distinct first-contact counters. Round 2 is regular.
        assert_eq!(
            totals.first_contact_down_bytes,
            3 * cfg.codec.first_contact_spec().broadcast_len(n) as u64
        );
        assert_eq!(totals.first_contact_messages, 3);
        assert_eq!(totals.down_bytes, 3 * cfg.codec.broadcast_len(n) as u64);
        assert_eq!(totals.up_bytes, 6 * cfg.codec.update_len(n) as u64);
    }

    #[test]
    fn empty_party_contributes_nothing() {
        let (spec, init, mut parties) = setup(2, 8);
        // Give party 0 no data.
        let shape = parties[0].train().shape();
        let classes = parties[0].train().num_classes();
        parties[0].advance_window(
            shiftex_data::Dataset::empty(classes, shape),
            shiftex_data::Dataset::empty(classes, shape),
        );
        let cohort: Vec<&Party> = parties.iter().collect();
        let mut rng = StdRng::seed_from_u64(9);
        let out = run_round(
            &spec,
            &init,
            &cohort,
            &RoundConfig::default(),
            None,
            &mut rng,
        );
        assert_eq!(out.updates[0].num_samples, 0);
        assert_eq!(out.updates.len(), 2);
    }
}
