//! Scenario-diverse federation: party churn, stragglers, and
//! staleness-aware asynchronous aggregation.
//!
//! The paper evaluates ShiftEx on a fixed synchronous protocol; real
//! deployments see parties joining and leaving, heterogeneous hardware that
//! misses round deadlines, and updates that arrive out of phase with the
//! round clock. This module composes those axes behind one [`ScenarioSpec`]:
//!
//! * **Churn** ([`ChurnSpec`] / [`ChurnSchedule`]) — join/leave schedules
//!   plus a seeded per-round Bernoulli dropout. Membership (join/leave)
//!   gates *selection*; transient dropout strikes *after* selection, so a
//!   dropped party has already trained and its upload is aborted mid-round
//!   (and metered as such on the [`CommLedger`]).
//! * **Stragglers** ([`StragglerSpec`]) — per-party delay distributions
//!   scored against a round deadline. Late updates are either dropped (an
//!   aborted upload) or deferred into the staleness buffer per
//!   [`LatePolicy`].
//! * **Asynchrony** ([`AsyncSpec`] via [`RoundMode::Async`]) — FedBuff-style
//!   buffered aggregation: updates accumulate until `min_buffer` of them
//!   have arrived, each weighted by `samples · (1 + staleness)^-α`, with
//!   updates staler than `max_staleness` discarded at flush time and the
//!   buffer average mixed into the global model at rate `server_lr`.
//!
//! All stochastic draws (dropout, join/leave placement, delays) are hash
//! -derived from the scenario seed rather than an RNG stream, so schedules
//! are reproducible across reruns regardless of call order, thread count or
//! how many other draws the simulation makes.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::codec::CodecSpec;
use crate::comm::CommLedger;
use crate::join::{JoinConfig, JoinSync};
use crate::party::PartyId;
use crate::update::ModelUpdate;

// ---------------------------------------------------------------------------
// Seeded hash draws.

/// SplitMix64 finaliser: one well-mixed 64-bit output per distinct input.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic draw keyed by `(seed, salt, a, b)`.
fn draw(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    splitmix(splitmix(splitmix(seed ^ salt).wrapping_add(a)).wrapping_add(b))
}

/// Uniform `[0, 1)` draw keyed by `(seed, salt, a, b)`. Shared with the
/// adaptive codec controller so every seeded decision in the runtime uses
/// the same hash-draw discipline.
pub(crate) fn draw_unit(seed: u64, salt: u64, a: u64, b: u64) -> f32 {
    // 24 high-quality bits are plenty for an f32 in [0, 1).
    (draw(seed, salt, a, b) >> 40) as f32 / (1u64 << 24) as f32
}

const SALT_DROPOUT: u64 = 0xd0;
const SALT_JOIN_IF: u64 = 0x10;
const SALT_JOIN_AT: u64 = 0x11;
const SALT_LEAVE_IF: u64 = 0x1e;
const SALT_LEAVE_AT: u64 = 0x1f;
const SALT_DELAY: u64 = 0xde;
const SALT_SLOW: u64 = 0x51;
const SALT_ATTACKER: u64 = 0xa7;
const SALT_ATTACK_ON: u64 = 0xa0;
const SALT_ATTACK_NOISE: u64 = 0xa5;

// ---------------------------------------------------------------------------
// Churn.

/// Parametric churn process: staggered joins, scheduled leaves, and
/// transient per-round dropout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Fraction of parties that come online late.
    pub join_fraction: f32,
    /// Late joiners are placed uniformly over rounds `1..=join_ramp_rounds`.
    pub join_ramp_rounds: usize,
    /// Fraction of parties that permanently leave the federation.
    pub leave_fraction: f32,
    /// Leavers are placed uniformly over rounds `leave_after..horizon`.
    pub leave_after: usize,
    /// Exclusive upper bound for leave placement (simulation length).
    pub horizon: usize,
    /// Per-party per-round Bernoulli probability of dropping mid-round.
    pub dropout: f32,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        Self {
            join_fraction: 0.0,
            join_ramp_rounds: 1,
            leave_fraction: 0.0,
            leave_after: 1,
            horizon: usize::MAX,
            dropout: 0.0,
        }
    }
}

impl ChurnSpec {
    /// A spec with only transient dropout (no joins or leaves).
    pub fn dropout_only(p: f32) -> Self {
        Self {
            dropout: p,
            ..Self::default()
        }
    }
}

/// Materialised membership schedule: per-party join/leave rounds plus the
/// seeded transient dropout draw.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSchedule {
    joins: BTreeMap<PartyId, usize>,
    leaves: BTreeMap<PartyId, usize>,
    dropout: f32,
    seed: u64,
    /// Mid-round dropouts pinned by an external observer — a networked
    /// coordinator records a worker's *real* mid-round death here so the
    /// engine's loss accounting (aborted uploads, join-sync chunk losses)
    /// resolves real churn exactly as it resolves simulated churn.
    pinned_dropouts: BTreeSet<(PartyId, usize)>,
}

impl ChurnSchedule {
    /// Everyone always a member; optional transient dropout.
    pub fn always_on(dropout: f32, seed: u64) -> Self {
        Self {
            joins: BTreeMap::new(),
            leaves: BTreeMap::new(),
            dropout,
            seed,
            pinned_dropouts: BTreeSet::new(),
        }
    }

    /// Realises a [`ChurnSpec`] over a concrete population. Placement is
    /// hash-derived from `seed`, so the same spec + seed + population gives
    /// the same schedule on every rerun.
    pub fn from_spec(spec: &ChurnSpec, parties: &[PartyId], seed: u64) -> Self {
        let mut joins = BTreeMap::new();
        let mut leaves = BTreeMap::new();
        for &p in parties {
            let pid = p.0 as u64;
            if spec.join_fraction > 0.0
                && draw_unit(seed, SALT_JOIN_IF, pid, 0) < spec.join_fraction
            {
                let ramp = spec.join_ramp_rounds.max(1) as u64;
                let at = 1 + (draw(seed, SALT_JOIN_AT, pid, 0) % ramp) as usize;
                joins.insert(p, at);
            }
            if spec.leave_fraction > 0.0
                && draw_unit(seed, SALT_LEAVE_IF, pid, 0) < spec.leave_fraction
            {
                let span = spec.horizon.saturating_sub(spec.leave_after).max(1) as u64;
                let at = spec.leave_after + (draw(seed, SALT_LEAVE_AT, pid, 0) % span) as usize;
                leaves.insert(p, at);
            }
        }
        Self {
            joins,
            leaves,
            dropout: spec.dropout,
            seed,
            pinned_dropouts: BTreeSet::new(),
        }
    }

    /// Pins an explicit join round for `party` (overrides the spec draw).
    pub fn with_join(mut self, party: PartyId, round: usize) -> Self {
        self.joins.insert(party, round);
        self
    }

    /// Pins an explicit leave round for `party` (overrides the spec draw).
    pub fn with_leave(mut self, party: PartyId, round: usize) -> Self {
        self.leaves.insert(party, round);
        self
    }

    /// Pins a leave round in place (no rebuild): a networked coordinator
    /// observed `party`'s worker disconnect, so the party is no longer
    /// enrolled from `round` on. Real churn entering the same membership
    /// gate as the spec-drawn schedule.
    pub fn pin_leave(&mut self, party: PartyId, round: usize) {
        self.leaves.insert(party, round);
    }

    /// Pins a mid-round dropout in place: `party`'s upload (and any join
    /// frames in flight to it) at `round` was really lost — its socket
    /// died or stalled past the round deadline. [`Self::drops_out`]
    /// reports pinned losses exactly like seeded Bernoulli ones, so the
    /// engine's abort metering and join-loss refunds apply unchanged.
    pub fn pin_dropout(&mut self, party: PartyId, round: usize) {
        self.pinned_dropouts.insert((party, round));
    }

    /// Is `party` enrolled at `round` (joined and not yet left)?
    pub fn is_member(&self, party: PartyId, round: usize) -> bool {
        let joined = self.joins.get(&party).is_none_or(|&j| round >= j);
        let left = self.leaves.get(&party).is_some_and(|&l| round >= l);
        joined && !left
    }

    /// Does `party` drop out mid-round at `round` — either by the seeded
    /// Bernoulli draw or because real churn was pinned
    /// ([`Self::pin_dropout`])?
    pub fn drops_out(&self, party: PartyId, round: usize) -> bool {
        self.pinned_dropouts.contains(&(party, round))
            || (self.dropout > 0.0
                && draw_unit(self.seed, SALT_DROPOUT, party.0 as u64, round as u64) < self.dropout)
    }

    /// A member that does not drop out this round.
    pub fn is_live(&self, party: PartyId, round: usize) -> bool {
        self.is_member(party, round) && !self.drops_out(party, round)
    }

    /// Filters `pool` down to enrolled members at `round`.
    pub fn members(&self, pool: &[PartyId], round: usize) -> Vec<PartyId> {
        pool.iter()
            .copied()
            .filter(|&p| self.is_member(p, round))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Stragglers.

/// Per-party simulated update delay, in round-lengths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayDist {
    /// Every update takes exactly this long.
    Constant(f32),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Exponential with the given mean (heavy straggler tail).
    Exponential {
        /// Mean delay.
        mean: f32,
    },
}

impl DelayDist {
    /// Inverse-CDF sample from a uniform `[0, 1)` draw.
    fn sample(&self, u: f32) -> f32 {
        match *self {
            DelayDist::Constant(d) => d,
            DelayDist::Uniform { lo, hi } => lo + (hi - lo).max(0.0) * u,
            DelayDist::Exponential { mean } => -mean * (1.0 - u).max(f32::MIN_POSITIVE).ln(),
        }
    }
}

/// What happens to an update that misses the round deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatePolicy {
    /// The upload is aborted and the work wasted.
    Drop,
    /// The update arrives in a later round and is staleness-discounted.
    Defer,
}

/// Straggler model: delay distribution, systematic slow parties, and a
/// round deadline with a late policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerSpec {
    /// Base delay distribution shared by all parties.
    pub dist: DelayDist,
    /// Fraction of parties that are systematically slow.
    pub slow_fraction: f32,
    /// Delay multiplier applied to slow parties.
    pub slow_factor: f32,
    /// Round deadline, in the same units as [`StragglerSpec::dist`].
    pub deadline: f32,
    /// Fate of updates that miss the deadline.
    pub late: LatePolicy,
}

impl StragglerSpec {
    /// Uniform delays on `[0, 2·mean)` with a deadline and late policy.
    pub fn uniform(mean: f32, deadline: f32, late: LatePolicy) -> Self {
        Self {
            dist: DelayDist::Uniform {
                lo: 0.0,
                hi: 2.0 * mean,
            },
            slow_fraction: 0.0,
            slow_factor: 1.0,
            deadline,
            late,
        }
    }

    /// Simulated delay for `party`'s update born at `round`.
    pub fn delay(&self, seed: u64, round: usize, party: PartyId) -> f32 {
        let u = draw_unit(seed, SALT_DELAY, party.0 as u64, round as u64);
        let slow = self.slow_fraction > 0.0
            && draw_unit(seed, SALT_SLOW, party.0 as u64, 0) < self.slow_fraction;
        self.dist.sample(u) * if slow { self.slow_factor.max(1.0) } else { 1.0 }
    }

    /// How many rounds after its birth round the update arrives
    /// (0 = on time, i.e. within the deadline).
    pub fn arrival_offset(&self, seed: u64, round: usize, party: PartyId) -> usize {
        let delay = self.delay(seed, round, party);
        if self.deadline <= 0.0 {
            return 0;
        }
        ((delay / self.deadline).ceil() as usize).saturating_sub(1)
    }
}

// ---------------------------------------------------------------------------
// Asynchrony.

/// Staleness-aware buffered (FedBuff-style) aggregation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncSpec {
    /// Minimum buffered updates before an aggregation fires.
    pub min_buffer: usize,
    /// Staleness discount exponent α: weight ∝ `samples · (1+s)^-α`.
    pub staleness_alpha: f32,
    /// Updates staler than this many rounds are discarded at flush time.
    pub max_staleness: usize,
    /// Server mixing rate η: `params ← (1-η)·global + η·buffer_average`.
    pub server_lr: f32,
}

impl Default for AsyncSpec {
    fn default() -> Self {
        Self {
            min_buffer: 1,
            staleness_alpha: 0.5,
            max_staleness: 4,
            server_lr: 1.0,
        }
    }
}

/// Synchronous (classic FedAvg round clock) or asynchronous (buffered)
/// aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoundMode {
    /// Aggregate whatever arrived by each round's deadline.
    Sync,
    /// Buffered staleness-aware aggregation.
    Async(AsyncSpec),
}

// ---------------------------------------------------------------------------
// Byzantine / faulty parties.

/// What a hostile party does to its contribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Reflect the trained parameters through the broadcast reference:
    /// `p ← 2·ref − p`, i.e. the exact negation of the party's real
    /// gradient step — the classic model-poisoning primitive.
    SignFlip,
    /// Gradient inflation: scale the party's step away from the reference
    /// by `factor` and add seeded noise of the same magnitude, so the
    /// update is both oversized and misdirected.
    ScaledNoise {
        /// Step-inflation multiplier (honest = 1).
        factor: f32,
    },
    /// Data poisoning: the party trains honestly but on flipped labels
    /// (`l ← C−1−l`), producing a plausible-looking but harmful update.
    /// Applied at local-training time by the round driver; the wire layer
    /// passes the update through untouched.
    LabelFlip,
}

/// When an attacker actually attacks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackSchedule {
    /// Every round the attacker participates.
    Always,
    /// Seeded per-round Bernoulli: attack with probability `prob`, behave
    /// honestly otherwise — evades naive per-round anomaly thresholds.
    Intermittent {
        /// Per-round attack probability.
        prob: f32,
    },
    /// Sleeper agent: honest until `from_round`, hostile from then on —
    /// builds up selector reputation before striking.
    Sleeper {
        /// First hostile round (1-based, inclusive).
        from_round: usize,
    },
}

/// The adversary axis of a scenario: a seeded fraction of the population is
/// assigned an attacker role, activated per round by a schedule. Assignment
/// and activation are hash-derived from the scenario seed exactly like
/// churn and straggler fates, so hostile runs are rerun-deterministic and
/// compose with every other axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// What attackers do.
    pub kind: AttackKind,
    /// Fraction of the population assigned the attacker role.
    pub fraction: f32,
    /// When assigned attackers are actually hostile.
    pub schedule: AttackSchedule,
}

impl AttackSpec {
    /// An always-on attack over `fraction` of the population.
    pub fn new(kind: AttackKind, fraction: f32) -> Self {
        Self {
            kind,
            fraction,
            schedule: AttackSchedule::Always,
        }
    }

    /// Swaps in an activation schedule.
    pub fn with_schedule(mut self, schedule: AttackSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Is `party` assigned the attacker role under `seed`?
    pub fn is_attacker(&self, seed: u64, party: PartyId) -> bool {
        self.fraction > 0.0 && draw_unit(seed, SALT_ATTACKER, party.0 as u64, 0) < self.fraction
    }

    /// Is `party` actively hostile at `round`?
    pub fn active(&self, seed: u64, party: PartyId, round: usize) -> bool {
        self.is_attacker(seed, party)
            && match self.schedule {
                AttackSchedule::Always => true,
                AttackSchedule::Intermittent { prob } => {
                    draw_unit(seed, SALT_ATTACK_ON, party.0 as u64, round as u64) < prob
                }
                AttackSchedule::Sleeper { from_round } => round >= from_round,
            }
    }

    /// Applies the wire-level corruption (sign-flip, scaled-noise) to an
    /// update trained against `reference`. [`AttackKind::LabelFlip`] is a
    /// training-time attack and leaves the upload untouched here.
    fn corrupt(&self, seed: u64, round: usize, reference: &[f32], update: &mut ModelUpdate) {
        let refc = |i: usize| reference.get(i).copied().unwrap_or(0.0);
        match self.kind {
            AttackKind::SignFlip => {
                for (i, p) in update.params.iter_mut().enumerate() {
                    *p = 2.0 * refc(i) - *p;
                }
            }
            AttackKind::ScaledNoise { factor } => {
                let n = update.params.len().max(1);
                let rms = (update
                    .params
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        let d = p - refc(i);
                        d * d
                    })
                    .sum::<f32>()
                    / n as f32)
                    .sqrt();
                let pid = update.party.0 as u64;
                for (i, p) in update.params.iter_mut().enumerate() {
                    let key = ((round as u64) << 32) | i as u64;
                    let noise = 2.0 * draw_unit(seed, SALT_ATTACK_NOISE, pid, key) - 1.0;
                    *p = refc(i) + factor * (*p - refc(i)) + factor * rms * noise;
                }
            }
            AttackKind::LabelFlip => {}
        }
    }
}

// ---------------------------------------------------------------------------
// The composed scenario.

/// A federation scenario: churn × stragglers × round mode × attacks, all
/// seeded — the four orthogonal axes compose over any algorithm.
///
/// ```
/// use shiftex_fl::{
///     AttackKind, AttackSpec, ChurnSpec, LatePolicy, ScenarioSpec, StragglerSpec,
/// };
///
/// let spec = ScenarioSpec::sync(7)
///     .with_churn(ChurnSpec::dropout_only(0.2))
///     .with_stragglers(StragglerSpec::uniform(0.8, 1.0, LatePolicy::Defer))
///     .with_attack(AttackSpec::new(AttackKind::SignFlip, 0.1));
/// // Sync rounds fold deferred updates at harmonic staleness discount...
/// assert_eq!(spec.staleness_weight(0), 1.0);
/// assert_eq!(spec.staleness_weight(3), 0.25);
/// // ...and every per-party fate is a pure function of the seed.
/// let rerun = ScenarioSpec::sync(7).with_churn(ChurnSpec::dropout_only(0.2));
/// assert_eq!(spec.churn, rerun.churn);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Churn process, if any.
    pub churn: Option<ChurnSpec>,
    /// Straggler model, if any.
    pub stragglers: Option<StragglerSpec>,
    /// Aggregation discipline.
    pub mode: RoundMode,
    /// Byzantine adversary, if any (absent in serialized specs from before
    /// the adversary axis — the shim decodes a missing key as `None`).
    pub attack: Option<AttackSpec>,
    /// Seed for every hash-derived draw in this scenario.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The paper's baseline: synchronous, no churn, no stragglers.
    pub fn sync(seed: u64) -> Self {
        Self {
            churn: None,
            stragglers: None,
            mode: RoundMode::Sync,
            attack: None,
            seed,
        }
    }

    /// Adds a churn process.
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Adds a straggler model.
    pub fn with_stragglers(mut self, stragglers: StragglerSpec) -> Self {
        self.stragglers = Some(stragglers);
        self
    }

    /// Switches to asynchronous buffered aggregation.
    pub fn with_async(mut self, spec: AsyncSpec) -> Self {
        self.mode = RoundMode::Async(spec);
        self
    }

    /// Adds a Byzantine adversary.
    pub fn with_attack(mut self, attack: AttackSpec) -> Self {
        self.attack = Some(attack);
        self
    }

    /// Staleness discount weight for an update `staleness` rounds old.
    ///
    /// Sync scenarios use α = 1 for deferred updates; async scenarios use
    /// their configured exponent.
    pub fn staleness_weight(&self, staleness: usize) -> f32 {
        let alpha = match self.mode {
            RoundMode::Sync => 1.0,
            RoundMode::Async(a) => a.staleness_alpha,
        };
        (1.0 + staleness as f32).powf(-alpha)
    }

    /// Maximum tolerated staleness before an arrived update is discarded.
    pub fn max_staleness(&self) -> usize {
        match self.mode {
            RoundMode::Sync => usize::MAX,
            RoundMode::Async(a) => a.max_staleness,
        }
    }
}

// ---------------------------------------------------------------------------
// Participation accounting.

/// Aggregate participation/liveness counters for one scenario run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParticipationStats {
    /// Cohort slots filled (parties that started local training).
    pub selected: u64,
    /// Updates folded into an aggregation.
    pub delivered: u64,
    /// Updates aborted because the party dropped out mid-round.
    pub dropped_churn: u64,
    /// Updates aborted for missing the deadline under [`LatePolicy::Drop`].
    pub dropped_late: u64,
    /// Updates deferred past their birth round under [`LatePolicy::Defer`].
    pub deferred: u64,
    /// Arrived updates discarded for exceeding the staleness bound.
    pub stale_dropped: u64,
    /// Aggregations performed (buffer flushes that folded ≥ 1 update).
    pub aggregations: u64,
}

impl ParticipationStats {
    /// Component-wise difference (`self` − `earlier`): per-round deltas from
    /// two cumulative snapshots.
    pub fn minus(&self, earlier: &ParticipationStats) -> ParticipationStats {
        ParticipationStats {
            selected: self.selected - earlier.selected,
            delivered: self.delivered - earlier.delivered,
            dropped_churn: self.dropped_churn - earlier.dropped_churn,
            dropped_late: self.dropped_late - earlier.dropped_late,
            deferred: self.deferred - earlier.deferred,
            stale_dropped: self.stale_dropped - earlier.stale_dropped,
            aggregations: self.aggregations - earlier.aggregations,
        }
    }
}

/// An update ready for aggregation, with its staleness discount applied.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedUpdate {
    /// The party's update.
    pub update: ModelUpdate,
    /// Rounds elapsed since the update was trained.
    pub staleness: usize,
    /// Aggregation weight (`samples · staleness discount`).
    pub weight: f32,
}

/// Fate of one round's fresh updates on one stream, plus whatever matured
/// from the buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundDelivery {
    /// Updates to aggregate now, staleness-weighted.
    pub ready: Vec<WeightedUpdate>,
    /// Parties whose uploads were aborted this round (mid-round dropout or
    /// late-drop) — feedback for availability-aware selectors.
    pub lost: Vec<PartyId>,
    /// Parties whose updates were deferred to a later round.
    pub deferred: Vec<PartyId>,
}

/// What one [`ScenarioEngine::broadcast`] call delivered.
///
/// Veterans of the stream decode the regular (possibly delta-coded) frame;
/// first-contact recipients decode the self-contained full-state frame
/// they were metered for. [`state_for`](Self::state_for) hands each party
/// the state it actually received.
#[derive(Debug, Clone)]
pub struct BroadcastDelivery {
    /// Decoded regular frame — also the stream's next delta reference.
    pub decoded: Vec<f32>,
    /// Decoded self-contained first-contact frame, when any recipient saw
    /// the stream for the first time *and* it differs from the regular
    /// frame (`None` otherwise).
    pub first_contact: Option<Vec<f32>>,
    /// Recipients that received the first-contact frame this round.
    pub fresh: BTreeSet<PartyId>,
    /// Per-party decodes on the chunked join path
    /// ([`ScenarioEngine::enable_join_chunking`]): a resuming party trains
    /// from the snapshot taken when *its* sync began, which can differ per
    /// party. Empty when join chunking is off.
    pub join_states: BTreeMap<PartyId, Vec<f32>>,
}

impl BroadcastDelivery {
    /// The decoded global state `party` trains from this round.
    pub fn state_for(&self, party: PartyId) -> &[f32] {
        if let Some(state) = self.join_states.get(&party) {
            return state;
        }
        match &self.first_contact {
            Some(fc) if self.fresh.contains(&party) => fc,
            _ => &self.decoded,
        }
    }
}

// ---------------------------------------------------------------------------
// Engine.

#[derive(Debug, Clone)]
struct PendingUpdate {
    update: ModelUpdate,
    born: usize,
    arrives: usize,
}

/// Stateful executor of a [`ScenarioSpec`]: owns the round clock, the churn
/// schedule, and one staleness buffer per update stream (stream 0 for a
/// single global model; one stream per expert for mixture strategies).
#[derive(Debug)]
pub struct ScenarioEngine {
    spec: ScenarioSpec,
    churn: ChurnSchedule,
    buffers: BTreeMap<usize, Vec<PendingUpdate>>,
    /// Last decoded broadcast per stream: the reference both endpoints hold
    /// for delta-coded downlinks.
    last_broadcast: BTreeMap<usize, Vec<f32>>,
    /// Parties that have received at least one broadcast per stream. A
    /// recipient outside this set is a first contact: it gets a
    /// self-contained full-state frame, metered distinctly.
    contacted: BTreeMap<usize, std::collections::BTreeSet<PartyId>>,
    /// Per-(stream, party) error-feedback accumulators for codecs with
    /// [`CodecSpec::error_feedback`] set.
    ef_residuals: BTreeMap<(usize, PartyId), Vec<f32>>,
    /// Chunked-join configuration; `None` keeps the monolithic
    /// first-contact frame (the byte-pinned legacy path).
    join: Option<JoinConfig>,
    /// In-progress chunked first-contact syncs per `(stream, party)`.
    /// Entries are dropped once the sync completes and survives its round.
    join_syncs: BTreeMap<(usize, PartyId), JoinSync>,
    /// Join deliveries awaiting their round's churn verdict, per stream:
    /// `(monolithic frame bytes billed, round shipped)` — bytes are 0 on
    /// the chunked path, where the `JoinSync` itself tracks the in-flight
    /// chunks. Resolved — acked or refunded as lost — when the stream's
    /// `collect` runs.
    pending_joins: BTreeMap<usize, BTreeMap<PartyId, (u64, usize)>>,
    round: usize,
    stats: ParticipationStats,
}

impl ScenarioEngine {
    /// Builds the engine, realising the churn schedule over `parties`.
    pub fn new(spec: ScenarioSpec, parties: &[PartyId]) -> Self {
        let churn = match &spec.churn {
            Some(c) => ChurnSchedule::from_spec(c, parties, spec.seed),
            None => ChurnSchedule::always_on(0.0, spec.seed),
        };
        Self {
            spec,
            churn,
            buffers: BTreeMap::new(),
            last_broadcast: BTreeMap::new(),
            contacted: BTreeMap::new(),
            ef_residuals: BTreeMap::new(),
            join: None,
            join_syncs: BTreeMap::new(),
            pending_joins: BTreeMap::new(),
            round: 0,
            stats: ParticipationStats::default(),
        }
    }

    /// Switches first-contact sync onto the chunked, resumable
    /// [`JoinSync`] path: joiners receive the full-state frame encoded
    /// under `config.codec` in bounded-size chunks, metered on the
    /// ledger's `join_chunk_*` counters; a sync interrupted by mid-round
    /// churn resumes at the next contact, re-shipping only the lost
    /// chunks. Off by default — the monolithic path stays byte-identical.
    pub fn enable_join_chunking(&mut self, config: JoinConfig) {
        self.join = Some(config);
    }

    /// The chunked-join configuration, if enabled.
    pub fn join_config(&self) -> Option<&JoinConfig> {
        self.join.as_ref()
    }

    /// The in-progress chunked join sync for `(key, party)`, if any. A
    /// networked coordinator reads the in-flight chunk payloads from here
    /// right after [`ScenarioEngine::broadcast`] put them in flight — the
    /// bytes it must actually write to the party's socket.
    pub fn join_sync(&self, key: usize, party: PartyId) -> Option<&JoinSync> {
        self.join_syncs.get(&(key, party))
    }

    /// Progress of `party`'s chunked first-contact sync on stream `key`:
    /// `(delivered, total)` chunks, or `None` when no sync is in flight.
    pub fn join_progress(&self, key: usize, party: PartyId) -> Option<(usize, usize)> {
        self.join_syncs
            .get(&(key, party))
            .map(|s| (s.delivered_chunks(), s.num_chunks()))
    }

    /// Mean absolute error-feedback residual accumulated on stream `key`
    /// across all parties — the adaptive codec controller's signal for how
    /// much mass lossy uploads are still withholding. 0 when no EF codec
    /// has run on the stream.
    pub fn ef_magnitude(&self, key: usize) -> f32 {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for ((k, _), acc) in &self.ef_residuals {
            if *k == key {
                sum += acc.iter().map(|v| v.abs() as f64).sum::<f64>();
                n += acc.len();
            }
        }
        if n == 0 {
            0.0
        } else {
            (sum / n as f64) as f32
        }
    }

    /// The scenario being executed.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The realised churn schedule.
    pub fn churn(&self) -> &ChurnSchedule {
        &self.churn
    }

    /// Mutable access to the churn schedule (pin explicit join/leave rounds
    /// on top of the spec-derived draws).
    pub fn churn_mut(&mut self) -> &mut ChurnSchedule {
        &mut self.churn
    }

    /// Current round (0 before the first [`ScenarioEngine::begin_round`]).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Cumulative participation counters.
    pub fn stats(&self) -> ParticipationStats {
        self.stats
    }

    /// Updates currently waiting in stream `key`'s buffer.
    pub fn buffered(&self, key: usize) -> usize {
        self.buffers.get(&key).map_or(0, Vec::len)
    }

    /// Advances the round clock; returns the new round index (1-based).
    pub fn begin_round(&mut self) -> usize {
        self.round += 1;
        self.round
    }

    /// Enrolled members of `pool` this round (join/leave only; transient
    /// dropout strikes later, mid-round).
    pub fn live_members(&self, pool: &[PartyId]) -> Vec<PartyId> {
        self.churn.members(pool, self.round)
    }

    /// Broadcasts the global model on stream `key` to `recipients`: encodes
    /// it under `codec` against the stream's previous broadcast (the delta
    /// reference both endpoints hold), meters one encoded frame per
    /// recipient, and returns the **decoded** states the parties train
    /// from ([`BroadcastDelivery::state_for`]). With no recipients nothing
    /// is sent — the globals pass through unencoded and the stored
    /// reference stays put.
    ///
    /// Recipients seeing the stream for the first time (round-1 cohorts,
    /// new joiners) hold no reference, so they receive a self-contained
    /// full-state frame ([`CodecSpec::first_contact_spec`]) instead — both
    /// metered on the ledger's distinct `first_contact_*` counters *and*
    /// decoded separately, so what a joiner trains from matches the frame
    /// it was billed for.
    pub fn broadcast(
        &mut self,
        key: usize,
        global: &[f32],
        codec: &CodecSpec,
        recipients: &[PartyId],
        ledger: Option<&CommLedger>,
    ) -> BroadcastDelivery {
        if recipients.is_empty() {
            return BroadcastDelivery {
                decoded: global.to_vec(),
                first_contact: None,
                fresh: BTreeSet::new(),
                join_states: BTreeMap::new(),
            };
        }
        let reference = self.last_broadcast.get(&key).map_or(&[][..], Vec::as_slice);
        // First broadcast on a stream has no delta reference: sparsified
        // downlinks fall back to a dense full-state frame (see
        // [`CodecSpec::broadcast_spec`]).
        let bspec = codec.broadcast_spec(!reference.is_empty());
        let decoded = bspec.transport(global.to_vec(), reference);
        let contacted = self.contacted.entry(key).or_default();
        let fresh: BTreeSet<PartyId> = recipients
            .iter()
            .copied()
            .filter(|p| !contacted.contains(p))
            .collect();
        let mut join_states = BTreeMap::new();
        if let Some(join) = self.join {
            // Chunked path: each fresh recipient has (or starts) a
            // per-party sync; every chunk it is still owed ships now,
            // metered exactly. The party trains from its own snapshot
            // decode; it is only marked contacted once the sync completes
            // *and* survives the round (see `collect`).
            for &p in &fresh {
                let sync = self
                    .join_syncs
                    .entry((key, p))
                    .or_insert_with(|| JoinSync::begin(global, &join));
                let (bytes, chunks) = sync.ship_missing();
                if let Some(l) = ledger {
                    l.record_join_chunks(bytes, chunks);
                }
                if let Some(state) = sync.decoded() {
                    join_states.insert(p, state);
                }
                self.pending_joins
                    .entry(key)
                    .or_default()
                    .insert(p, (0, self.round));
            }
            if let Some(l) = ledger {
                let frame = bspec.broadcast_len(global.len());
                for p in recipients {
                    if !fresh.contains(p) {
                        l.record_download(frame);
                    }
                }
            }
            self.last_broadcast.insert(key, decoded.clone());
            return BroadcastDelivery {
                decoded,
                first_contact: None,
                fresh,
                join_states,
            };
        }
        let fc_spec = codec.first_contact_spec();
        // When the specs coincide neither stage is delta-coded, so both
        // frames decode identically — no separate first-contact state.
        let first_contact = if fresh.is_empty() || fc_spec == bspec {
            None
        } else {
            Some(fc_spec.transport(global.to_vec(), &[]))
        };
        let first_frame = fc_spec.broadcast_len(global.len());
        if let Some(l) = ledger {
            let frame = bspec.broadcast_len(global.len());
            for p in recipients {
                if fresh.contains(p) {
                    l.record_first_contact_download(first_frame);
                } else {
                    l.record_download(frame);
                }
            }
        }
        // A fresh recipient's monolithic frame is provisional until the
        // round's churn verdict: if the party crashes mid-round the frame
        // is lost with it, the spend is overlaid as lost, and the party is
        // un-marked so the sync restarts honestly on its next contact.
        for &p in &fresh {
            self.pending_joins
                .entry(key)
                .or_default()
                .insert(p, (first_frame as u64, self.round));
        }
        contacted.extend(recipients.iter().copied());
        self.last_broadcast.insert(key, decoded.clone());
        BroadcastDelivery {
            decoded,
            first_contact,
            fresh,
            join_states,
        }
    }

    /// The last decoded broadcast sent on stream `key`, if any.
    pub fn last_broadcast(&self, key: usize) -> Option<&[f32]> {
        self.last_broadcast.get(&key).map(Vec::as_slice)
    }

    /// Is `party` assigned the attacker role by this scenario's adversary?
    pub fn is_attacker(&self, party: PartyId) -> bool {
        self.spec
            .attack
            .as_ref()
            .is_some_and(|a| a.is_attacker(self.spec.seed, party))
    }

    /// Is `party` actively hostile this round (role assigned *and* the
    /// activation schedule fires)?
    pub fn attack_active(&self, party: PartyId) -> bool {
        self.spec
            .attack
            .as_ref()
            .is_some_and(|a| a.active(self.spec.seed, party, self.round))
    }

    /// Does `party` poison its training labels this round? Label-flip is a
    /// training-time attack, so the round driver consults this *before*
    /// local training rather than at upload time.
    pub fn poisons_labels(&self, party: PartyId) -> bool {
        matches!(
            self.spec.attack.map(|a| a.kind),
            Some(AttackKind::LabelFlip)
        ) && self.attack_active(party)
    }

    /// Ships one upload across the wire and back under `codec`, applying
    /// party-side error feedback when the spec asks for it: the engine owns
    /// one residual accumulator per `(stream, party)`, so coordinates a
    /// lossy upload drops are carried into the party's next upload instead
    /// of being lost. Without [`CodecSpec::error_feedback`] this is exactly
    /// [`ModelUpdate::transport`].
    ///
    /// This is also where wire-level attacks strike: an actively hostile
    /// party corrupts its update *before* encoding, so sign-flipped and
    /// inflated payloads ride the same codec (and are metered at the same
    /// exact encoded bytes) as honest ones.
    pub fn transport_upload(
        &mut self,
        key: usize,
        mut update: ModelUpdate,
        codec: &CodecSpec,
        reference: &[f32],
    ) -> ModelUpdate {
        if let Some(attack) = &self.spec.attack {
            if attack.active(self.spec.seed, update.party, self.round) {
                attack.corrupt(self.spec.seed, self.round, reference, &mut update);
            }
        }
        if !codec.error_feedback {
            return update.transport(codec, reference);
        }
        let acc = self.ef_residuals.entry((key, update.party)).or_default();
        update.transport_with_feedback(codec, reference, acc)
    }

    /// Applies mid-round dropout and straggler fates to this round's fresh
    /// `updates` on stream `key`, then flushes whatever the round mode says
    /// is ready to aggregate.
    ///
    /// Every upload is metered at its exact `codec` wire size: aborted
    /// uploads (dropout, late-drop) immediately, successful arrivals when
    /// they are flushed.
    pub fn collect(
        &mut self,
        key: usize,
        updates: Vec<ModelUpdate>,
        codec: &CodecSpec,
        ledger: Option<&CommLedger>,
    ) -> RoundDelivery {
        let mut delivery = RoundDelivery::default();
        let round = self.round;
        let seed = self.spec.seed;
        self.resolve_pending_joins(key, ledger);
        self.stats.selected += updates.len() as u64;
        // Owned for the duration of the round so lost uploads can refund
        // the error-feedback accumulators without aliasing `self`.
        let mut buffer = self.buffers.remove(&key).unwrap_or_default();

        for update in updates {
            let party = update.party;
            // Transient churn: the party crashed mid-round; its upload is
            // aborted (and the wasted bytes metered).
            if self.churn.drops_out(party, round) {
                if let Some(l) = ledger {
                    l.record_aborted_upload(update.encoded_len(codec));
                }
                self.stats.dropped_churn += 1;
                self.refund_feedback(key, codec, &update);
                delivery.lost.push(party);
                continue;
            }
            let offset = self
                .spec
                .stragglers
                .as_ref()
                .map_or(0, |s| s.arrival_offset(seed, round, party));
            if offset == 0 {
                buffer.push(PendingUpdate {
                    update,
                    born: round,
                    arrives: round,
                });
                continue;
            }
            match self.spec.stragglers.as_ref().map(|s| s.late) {
                Some(LatePolicy::Drop) => {
                    if let Some(l) = ledger {
                        l.record_aborted_upload(update.encoded_len(codec));
                    }
                    self.stats.dropped_late += 1;
                    self.refund_feedback(key, codec, &update);
                    delivery.lost.push(party);
                }
                _ => {
                    self.stats.deferred += 1;
                    delivery.deferred.push(party);
                    buffer.push(PendingUpdate {
                        update,
                        born: round,
                        arrives: round + offset,
                    });
                }
            }
        }

        // Flush: matured updates leave the buffer when the round mode allows.
        let matured = buffer.iter().filter(|p| p.arrives <= round).count();
        let flush = match self.spec.mode {
            RoundMode::Sync => matured > 0,
            RoundMode::Async(a) => matured >= a.min_buffer.max(1),
        };
        if flush {
            let mut kept = Vec::with_capacity(buffer.len() - matured);
            for pending in buffer.drain(..) {
                if pending.arrives > round {
                    kept.push(pending);
                    continue;
                }
                let staleness = round - pending.born;
                if staleness > self.spec.max_staleness() {
                    // Arrived, but too old to be useful: the upload happened
                    // (meter it) yet the work is discarded.
                    if let Some(l) = ledger {
                        l.record_upload(pending.update.encoded_len(codec));
                    }
                    self.stats.stale_dropped += 1;
                    self.refund_feedback(key, codec, &pending.update);
                    continue;
                }
                if let Some(l) = ledger {
                    l.record_upload(pending.update.encoded_len(codec));
                }
                let weight =
                    pending.update.num_samples as f32 * self.spec.staleness_weight(staleness);
                delivery.ready.push(WeightedUpdate {
                    update: pending.update,
                    staleness,
                    weight,
                });
            }
            buffer = kept;
        }
        self.buffers.insert(key, buffer);

        self.stats.delivered += delivery.ready.len() as u64;
        if !delivery.ready.is_empty() {
            self.stats.aggregations += 1;
        }
        delivery
    }

    /// Resolves stream `key`'s join deliveries against their round's churn
    /// verdict — the downlink mirror of the lost-upload refund rules. A
    /// joiner that crashed mid-round never banked the frame it was billed
    /// for: on the monolithic path the spend is overlaid as lost
    /// (`join_lost_*`) and the party un-marked from `contacted`, so its
    /// next contact re-ships honestly instead of pretending it holds a
    /// reference; on the chunked path only the in-flight chunks are lost
    /// and the sync resumes where it left off. Survivors bank their
    /// chunks, and a completed chunked sync promotes the party to
    /// contacted.
    fn resolve_pending_joins(&mut self, key: usize, ledger: Option<&CommLedger>) {
        let Some(pending) = self.pending_joins.remove(&key) else {
            return;
        };
        for (party, (bytes, born)) in pending {
            let dropped = self.churn.drops_out(party, born);
            if self.join.is_some() {
                let Some(sync) = self.join_syncs.get_mut(&(key, party)) else {
                    continue;
                };
                if dropped {
                    let (lost, chunks) = sync.lose_in_flight();
                    if let Some(l) = ledger {
                        l.record_join_loss(lost, chunks);
                    }
                } else {
                    sync.ack_in_flight();
                    if sync.is_complete() {
                        self.contacted.entry(key).or_default().insert(party);
                        self.join_syncs.remove(&(key, party));
                    }
                }
            } else if dropped {
                if let Some(l) = ledger {
                    l.record_join_loss(bytes as usize, 1);
                }
                self.contacted.entry(key).or_default().remove(&party);
            }
        }
    }

    /// A lossy upload left the party but never reached an aggregation
    /// (mid-round dropout, late-drop, or a stale discard): put the *change*
    /// it carried — its decoded params minus the stream's broadcast
    /// reference, which is what actually crossed the wire under delta
    /// coding — back into the party's error-feedback accumulator, which at
    /// this point holds only the encode residual. Refunding the full
    /// decoded vector instead would inflate the next compensated upload by
    /// an entire model copy. For updates discarded as stale rounds after
    /// they were encoded, the *current* reference stands in for the one at
    /// encode time (both are delta-scale apart). No-op without
    /// [`CodecSpec::error_feedback`] or before any broadcast.
    fn refund_feedback(&mut self, key: usize, codec: &CodecSpec, update: &ModelUpdate) {
        if !codec.error_feedback {
            return;
        }
        let Some(reference) = self.last_broadcast.get(&key) else {
            return;
        };
        let acc = self.ef_residuals.entry((key, update.party)).or_default();
        acc.resize(update.params.len(), 0.0);
        for (i, (e, &shipped)) in acc.iter_mut().zip(update.params.iter()).enumerate() {
            *e += shipped - reference.get(i).copied().unwrap_or(0.0);
        }
    }

    /// A delivered update was quarantined by a robust fold: its bytes were
    /// paid and metered, but the change it carried never entered the
    /// globals — refund it into the party's error-feedback accumulator so
    /// lossy-codec parties re-ship the rejected mass rather than silently
    /// losing it (same refund as a lost upload; see the private
    /// `refund_feedback`'s rationale).
    pub fn refund_quarantined(&mut self, key: usize, codec: &CodecSpec, update: &ModelUpdate) {
        self.refund_feedback(key, codec, update);
    }
}

/// Staleness-weighted federated averaging with a server mixing rate.
///
/// Returns `None` when nothing can be aggregated (no updates, or all with
/// zero weight) — the caller keeps the current global parameters.
pub fn aggregate_weighted(
    global: &[f32],
    ready: &[WeightedUpdate],
    server_lr: f32,
) -> Option<Vec<f32>> {
    let total: f32 = ready
        .iter()
        .filter(|w| w.weight > 0.0 && w.update.num_samples > 0)
        .map(|w| w.weight)
        .sum();
    if total <= 0.0 {
        return None;
    }
    let mut avg = vec![0.0f32; global.len()];
    for w in ready {
        if w.weight <= 0.0 || w.update.num_samples == 0 {
            continue;
        }
        let scale = w.weight / total;
        for (acc, &p) in avg.iter_mut().zip(w.update.params.iter()) {
            *acc += scale * p;
        }
    }
    let eta = server_lr.clamp(0.0, 1.0);
    if eta < 1.0 {
        for (acc, &g) in avg.iter_mut().zip(global.iter()) {
            *acc = (1.0 - eta) * g + eta * *acc;
        }
    }
    Some(avg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(party: usize, n: usize) -> ModelUpdate {
        ModelUpdate {
            party: PartyId(party),
            params: vec![party as f32; 4],
            num_samples: n,
            train_loss: 0.5,
        }
    }

    fn ids(n: usize) -> Vec<PartyId> {
        (0..n).map(PartyId).collect()
    }

    #[test]
    fn always_on_schedule_has_everyone_live() {
        let sched = ChurnSchedule::always_on(0.0, 1);
        for r in 0..20 {
            assert!(sched.is_live(PartyId(3), r));
        }
    }

    #[test]
    fn join_and_leave_rounds_gate_membership() {
        let sched = ChurnSchedule::always_on(0.0, 2)
            .with_join(PartyId(0), 3)
            .with_leave(PartyId(1), 5);
        assert!(!sched.is_member(PartyId(0), 2));
        assert!(sched.is_member(PartyId(0), 3));
        assert!(sched.is_member(PartyId(1), 4));
        assert!(!sched.is_member(PartyId(1), 5));
        assert_eq!(sched.members(&ids(3), 2), vec![PartyId(1), PartyId(2)]);
    }

    #[test]
    fn seeded_dropout_is_deterministic_across_reruns() {
        let spec = ChurnSpec {
            join_fraction: 0.3,
            join_ramp_rounds: 5,
            leave_fraction: 0.2,
            leave_after: 10,
            horizon: 30,
            dropout: 0.25,
        };
        let a = ChurnSchedule::from_spec(&spec, &ids(64), 7);
        let b = ChurnSchedule::from_spec(&spec, &ids(64), 7);
        assert_eq!(a, b);
        for r in 0..30 {
            for p in 0..64 {
                assert_eq!(a.is_live(PartyId(p), r), b.is_live(PartyId(p), r));
            }
        }
        // A different seed reshuffles the schedule.
        let c = ChurnSchedule::from_spec(&spec, &ids(64), 8);
        let agree = (0..30)
            .flat_map(|r| (0..64).map(move |p| (r, p)))
            .filter(|&(r, p)| a.is_live(PartyId(p), r) == c.is_live(PartyId(p), r))
            .count();
        assert!(agree < 30 * 64, "different seeds must differ somewhere");
    }

    #[test]
    fn dropout_rate_is_roughly_calibrated() {
        let sched = ChurnSchedule::always_on(0.3, 11);
        let total = 200 * 50;
        let dropped = (0..200usize)
            .flat_map(|p| (0..50usize).map(move |r| (p, r)))
            .filter(|&(p, r)| sched.drops_out(PartyId(p), r))
            .count();
        let rate = dropped as f32 / total as f32;
        assert!((rate - 0.3).abs() < 0.03, "observed dropout rate {rate}");
    }

    #[test]
    fn delay_distributions_respect_parameters() {
        let d = DelayDist::Constant(2.0);
        assert_eq!(d.sample(0.9), 2.0);
        let d = DelayDist::Uniform { lo: 1.0, hi: 3.0 };
        for i in 0..10 {
            let v = d.sample(i as f32 / 10.0);
            assert!((1.0..3.0).contains(&v));
        }
        let d = DelayDist::Exponential { mean: 2.0 };
        let mean: f32 = (0..1000)
            .map(|i| d.sample((i as f32 + 0.5) / 1000.0))
            .sum::<f32>()
            / 1000.0;
        assert!((mean - 2.0).abs() < 0.2, "exponential mean {mean}");
    }

    #[test]
    fn arrival_offset_buckets_by_deadline() {
        let s = StragglerSpec {
            dist: DelayDist::Constant(0.5),
            slow_fraction: 0.0,
            slow_factor: 1.0,
            deadline: 1.0,
            late: LatePolicy::Defer,
        };
        assert_eq!(s.arrival_offset(0, 1, PartyId(0)), 0);
        let s = StragglerSpec {
            dist: DelayDist::Constant(1.5),
            ..s
        };
        assert_eq!(s.arrival_offset(0, 1, PartyId(0)), 1);
        let s = StragglerSpec {
            dist: DelayDist::Constant(3.5),
            ..s
        };
        assert_eq!(s.arrival_offset(0, 1, PartyId(0)), 3);
    }

    #[test]
    fn lost_ef_upload_is_refunded_into_the_next_one() {
        let codec = CodecSpec::topk(0.5).with_delta().with_error_feedback();
        let spec = ScenarioSpec::sync(2).with_churn(ChurnSpec::dropout_only(1.0));
        let mut engine = ScenarioEngine::new(spec, &ids(1));
        engine.begin_round();
        // Establish the stream reference (all-zero globals) the refund is
        // computed against.
        let reference = engine
            .broadcast(0, &[0.0; 4], &codec, &ids(1), None)
            .decoded;
        let fresh = ModelUpdate {
            party: PartyId(0),
            params: vec![1.0, -2.0, 3.0, -4.0],
            num_samples: 10,
            train_loss: 0.5,
        };
        let shipped = engine.transport_upload(0, fresh, &codec, &reference);
        assert_eq!(shipped.params, vec![0.0, 0.0, 3.0, -4.0]);
        let d = engine.collect(0, vec![shipped], &codec, None);
        assert_eq!(d.lost, vec![PartyId(0)]);
        // The aborted upload's shipped mass went back into the accumulator
        // (which already held the sparsification error), so a party with
        // zero fresh gradient re-ships the largest *lost* coordinates
        // rather than just the residual.
        engine.begin_round();
        let redo = engine.transport_upload(
            0,
            ModelUpdate {
                party: PartyId(0),
                params: vec![0.0; 4],
                num_samples: 10,
                train_loss: 0.5,
            },
            &codec,
            &reference,
        );
        assert_eq!(redo.params, vec![0.0, 0.0, 3.0, -4.0]);
    }

    #[test]
    fn first_contact_trains_from_the_frame_it_was_billed_for() {
        // Established stream + sparse delta downlink: the veteran decodes
        // the lossy delta frame, while a joiner decodes the exact dense
        // full-state frame it was metered for.
        let codec = CodecSpec::topk(0.25).with_delta();
        let mut engine = ScenarioEngine::new(ScenarioSpec::sync(2), &ids(2));
        engine.begin_round();
        let g1 = vec![1.0, 2.0, 3.0, 4.0];
        let first = engine.broadcast(0, &g1, &codec, &[PartyId(0)], None);
        assert!(first.fresh.contains(&PartyId(0)));
        // Round 1 frames are self-contained either way — one shared state.
        assert!(first.first_contact.is_none());
        engine.begin_round();
        let g2 = vec![2.0, 2.5, 3.0, 8.0];
        let b = engine.broadcast(0, &g2, &codec, &ids(2), None);
        assert_eq!(b.fresh, [PartyId(1)].into_iter().collect());
        assert_eq!(b.state_for(PartyId(1)), &g2[..], "joiner: exact globals");
        assert_eq!(b.state_for(PartyId(0)), &b.decoded[..]);
        assert_ne!(b.state_for(PartyId(0)), &g2[..], "veteran: lossy delta");
    }

    #[test]
    fn sync_engine_without_axes_delivers_everything() {
        let mut engine = ScenarioEngine::new(ScenarioSpec::sync(0), &ids(4));
        engine.begin_round();
        let delivery = engine.collect(
            0,
            (0..4).map(|p| update(p, 10)).collect(),
            &CodecSpec::dense(),
            None,
        );
        assert_eq!(delivery.ready.len(), 4);
        assert!(delivery.lost.is_empty());
        assert!(delivery.ready.iter().all(|w| w.staleness == 0));
        let stats = engine.stats();
        assert_eq!(stats.selected, 4);
        assert_eq!(stats.delivered, 4);
        assert_eq!(stats.aggregations, 1);
    }

    #[test]
    fn deferred_updates_mature_with_staleness_discount() {
        let spec = ScenarioSpec::sync(3).with_stragglers(StragglerSpec {
            dist: DelayDist::Constant(1.5),
            slow_fraction: 0.0,
            slow_factor: 1.0,
            deadline: 1.0,
            late: LatePolicy::Defer,
        });
        let mut engine = ScenarioEngine::new(spec, &ids(2));
        engine.begin_round();
        let d1 = engine.collect(
            0,
            vec![update(0, 10), update(1, 10)],
            &CodecSpec::dense(),
            None,
        );
        assert!(d1.ready.is_empty(), "everything straggles past round 1");
        assert_eq!(d1.deferred.len(), 2);
        assert_eq!(engine.buffered(0), 2);
        engine.begin_round();
        let d2 = engine.collect(0, Vec::new(), &CodecSpec::dense(), None);
        assert_eq!(d2.ready.len(), 2);
        for w in &d2.ready {
            assert_eq!(w.staleness, 1);
            // Sync defer discount: α = 1 → weight = samples / 2.
            assert!((w.weight - 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn late_drop_policy_aborts_and_meters() {
        let spec = ScenarioSpec::sync(4).with_stragglers(StragglerSpec {
            dist: DelayDist::Constant(2.5),
            slow_fraction: 0.0,
            slow_factor: 1.0,
            deadline: 1.0,
            late: LatePolicy::Drop,
        });
        let ledger = CommLedger::new();
        let mut engine = ScenarioEngine::new(spec, &ids(2));
        engine.begin_round();
        let d = engine.collect(
            0,
            vec![update(0, 10), update(1, 10)],
            &CodecSpec::dense(),
            Some(&ledger),
        );
        assert!(d.ready.is_empty());
        assert_eq!(d.lost.len(), 2);
        assert_eq!(engine.stats().dropped_late, 2);
        let totals = ledger.totals();
        assert_eq!(totals.aborted_messages, 2);
        assert!(totals.aborted_up_bytes > 0);
        assert_eq!(totals.up_bytes, 0, "aborted uploads never complete");
    }

    #[test]
    fn async_buffer_waits_for_min_updates() {
        let spec = ScenarioSpec::sync(5).with_async(AsyncSpec {
            min_buffer: 3,
            staleness_alpha: 0.5,
            max_staleness: 10,
            server_lr: 1.0,
        });
        let mut engine = ScenarioEngine::new(spec, &ids(4));
        engine.begin_round();
        let d = engine.collect(
            0,
            vec![update(0, 10), update(1, 10)],
            &CodecSpec::dense(),
            None,
        );
        assert!(d.ready.is_empty(), "below min_buffer: hold");
        assert_eq!(engine.buffered(0), 2);
        engine.begin_round();
        let d = engine.collect(0, vec![update(2, 10)], &CodecSpec::dense(), None);
        assert_eq!(d.ready.len(), 3, "buffer reached threshold");
        let stale: Vec<usize> = d.ready.iter().map(|w| w.staleness).collect();
        assert!(stale.contains(&1) && stale.contains(&0));
    }

    #[test]
    fn all_stale_flush_discards_everything() {
        let spec = ScenarioSpec::sync(6).with_async(AsyncSpec {
            min_buffer: 2,
            staleness_alpha: 0.5,
            max_staleness: 1,
            server_lr: 1.0,
        });
        let mut engine = ScenarioEngine::new(spec, &ids(4));
        engine.begin_round();
        let d = engine.collect(0, vec![update(0, 10)], &CodecSpec::dense(), None);
        assert!(d.ready.is_empty());
        // Let the buffered update age far past max_staleness.
        for _ in 0..4 {
            engine.begin_round();
        }
        let d = engine.collect(0, vec![update(1, 10)], &CodecSpec::dense(), None);
        assert!(
            d.ready.len() == 1 && d.ready[0].update.party == PartyId(1),
            "only the fresh update survives: {d:?}"
        );
        assert_eq!(engine.stats().stale_dropped, 1);
        assert_eq!(engine.buffered(0), 0, "stale entries are gone");
    }

    #[test]
    fn streams_are_isolated() {
        let mut engine = ScenarioEngine::new(ScenarioSpec::sync(7), &ids(4));
        engine.begin_round();
        let d0 = engine.collect(0, vec![update(0, 10)], &CodecSpec::dense(), None);
        let d1 = engine.collect(1, vec![update(1, 10)], &CodecSpec::dense(), None);
        assert_eq!(d0.ready.len(), 1);
        assert_eq!(d1.ready.len(), 1);
        assert_eq!(d0.ready[0].update.party, PartyId(0));
        assert_eq!(d1.ready[0].update.party, PartyId(1));
    }

    #[test]
    fn aggregate_weighted_matches_weighted_mean() {
        let ready = vec![
            WeightedUpdate {
                update: ModelUpdate {
                    party: PartyId(0),
                    params: vec![1.0, 1.0],
                    num_samples: 10,
                    train_loss: 0.1,
                },
                staleness: 0,
                weight: 30.0,
            },
            WeightedUpdate {
                update: ModelUpdate {
                    party: PartyId(1),
                    params: vec![4.0, 0.0],
                    num_samples: 10,
                    train_loss: 0.1,
                },
                staleness: 0,
                weight: 10.0,
            },
        ];
        let out = aggregate_weighted(&[0.0, 0.0], &ready, 1.0).expect("aggregates");
        assert!((out[0] - 1.75).abs() < 1e-6);
        assert!((out[1] - 0.75).abs() < 1e-6);
        // Half server learning rate pulls halfway from the global.
        let half = aggregate_weighted(&[0.0, 0.0], &ready, 0.5).expect("aggregates");
        assert!((half[0] - 0.875).abs() < 1e-6);
        // Nothing to aggregate → None.
        assert!(aggregate_weighted(&[0.0], &[], 1.0).is_none());
    }

    #[test]
    fn attacker_assignment_is_deterministic_and_calibrated() {
        let spec = AttackSpec::new(AttackKind::SignFlip, 0.2);
        let hostile = (0..1000usize)
            .filter(|&p| spec.is_attacker(42, PartyId(p)))
            .count();
        let rate = hostile as f32 / 1000.0;
        assert!((rate - 0.2).abs() < 0.04, "observed attacker rate {rate}");
        // Same seed → identical role assignment on rerun.
        for p in 0..1000usize {
            assert_eq!(
                spec.is_attacker(42, PartyId(p)),
                spec.is_attacker(42, PartyId(p))
            );
        }
        // A different seed reshuffles who is hostile.
        let moved = (0..1000usize)
            .filter(|&p| spec.is_attacker(42, PartyId(p)) != spec.is_attacker(43, PartyId(p)))
            .count();
        assert!(moved > 0, "different seeds must assign different attackers");
        // Zero fraction disarms everyone.
        let off = AttackSpec::new(AttackKind::SignFlip, 0.0);
        assert!((0..1000usize).all(|p| !off.is_attacker(42, PartyId(p))));
    }

    #[test]
    fn attack_schedules_gate_activation() {
        let attacker = PartyId(
            (0..100usize)
                .find(|&p| AttackSpec::new(AttackKind::SignFlip, 0.5).is_attacker(9, PartyId(p)))
                .expect("half the population is hostile"),
        );
        let always = AttackSpec::new(AttackKind::SignFlip, 0.5);
        assert!((1..20).all(|r| always.active(9, attacker, r)));
        let sleeper = AttackSpec::new(AttackKind::SignFlip, 0.5)
            .with_schedule(AttackSchedule::Sleeper { from_round: 5 });
        assert!((1..5).all(|r| !sleeper.active(9, attacker, r)));
        assert!((5..20).all(|r| sleeper.active(9, attacker, r)));
        let sometimes = AttackSpec::new(AttackKind::SignFlip, 0.5)
            .with_schedule(AttackSchedule::Intermittent { prob: 0.5 });
        let on = (1..400)
            .filter(|&r| sometimes.active(9, attacker, r))
            .count();
        assert!(
            on > 100 && on < 300,
            "intermittent schedule fired {on}/399 rounds"
        );
        // Schedules never activate parties outside the attacker role.
        let honest = PartyId(
            (0..100usize)
                .find(|&p| !always.is_attacker(9, PartyId(p)))
                .expect("half the population is honest"),
        );
        assert!((1..20).all(|r| !always.active(9, honest, r)));
    }

    #[test]
    fn sign_flip_reflects_the_upload_through_the_reference() {
        let spec = ScenarioSpec::sync(3).with_attack(AttackSpec::new(AttackKind::SignFlip, 1.0));
        let mut engine = ScenarioEngine::new(spec, &ids(1));
        engine.begin_round();
        assert!(engine.is_attacker(PartyId(0)));
        assert!(engine.attack_active(PartyId(0)));
        assert!(
            !engine.poisons_labels(PartyId(0)),
            "sign-flip is wire-level"
        );
        let reference = vec![1.0, -1.0, 0.5, 0.0];
        let honest = ModelUpdate {
            party: PartyId(0),
            params: vec![2.0, -2.0, 1.0, 4.0],
            num_samples: 10,
            train_loss: 0.5,
        };
        let shipped = engine.transport_upload(0, honest, &CodecSpec::dense(), &reference);
        // p ← 2·ref − p: the gradient step is exactly negated.
        assert_eq!(shipped.params, vec![0.0, 0.0, 0.0, -4.0]);
    }

    #[test]
    fn scaled_noise_inflates_the_step_away_from_the_reference() {
        let spec = ScenarioSpec::sync(3).with_attack(AttackSpec::new(
            AttackKind::ScaledNoise { factor: 10.0 },
            1.0,
        ));
        let mut engine = ScenarioEngine::new(spec, &ids(1));
        engine.begin_round();
        let reference = vec![0.0; 8];
        let honest = ModelUpdate {
            party: PartyId(0),
            params: vec![0.1; 8],
            num_samples: 10,
            train_loss: 0.5,
        };
        let honest_norm: f32 = honest.params.iter().map(|p| p * p).sum::<f32>().sqrt();
        let shipped = engine.transport_upload(0, honest, &CodecSpec::dense(), &reference);
        let norm: f32 = shipped.params.iter().map(|p| p * p).sum::<f32>().sqrt();
        assert!(
            norm > 5.0 * honest_norm,
            "inflated step {norm} vs honest {honest_norm}"
        );
    }

    #[test]
    fn label_flip_leaves_the_wire_untouched_but_flags_training() {
        let spec = ScenarioSpec::sync(3).with_attack(AttackSpec::new(AttackKind::LabelFlip, 1.0));
        let mut engine = ScenarioEngine::new(spec, &ids(1));
        engine.begin_round();
        assert!(engine.poisons_labels(PartyId(0)));
        let honest = ModelUpdate {
            party: PartyId(0),
            params: vec![2.0, -2.0],
            num_samples: 10,
            train_loss: 0.5,
        };
        let shipped = engine.transport_upload(0, honest.clone(), &CodecSpec::dense(), &[0.0; 2]);
        assert_eq!(shipped.params, honest.params);
    }

    #[test]
    fn attacks_compose_with_churn_and_stay_rerun_deterministic() {
        let spec = ScenarioSpec::sync(11)
            .with_churn(ChurnSpec::dropout_only(0.3))
            .with_attack(
                AttackSpec::new(AttackKind::ScaledNoise { factor: 5.0 }, 0.4)
                    .with_schedule(AttackSchedule::Intermittent { prob: 0.7 }),
            );
        let run = |spec: ScenarioSpec| {
            let mut engine = ScenarioEngine::new(spec, &ids(16));
            let mut trace = Vec::new();
            for _ in 0..5 {
                engine.begin_round();
                let live = engine.live_members(&ids(16));
                let uploads: Vec<ModelUpdate> = live
                    .iter()
                    .map(|&p| {
                        engine.transport_upload(0, update(p.0, 10), &CodecSpec::dense(), &[0.0; 4])
                    })
                    .collect();
                let d = engine.collect(0, uploads, &CodecSpec::dense(), None);
                for w in &d.ready {
                    trace.push((w.update.party, w.update.params.clone()));
                }
            }
            trace
        };
        let a = run(spec.clone());
        let b = run(spec);
        assert_eq!(a, b, "hostile runs must be rerun-deterministic");
        assert!(!a.is_empty());
    }

    /// Seed 6 under 50 % dropout makes party 0 crash mid-round in round 1
    /// and survive round 2 — the drop-then-resume shape the join refund
    /// tests need (seeded draws, so this is stable across reruns).
    fn drop_then_survive_engine(spec: ScenarioSpec) -> ScenarioEngine {
        let engine = ScenarioEngine::new(spec, &ids(1));
        assert!(engine.churn().drops_out(PartyId(0), 1));
        assert!(!engine.churn().drops_out(PartyId(0), 2));
        engine
    }

    #[test]
    fn churned_first_contact_refunds_and_rebills_on_rejoin() {
        // Monolithic path: the fresh party crashes mid-round, so the
        // first-contact frame it was billed for never landed. The spend is
        // overlaid as lost (never subtracted) and the party un-marked, so
        // its next contact re-bills a full first contact instead of
        // pretending it holds a reference.
        let codec = CodecSpec::dense();
        let spec = ScenarioSpec::sync(6).with_churn(ChurnSpec::dropout_only(0.5));
        let mut engine = drop_then_survive_engine(spec);
        let ledger = CommLedger::new();
        let g = vec![1.0, 2.0, 3.0, 4.0];
        let fc_frame = codec.first_contact_spec().broadcast_len(g.len()) as u64;

        engine.begin_round();
        let b1 = engine.broadcast(0, &g, &codec, &ids(1), Some(&ledger));
        assert!(b1.fresh.contains(&PartyId(0)));
        engine.collect(0, Vec::new(), &codec, Some(&ledger));
        let t = ledger.totals();
        assert_eq!(
            t.first_contact_down_bytes, fc_frame,
            "billed, not clawed back"
        );
        assert_eq!(t.join_lost_down_bytes, fc_frame, "overlaid as lost");
        assert_eq!(t.join_lost_messages, 1);

        engine.begin_round();
        let b2 = engine.broadcast(0, &g, &codec, &ids(1), Some(&ledger));
        assert!(b2.fresh.contains(&PartyId(0)), "rejoiner is fresh again");
        engine.collect(0, Vec::new(), &codec, Some(&ledger));
        let t = ledger.totals();
        assert_eq!(t.first_contact_down_bytes, 2 * fc_frame, "honest re-bill");
        assert_eq!(t.join_lost_down_bytes, fc_frame, "survivor loses nothing");

        engine.begin_round();
        let b3 = engine.broadcast(0, &g, &codec, &ids(1), Some(&ledger));
        assert!(b3.fresh.is_empty(), "now a veteran");
    }

    #[test]
    fn chunked_join_resumes_after_churn_without_restarting() {
        // Chunked path, same drop-then-survive schedule: the lost flight is
        // overlaid and re-shipped, the sync completes on the second
        // contact, and the party trains from the snapshot its sync began
        // with — not the round-2 globals.
        let codec = CodecSpec::dense();
        let spec = ScenarioSpec::sync(6).with_churn(ChurnSpec::dropout_only(0.5));
        let mut engine = drop_then_survive_engine(spec);
        engine.enable_join_chunking(JoinConfig::dense(8));
        let ledger = CommLedger::new();
        let g1 = vec![1.0, 2.0, 3.0, 4.0];
        let frame = CodecSpec::dense().broadcast_len(g1.len());
        let chunks = frame.div_ceil(8);
        let wire = (frame + chunks * crate::join::JOIN_CHUNK_HEADER_LEN) as u64;

        engine.begin_round();
        let b1 = engine.broadcast(0, &g1, &codec, &ids(1), Some(&ledger));
        assert_eq!(b1.state_for(PartyId(0)), &g1[..]);
        engine.collect(0, Vec::new(), &codec, Some(&ledger));
        let t = ledger.totals();
        assert_eq!(t.join_chunk_down_bytes, wire);
        assert_eq!(t.join_chunk_messages, chunks as u64);
        assert_eq!(t.join_lost_down_bytes, wire, "whole flight churned away");
        assert_eq!(t.join_lost_messages, chunks as u64);
        assert_eq!(engine.join_progress(0, PartyId(0)), Some((0, chunks)));

        engine.begin_round();
        let g2 = vec![9.0, 9.0, 9.0, 9.0];
        let b2 = engine.broadcast(0, &g2, &codec, &ids(1), Some(&ledger));
        assert!(b2.fresh.contains(&PartyId(0)), "sync still open: fresh");
        assert_eq!(
            b2.state_for(PartyId(0)),
            &g1[..],
            "resumer trains from its sync's snapshot, not round-2 globals"
        );
        engine.collect(0, Vec::new(), &codec, Some(&ledger));
        let t = ledger.totals();
        assert_eq!(t.join_chunk_down_bytes, 2 * wire, "full re-ship, metered");
        assert_eq!(t.join_lost_down_bytes, wire, "no further loss");
        assert_eq!(engine.join_progress(0, PartyId(0)), None, "sync complete");

        engine.begin_round();
        let before = ledger.totals();
        let b3 = engine.broadcast(0, &g2, &codec, &ids(1), Some(&ledger));
        assert!(b3.fresh.is_empty(), "promoted to veteran");
        let t = ledger.totals();
        assert_eq!(
            t.down_bytes - before.down_bytes,
            codec.broadcast_spec(true).broadcast_len(4) as u64,
            "veterans ride the regular downlink"
        );
    }

    #[test]
    fn chunked_path_meters_joiners_and_veterans_separately() {
        // No churn: one veteran on the regular downlink, one joiner on the
        // chunk counters, and the monolithic first-contact counter stays
        // untouched the whole time.
        let codec = CodecSpec::quant8(256).with_delta();
        let mut engine = ScenarioEngine::new(ScenarioSpec::sync(3), &ids(2));
        engine.enable_join_chunking(JoinConfig::quantized(16));
        let ledger = CommLedger::new();
        let g = vec![0.5, -0.5, 0.25, -0.25];

        engine.begin_round();
        engine.broadcast(0, &g, &codec, &[PartyId(0)], Some(&ledger));
        engine.collect(0, Vec::new(), &codec, Some(&ledger));
        assert_eq!(engine.join_progress(0, PartyId(0)), None);

        engine.begin_round();
        let b = engine.broadcast(0, &g, &codec, &ids(2), Some(&ledger));
        assert_eq!(b.fresh, [PartyId(1)].into_iter().collect());
        assert!(b.join_states.contains_key(&PartyId(1)));
        engine.collect(0, Vec::new(), &codec, Some(&ledger));

        let frame = CodecSpec::quant8(256).broadcast_len(g.len());
        let chunks = frame.div_ceil(16);
        let t = ledger.totals();
        assert_eq!(t.first_contact_down_bytes, 0, "monolithic path never ran");
        assert_eq!(t.first_contact_messages, 0);
        assert_eq!(
            t.join_chunk_down_bytes,
            2 * (frame + chunks * crate::join::JOIN_CHUNK_HEADER_LEN) as u64,
            "both joiners shipped one full chunked frame each"
        );
        assert_eq!(
            t.down_bytes,
            codec.broadcast_spec(true).broadcast_len(g.len()) as u64,
            "exactly one veteran downlink (round 2, party 0)"
        );
        assert_eq!(t.join_lost_down_bytes, 0);
    }
}
