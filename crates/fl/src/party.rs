//! Parties (clients) of a federated job.

use serde::{Deserialize, Serialize};
use shiftex_data::Dataset;
use shiftex_tensor::Matrix;

/// Stable party identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PartyId(pub usize);

impl std::fmt::Display for PartyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "party#{}", self.0)
    }
}

/// A federated participant: private train/test data for the current window.
///
/// The aggregator never reads `train`/`test` directly — only the statistics
/// a party chooses to publish ([`Party::info`], embedding profiles) and its
/// model updates cross the trust boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Party {
    id: PartyId,
    train: Dataset,
    test: Dataset,
    prev_train: Option<Dataset>,
}

impl Party {
    /// Creates a party with its initial window data.
    pub fn new(id: PartyId, train: Dataset, test: Dataset) -> Self {
        Self {
            id,
            train,
            test,
            prev_train: None,
        }
    }

    /// Party identifier.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// Current-window training data.
    pub fn train(&self) -> &Dataset {
        &self.train
    }

    /// Current-window test data.
    pub fn test(&self) -> &Dataset {
        &self.test
    }

    /// Training feature matrix.
    pub fn train_features(&self) -> &Matrix {
        self.train.features()
    }

    /// Training labels.
    pub fn train_labels(&self) -> &[usize] {
        self.train.labels()
    }

    /// Test feature matrix.
    pub fn test_features(&self) -> &Matrix {
        self.test.features()
    }

    /// Test labels.
    pub fn test_labels(&self) -> &[usize] {
        self.test.labels()
    }

    /// Previous window's training data (`D_{t-1}` in Algorithm 1), retained
    /// locally so the party can compute both windows' embeddings under its
    /// *current* model when testing for shift.
    pub fn prev_train(&self) -> Option<&Dataset> {
        self.prev_train.as_ref()
    }

    /// Replaces the window data (stream advanced to a new window); the old
    /// training set is retained as `prev_train`.
    pub fn advance_window(&mut self, train: Dataset, test: Dataset) {
        self.prev_train = Some(std::mem::replace(&mut self.train, train));
        self.test = test;
    }

    /// A hostile clone of this party whose *training* labels are flipped
    /// (`l ← C−1−l`) — the label-flip data-poisoning attack. Test data is
    /// untouched: evaluation always scores against the truth.
    pub fn label_flipped(&self) -> Party {
        let classes = self.train.num_classes();
        Party {
            id: self.id,
            train: self.train.map_labels(|l| classes - 1 - l),
            test: self.test.clone(),
            prev_train: self.prev_train.clone(),
        }
    }

    /// Publishable metadata: id, sample count, label histogram.
    pub fn info(&self) -> PartyInfo {
        PartyInfo {
            id: self.id,
            num_samples: self.train.len(),
            label_hist: self.train.label_histogram(),
            last_loss: None,
        }
    }
}

/// The metadata a selector may use — everything here is aggregate statistics
/// a party is willing to publish (no raw data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartyInfo {
    /// Party identifier.
    pub id: PartyId,
    /// Training samples available this window.
    pub num_samples: usize,
    /// Normalised label histogram of the window's training data.
    pub label_hist: Vec<f32>,
    /// Most recent local training loss, if the party reported one
    /// (OORT-style utility signals).
    pub last_loss: Option<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use shiftex_data::{ImageShape, PrototypeGenerator};

    fn party(seed: u64) -> Party {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        Party::new(
            PartyId(7),
            gen.generate_uniform(20, &mut rng),
            gen.generate_uniform(10, &mut rng),
        )
    }

    #[test]
    fn info_reflects_data() {
        let p = party(0);
        let info = p.info();
        assert_eq!(info.id, PartyId(7));
        assert_eq!(info.num_samples, 20);
        assert!((info.label_hist.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn advance_window_swaps_data() {
        let mut p = party(1);
        let mut rng = StdRng::seed_from_u64(2);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        let new_train = gen.generate_uniform(5, &mut rng);
        let new_test = gen.generate_uniform(3, &mut rng);
        let old_len = p.train().len();
        p.advance_window(new_train, new_test);
        assert_eq!(p.train().len(), 5);
        assert_eq!(p.test().len(), 3);
        assert_eq!(p.prev_train().map(|d| d.len()), Some(old_len));
    }

    #[test]
    fn display_id() {
        assert_eq!(PartyId(3).to_string(), "party#3");
    }
}
