//! Lazy population store: parties as seeded specs, materialized O(cohort).
//!
//! Every round of a federation touches a *cohort* of a handful of parties,
//! yet the pre-store runtime kept the whole population resident as a
//! `Vec<Party>` — memory and window-advance cost scaled with population,
//! not cohort. [`PopulationStore`] inverts that: parties exist only as
//! entries of a [`PartyProvider`] (typically a seeded generator that can
//! rebuild any party's window data bit-identically on demand), and a
//! concrete [`Party`] is instantiated only when a selector samples it into
//! a cohort — then dropped when the round ends. Resident state is
//! O(cohort ∪ pinned), so a 100k-party federation costs the same per round
//! as a 100-party one.
//!
//! Two provider families cover the runtime:
//!
//! * a **materialized** provider (via [`PopulationStore::from_parties`])
//!   wraps an owned `Vec<Party>` — the legacy representation, kept for the
//!   golden bit-identity fixtures and for small populations where laziness
//!   buys nothing;
//! * **lazy** providers implement [`PartyProvider`] over a seed and rebuild
//!   `(party, window)` deterministically; re-instantiation after eviction
//!   must be bit-identical (the conformance suite enforces this).
//!
//! # Example
//!
//! ```
//! use shiftex_fl::{Party, PartyId, PopulationStore};
//! use shiftex_data::{ImageShape, PrototypeGenerator};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
//! let parties: Vec<Party> = (0..4)
//!     .map(|i| {
//!         let train = gen.generate_uniform(8, &mut rng);
//!         let test = gen.generate_uniform(4, &mut rng);
//!         Party::new(PartyId(i), train, test)
//!     })
//!     .collect();
//! let store = PopulationStore::from_parties(parties);
//! assert_eq!(store.len(), 4);
//!
//! // A view restricts the store to the round's live members; cohorts are
//! // materialized through it and dropped when the round's loop ends.
//! let view = store.view(vec![PartyId(1), PartyId(3)]);
//! assert_eq!(view.len(), 2);
//! let cohort = view.parties(&[PartyId(3)]);
//! assert_eq!(cohort.len(), 1);
//! assert_eq!(cohort[0].id(), PartyId(3));
//! // PartyId(0) is alive in the store but filtered out of this view.
//! assert!(view.party(PartyId(0)).is_none());
//! assert!(store.with_party(PartyId(0), |p| p.train().len()).is_some());
//! ```

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};

use crate::party::{Party, PartyId, PartyInfo};

/// Source of parties for a [`PopulationStore`].
///
/// Implementations rebuild a party's data for a given window on demand.
/// The contract a provider must honour:
///
/// * [`party_ids`](Self::party_ids) is the fixed population, in iteration
///   order, stable for the provider's lifetime (churn is modelled by the
///   scenario engine's liveness schedule, not by the provider);
/// * [`with_party`](Self::with_party) invokes the callback **exactly once**
///   for a known id and **never** for an unknown one;
/// * rebuilding the same `(id, window)` twice yields bit-identical data —
///   the store evicts cohort parties after every round and relies on
///   re-instantiation determinism.
///
/// ```
/// use shiftex_fl::{Party, PartyId, PartyProvider, PopulationStore};
/// use shiftex_data::{ImageShape, PrototypeGenerator};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// /// Rebuilds any party from a per-(id, window) seed — O(1) resident.
/// #[derive(Debug)]
/// struct Seeded {
///     n: usize,
/// }
///
/// impl Seeded {
///     fn build(&self, id: PartyId, window: usize) -> Party {
///         let seed = (id.0 as u64) << 20 | window as u64;
///         let mut rng = StdRng::seed_from_u64(seed);
///         let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
///         let train = gen.generate_uniform(8, &mut rng);
///         let test = gen.generate_uniform(4, &mut rng);
///         Party::new(id, train, test)
///     }
/// }
///
/// impl PartyProvider for Seeded {
///     fn party_ids(&self) -> Vec<PartyId> {
///         (0..self.n).map(PartyId).collect()
///     }
///     fn with_party(&self, id: PartyId, window: usize, f: &mut dyn FnMut(&Party)) {
///         if id.0 < self.n {
///             f(&self.build(id, window));
///         }
///     }
/// }
///
/// let store = PopulationStore::new(Box::new(Seeded { n: 10_000 }));
/// let a = store.party(PartyId(4096)).unwrap();
/// let b = store.party(PartyId(4096)).unwrap();
/// assert_eq!(a.train_labels(), b.train_labels()); // re-instantiation is stable
/// assert_eq!(store.stats().pinned, 0); // nothing stays resident
/// ```
pub trait PartyProvider: std::fmt::Debug {
    /// The full population, in canonical iteration order.
    fn party_ids(&self) -> Vec<PartyId>;

    /// Materializes `id`'s party at `window` and hands it to `f`.
    ///
    /// Must call `f` exactly once when `id` is known and never otherwise.
    fn with_party(&self, id: PartyId, window: usize, f: &mut dyn FnMut(&Party));

    /// Mutates `id`'s party in place, returning `true` if this provider
    /// owns mutable storage for it. Lazy providers return `false` (the
    /// default): the store then materializes, mutates, and pins the party.
    fn with_party_mut(&mut self, _id: PartyId, _f: &mut dyn FnMut(&mut Party)) -> bool {
        false
    }

    /// Notifies the provider that the stream advanced to `window`; lazy
    /// providers typically need no bookkeeping (the window is a rebuild
    /// input), so the default is a no-op.
    fn advance_window(&mut self, _window: usize) {}
}

/// The legacy representation behind the same interface: every party
/// resident in a `Vec`, mutated in place by window advances.
#[derive(Debug)]
struct MaterializedProvider {
    parties: Vec<Party>,
    index: BTreeMap<PartyId, usize>,
}

impl MaterializedProvider {
    fn new(parties: Vec<Party>) -> Self {
        let index = parties
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id(), i))
            .collect();
        Self { parties, index }
    }
}

impl PartyProvider for MaterializedProvider {
    fn party_ids(&self) -> Vec<PartyId> {
        self.parties.iter().map(|p| p.id()).collect()
    }

    fn with_party(&self, id: PartyId, _window: usize, f: &mut dyn FnMut(&Party)) {
        if let Some(&i) = self.index.get(&id) {
            f(&self.parties[i]);
        }
    }

    fn with_party_mut(&mut self, id: PartyId, f: &mut dyn FnMut(&mut Party)) -> bool {
        match self.index.get(&id) {
            Some(&i) => {
                f(&mut self.parties[i]);
                true
            }
            None => false,
        }
    }
}

/// Residency counters for the memory-envelope tests and the `scenarios`
/// bin's scale report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PopulationStats {
    /// Total parties the provider can produce.
    pub population: usize,
    /// Parties currently pinned resident in the store (mutated copies a
    /// lazy provider could not absorb).
    pub pinned: usize,
    /// Largest cohort materialized through the store at once.
    pub peak_cohort: usize,
    /// Transient party materializations since construction.
    pub materializations: u64,
    /// Current stream window.
    pub window: usize,
}

/// Arena of parties keyed by [`PartyId`], backed by a [`PartyProvider`].
///
/// The store is the runtime's only population handle: the scenario driver
/// asks it for the id universe, builds liveness-filtered [`PopulationView`]s
/// for algorithms, and materializes concrete cohorts just-in-time. See the
/// [module docs](self) for a runnable example.
#[derive(Debug)]
pub struct PopulationStore {
    provider: Box<dyn PartyProvider>,
    order: Vec<PartyId>,
    members: BTreeSet<PartyId>,
    /// Parties holding state the provider cannot reproduce (mutated under a
    /// lazy provider); shadow the provider until dropped by `set_window`.
    pinned: BTreeMap<PartyId, Party>,
    window: usize,
    infos: RefCell<BTreeMap<PartyId, PartyInfo>>,
    materialized: Cell<u64>,
    peak_cohort: Cell<usize>,
}

impl PopulationStore {
    /// Wraps a provider; the population and its order come from
    /// [`PartyProvider::party_ids`].
    pub fn new(provider: Box<dyn PartyProvider>) -> Self {
        let order = provider.party_ids();
        let members = order.iter().copied().collect();
        Self {
            provider,
            order,
            members,
            pinned: BTreeMap::new(),
            window: 0,
            infos: RefCell::new(BTreeMap::new()),
            materialized: Cell::new(0),
            peak_cohort: Cell::new(0),
        }
    }

    /// Wraps an owned, fully-materialized population (the legacy
    /// `Vec<Party>` representation).
    pub fn from_parties(parties: Vec<Party>) -> Self {
        Self::new(Box::new(MaterializedProvider::new(parties)))
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The full population in canonical order.
    pub fn party_ids(&self) -> Vec<PartyId> {
        self.order.clone()
    }

    /// Whether `id` belongs to the population.
    pub fn contains(&self, id: PartyId) -> bool {
        self.members.contains(&id)
    }

    /// Current stream window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Advances a lazily-backed store to `window`: the provider is
    /// notified, cached infos and pinned copies are dropped (party state is
    /// re-derived from `(id, window)`).
    pub fn set_window(&mut self, window: usize) {
        self.window = window;
        self.provider.advance_window(window);
        self.pinned.clear();
        self.infos.borrow_mut().clear();
    }

    /// Advances a materialized store to `window` by streaming `advance`
    /// over every resident party in canonical order — the legacy mutation
    /// path, preserved verbatim for bit-identity with the pre-store runs.
    pub fn advance_window_with(&mut self, window: usize, mut advance: impl FnMut(&mut Party)) {
        self.window = window;
        self.infos.borrow_mut().clear();
        let order = self.order.clone();
        for id in order {
            if let Some(p) = self.pinned.get_mut(&id) {
                advance(p);
                continue;
            }
            let absorbed = self.provider.with_party_mut(id, &mut |p| advance(p));
            if !absorbed {
                // Lazy provider under the mutation API: pin the mutated copy.
                if let Some(mut p) = self.build(id) {
                    advance(&mut p);
                    self.pinned.insert(id, p);
                }
            }
        }
    }

    /// Borrows `id`'s party (materializing it if the backing is lazy) and
    /// applies `f`; `None` if `id` is not in the population.
    pub fn with_party<R>(&self, id: PartyId, f: impl FnOnce(&Party) -> R) -> Option<R> {
        if let Some(p) = self.pinned.get(&id) {
            return Some(f(p));
        }
        if !self.contains(id) {
            return None;
        }
        self.materialized.set(self.materialized.get() + 1);
        let mut f = Some(f);
        let mut out = None;
        self.provider.with_party(id, self.window, &mut |p: &Party| {
            if let Some(f) = f.take() {
                out = Some(f(p));
            }
        });
        out
    }

    /// An owned copy of `id`'s party, or `None` if unknown.
    pub fn party(&self, id: PartyId) -> Option<Party> {
        self.with_party(id, |p| p.clone())
    }

    /// Materializes a concrete cohort in the given id order, skipping
    /// unknown ids. The returned `Vec` is the round's working set; dropping
    /// it is the eviction that keeps residency O(cohort).
    pub fn cohort(&self, ids: &[PartyId]) -> Vec<Party> {
        let cohort: Vec<Party> = ids.iter().filter_map(|&id| self.party(id)).collect();
        if cohort.len() > self.peak_cohort.get() {
            self.peak_cohort.set(cohort.len());
        }
        cohort
    }

    /// `id`'s publishable metadata ([`Party::info`]), cached per window so
    /// selectors can score the whole population without materializing it
    /// more than once.
    pub fn info(&self, id: PartyId) -> Option<PartyInfo> {
        if let Some(info) = self.infos.borrow().get(&id) {
            return Some(info.clone());
        }
        let info = self.with_party(id, |p| p.info())?;
        self.infos.borrow_mut().insert(id, info.clone());
        Some(info)
    }

    /// Mutates `id`'s party in place, pinning a materialized copy when the
    /// provider is lazy; `None` if `id` is not in the population.
    pub fn with_party_mut<R>(&mut self, id: PartyId, f: impl FnOnce(&mut Party) -> R) -> Option<R> {
        if !self.contains(id) {
            return None;
        }
        self.infos.borrow_mut().remove(&id);
        if let Some(p) = self.pinned.get_mut(&id) {
            return Some(f(p));
        }
        let mut f = Some(f);
        let mut out = None;
        let absorbed = self.provider.with_party_mut(id, &mut |p: &mut Party| {
            if let Some(f) = f.take() {
                out = Some(f(p));
            }
        });
        if absorbed {
            return out;
        }
        let mut party = self.build(id)?;
        let f = f.take()?;
        let out = f(&mut party);
        self.pinned.insert(id, party);
        Some(out)
    }

    /// Residency counters.
    pub fn stats(&self) -> PopulationStats {
        PopulationStats {
            population: self.order.len(),
            pinned: self.pinned.len(),
            peak_cohort: self.peak_cohort.get(),
            materializations: self.materialized.get(),
            window: self.window,
        }
    }

    /// A liveness-filtered view for one round: `live` in engine order,
    /// silently dropping ids outside the population.
    pub fn view(&self, live: Vec<PartyId>) -> PopulationView<'_> {
        let ids: Vec<PartyId> = live.into_iter().filter(|&id| self.contains(id)).collect();
        let set = ids.iter().copied().collect();
        PopulationView {
            store: self,
            ids,
            set,
        }
    }

    /// Builds a fresh copy straight from the provider (bypassing pins).
    fn build(&self, id: PartyId) -> Option<Party> {
        if !self.contains(id) {
            return None;
        }
        self.materialized.set(self.materialized.get() + 1);
        let mut out = None;
        self.provider.with_party(id, self.window, &mut |p: &Party| {
            if out.is_none() {
                out = Some(p.clone());
            }
        });
        out
    }
}

/// A liveness-filtered, ordered window onto a [`PopulationStore`] — what a
/// [`FederatedAlgorithm`](crate::algo::FederatedAlgorithm) sees of the
/// population during one round. Algorithms stream parties through it one
/// at a time instead of borrowing a `&[&Party]` slice, which is what lets
/// the driver keep only the sampled cohort resident.
#[derive(Debug)]
pub struct PopulationView<'a> {
    store: &'a PopulationStore,
    ids: Vec<PartyId>,
    set: BTreeSet<PartyId>,
}

impl<'a> PopulationView<'a> {
    /// Member ids in view (liveness) order.
    pub fn ids(&self) -> &[PartyId] {
        &self.ids
    }

    /// Number of members in view.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `id` is in view.
    pub fn contains(&self, id: PartyId) -> bool {
        self.set.contains(&id)
    }

    /// The backing store (full population, not just this view).
    pub fn store(&self) -> &'a PopulationStore {
        self.store
    }

    /// Borrows `id`'s party if it is in view.
    pub fn with_party<R>(&self, id: PartyId, f: impl FnOnce(&Party) -> R) -> Option<R> {
        if !self.contains(id) {
            return None;
        }
        self.store.with_party(id, f)
    }

    /// An owned copy of `id`'s party if it is in view.
    pub fn party(&self, id: PartyId) -> Option<Party> {
        if !self.contains(id) {
            return None;
        }
        self.store.party(id)
    }

    /// Materializes the subset of `ids` that is in view, preserving the
    /// given order — the cohort filter the round driver applies between
    /// selection and local training.
    pub fn parties(&self, ids: &[PartyId]) -> Vec<Party> {
        let in_view: Vec<PartyId> = ids
            .iter()
            .copied()
            .filter(|&id| self.contains(id))
            .collect();
        self.store.cohort(&in_view)
    }

    /// `id`'s publishable metadata if it is in view.
    pub fn info(&self, id: PartyId) -> Option<PartyInfo> {
        if !self.contains(id) {
            return None;
        }
        self.store.info(id)
    }

    /// Metadata for every member, in view order — the selector pool.
    pub fn infos(&self) -> Vec<PartyInfo> {
        self.ids
            .iter()
            .filter_map(|&id| self.store.info(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use shiftex_data::{ImageShape, PrototypeGenerator};

    fn make_parties(n: usize) -> Vec<Party> {
        let mut rng = StdRng::seed_from_u64(5);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        (0..n)
            .map(|i| {
                Party::new(
                    PartyId(i),
                    gen.generate_uniform(12, &mut rng),
                    gen.generate_uniform(6, &mut rng),
                )
            })
            .collect()
    }

    /// A provider that rebuilds parties from per-(id, window) seeds.
    #[derive(Debug)]
    struct SeededProvider {
        n: usize,
    }

    impl SeededProvider {
        fn build(&self, id: PartyId, window: usize) -> Party {
            let mut rng = StdRng::seed_from_u64(((id.0 as u64) << 16) ^ window as u64);
            let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
            Party::new(
                id,
                gen.generate_uniform(12, &mut rng),
                gen.generate_uniform(6, &mut rng),
            )
        }
    }

    impl PartyProvider for SeededProvider {
        fn party_ids(&self) -> Vec<PartyId> {
            (0..self.n).map(PartyId).collect()
        }

        fn with_party(&self, id: PartyId, window: usize, f: &mut dyn FnMut(&Party)) {
            if id.0 < self.n {
                f(&self.build(id, window));
            }
        }
    }

    #[test]
    fn materialized_store_round_trips_parties() {
        let parties = make_parties(4);
        let expected: Vec<Vec<usize>> = parties.iter().map(|p| p.train_labels().to_vec()).collect();
        let store = PopulationStore::from_parties(parties);
        assert_eq!(store.len(), 4);
        assert_eq!(store.party_ids(), (0..4).map(PartyId).collect::<Vec<_>>());
        for (i, want) in expected.iter().enumerate() {
            let labels = store
                .with_party(PartyId(i), |p| p.train_labels().to_vec())
                .expect("known id");
            assert_eq!(&labels, want);
        }
        assert!(store.with_party(PartyId(99), |_| ()).is_none());
    }

    #[test]
    fn lazy_rebuilds_are_bit_identical_and_unpinned() {
        let store = PopulationStore::new(Box::new(SeededProvider { n: 50 }));
        let a = store.party(PartyId(31)).expect("known id");
        let b = store.party(PartyId(31)).expect("known id");
        assert_eq!(a.train_labels(), b.train_labels());
        assert_eq!(
            a.train_features().as_slice(),
            b.train_features().as_slice(),
            "re-instantiation must be bit-identical"
        );
        assert_eq!(store.stats().pinned, 0);
        assert!(store.stats().materializations >= 2);
    }

    #[test]
    fn view_filters_membership_and_preserves_order() {
        let store = PopulationStore::from_parties(make_parties(6));
        let view = store.view(vec![PartyId(4), PartyId(1), PartyId(99)]);
        assert_eq!(view.ids(), &[PartyId(4), PartyId(1)]);
        assert!(view.contains(PartyId(1)));
        assert!(!view.contains(PartyId(0)));
        assert!(view.party(PartyId(0)).is_none(), "out-of-view id is hidden");
        let cohort = view.parties(&[PartyId(1), PartyId(0), PartyId(4)]);
        assert_eq!(
            cohort.iter().map(|p| p.id()).collect::<Vec<_>>(),
            vec![PartyId(1), PartyId(4)]
        );
        let infos = view.infos();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].id, PartyId(4));
    }

    #[test]
    fn cohort_tracks_peak_and_drops_unknown() {
        let store = PopulationStore::new(Box::new(SeededProvider { n: 1000 }));
        let cohort = store.cohort(&[PartyId(7), PartyId(2000), PartyId(999)]);
        assert_eq!(cohort.len(), 2);
        assert_eq!(store.stats().peak_cohort, 2);
        let _ = store.cohort(&[PartyId(1)]);
        assert_eq!(store.stats().peak_cohort, 2, "peak is a high-water mark");
    }

    #[test]
    fn mutating_under_lazy_provider_pins_until_window_advance() {
        let mut store = PopulationStore::new(Box::new(SeededProvider { n: 10 }));
        let before = store
            .with_party(PartyId(3), |p| p.train().len())
            .expect("id");
        let mut rng = StdRng::seed_from_u64(9);
        let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        let (train, test) = (
            gen.generate_uniform(3, &mut rng),
            gen.generate_uniform(2, &mut rng),
        );
        store.with_party_mut(PartyId(3), |p| p.advance_window(train, test));
        assert_eq!(store.stats().pinned, 1);
        let after = store
            .with_party(PartyId(3), |p| p.train().len())
            .expect("id");
        assert_ne!(before, after, "reads must see the pinned mutation");
        store.set_window(1);
        assert_eq!(store.stats().pinned, 0, "window advance drops pins");
    }

    #[test]
    fn window_advance_with_streams_every_party_in_order() {
        let mut store = PopulationStore::from_parties(make_parties(5));
        let mut seen = Vec::new();
        store.advance_window_with(1, |p| seen.push(p.id()));
        assert_eq!(seen, (0..5).map(PartyId).collect::<Vec<_>>());
        assert_eq!(store.window(), 1);
    }

    #[test]
    fn infos_are_cached_per_window() {
        let store = PopulationStore::new(Box::new(SeededProvider { n: 10 }));
        let _ = store.info(PartyId(2));
        let built = store.stats().materializations;
        let _ = store.info(PartyId(2));
        assert_eq!(
            store.stats().materializations,
            built,
            "second read is cached"
        );
    }
}
