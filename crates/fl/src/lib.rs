//! In-process federated-learning runtime.
//!
//! Models the middleware dataflow the paper assumes from frameworks like
//! PySyft or Flower: a [`PopulationStore`] lends parties (private windowed
//! datasets) to each round on demand, a round selects a cohort, each cohort
//! member trains locally from the current global parameters, updates are
//! shipped (and metered) as binary wire payloads under a pluggable
//! [`codec`] (dense / int8-quantised / top-k sparse / delta), and the
//! aggregator folds what it decodes with federated averaging. Everything is
//! deterministic given a seed; local training fans out across threads with
//! `crossbeam` when enabled.
//!
//! The store is the scale lever: with a lazy [`PartyProvider`] only the
//! sampled cohort is ever resident, so a 100k-party federation runs in
//! O(cohort) memory (see [`population`]).
//!
//! # Example
//!
//! ```
//! use shiftex_fl::{
//!     FederatedJob, Party, PartyId, PopulationStore, RoundConfig, UniformSelector,
//! };
//! use shiftex_data::{ImageShape, PrototypeGenerator};
//! use shiftex_nn::{ArchSpec, Sequential};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let gen = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
//! let parties: Vec<Party> = (0..4)
//!     .map(|i| {
//!         let train = gen.generate_uniform(32, &mut rng);
//!         let test = gen.generate_uniform(16, &mut rng);
//!         Party::new(PartyId(i), train, test)
//!     })
//!     .collect();
//! // Back the job with a population store; `from_parties` materializes,
//! // a custom `PartyProvider` makes the same job lazy.
//! let population = PopulationStore::from_parties(parties);
//! let spec = ArchSpec::mlp("demo", 16, &[8], 3);
//! let init = Sequential::build(&spec, &mut rng).params_flat();
//! let mut job = FederatedJob::from_population(spec, population, RoundConfig::default());
//! let report = job.run_rounds(init, 3, &mut UniformSelector, &mut rng);
//! assert_eq!(report.accuracy_per_round.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod codec;
mod comm;
pub mod control;
mod job;
pub mod join;
mod party;
pub mod population;
pub mod robust;
mod round;
pub mod scenario;
pub mod selection;
pub mod transport;
mod update;

pub use algo::{
    run_algorithm_round, run_algorithm_round_transported, run_algorithm_round_with,
    AlgoRoundOutcome, FederatedAlgorithm, RobustnessReport, RoundCodec,
};
pub use codec::{CodecError, CodecKind, CodecSpec, UpdateCodec};
pub use comm::{CommLedger, CommTotals};
pub use control::{BudgetSpec, CodecController};
pub use job::{FederatedJob, JobReport, RoundParticipation, ScenarioJobReport};
pub use join::{JoinConfig, JoinSync, JOIN_CHUNK_HEADER_LEN};
pub use party::{Party, PartyId, PartyInfo};
pub use population::{PartyProvider, PopulationStats, PopulationStore, PopulationView};
pub use robust::{aggregate_robust, FoldPolicy, RobustFold, UpdateVerdict};
pub use round::{
    local_update, run_round, run_round_scenario, train_cohort, RoundConfig, RoundOutcome,
    ScenarioRoundOutcome,
};
pub use scenario::{
    aggregate_weighted, AsyncSpec, AttackKind, AttackSchedule, AttackSpec, BroadcastDelivery,
    ChurnSchedule, ChurnSpec, DelayDist, LatePolicy, ParticipationStats, RoundDelivery, RoundMode,
    ScenarioEngine, ScenarioSpec, StragglerSpec, WeightedUpdate,
};
pub use selection::{ParticipantSelector, UniformSelector};
pub use transport::{CohortExchange, CohortTransport, LocalStepFn, LocalTransport, UploadOutcome};
pub use update::ModelUpdate;

use shiftex_nn::{ArchSpec, Sequential};
use shiftex_tensor::Matrix;

/// Evaluates `params` on every party's test split, returning the
/// sample-weighted mean accuracy in `[0, 1]`.
///
/// Returns 0 when no party has test data.
pub fn evaluate_on_parties(spec: &ArchSpec, params: &[f32], parties: &[Party]) -> f32 {
    let mut model = Sequential::build(spec, &mut deterministic_rng());
    model.set_params_flat(params);
    weighted_accuracy(
        &model,
        parties.iter().map(|p| (p.test_features(), p.test_labels())),
    )
}

/// Like [`evaluate_on_parties`] but over borrowed parties — scenario loops
/// evaluate a liveness-filtered view every round and must not pay a deep
/// clone of the population to do so.
pub fn evaluate_on_party_refs(spec: &ArchSpec, params: &[f32], parties: &[&Party]) -> f32 {
    let mut model = Sequential::build(spec, &mut deterministic_rng());
    model.set_params_flat(params);
    weighted_accuracy(
        &model,
        parties.iter().map(|p| (p.test_features(), p.test_labels())),
    )
}

/// Like [`evaluate_on_party_refs`] but streamed through a
/// [`PopulationView`]: parties are materialized one at a time in view
/// order and dropped after scoring, so evaluation stays O(1)-resident at
/// any population size. The accumulation order and arithmetic are
/// identical to the slice evaluators, so the result is bit-identical.
pub fn evaluate_on_view(spec: &ArchSpec, params: &[f32], view: &PopulationView<'_>) -> f32 {
    let mut model = Sequential::build(spec, &mut deterministic_rng());
    model.set_params_flat(params);
    let mut correct = 0.0f64;
    let mut total = 0usize;
    for &id in view.ids() {
        view.with_party(id, |p| {
            let y = p.test_labels();
            if y.is_empty() {
                return;
            }
            let report = model.evaluate(p.test_features(), y);
            correct += (report.accuracy as f64) * y.len() as f64;
            total += y.len();
        });
    }
    if total == 0 {
        0.0
    } else {
        (correct / total as f64) as f32
    }
}

/// Weighted accuracy over `(features, labels)` pairs.
fn weighted_accuracy<'a>(
    model: &Sequential,
    sets: impl Iterator<Item = (&'a Matrix, &'a [usize])>,
) -> f32 {
    let mut correct = 0.0f64;
    let mut total = 0usize;
    for (x, y) in sets {
        if y.is_empty() {
            continue;
        }
        let report = model.evaluate(x, y);
        correct += (report.accuracy as f64) * y.len() as f64;
        total += y.len();
    }
    if total == 0 {
        0.0
    } else {
        (correct / total as f64) as f32
    }
}

/// Fixed-seed RNG for places where randomness is structurally required by an
/// API (model construction before overwriting parameters) but must not
/// affect results.
pub(crate) fn deterministic_rng() -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(0x5417_f7ed)
}
