//! Adaptive byte-budget codec control.
//!
//! A [`CodecController`] picks one [`CodecSpec`] per `(round, stream)`
//! from a fixed ladder (densest → sparsest), against a scenario-level
//! [`BudgetSpec`] (bytes per round and/or per party). Codec wire sizes are
//! value-independent, so each rung's cost is known exactly *before*
//! anything is encoded; the controller therefore never has to re-encode to
//! decide.
//!
//! The decision rule, in order:
//!
//! 1. If the densest rung fits every cap, take it — an ample budget always
//!    degrades to the densest codec (test-pinned).
//! 2. Otherwise find the densest rung that fits. When the stream's
//!    error-feedback residual magnitude is high (compression has been
//!    dropping mass the parties still owe), spend the whole affordable
//!    budget on that rung; when it is low, step one rung sparser and bank
//!    the bytes.
//! 3. If no rung fits, take the sparsest — caps are honoured whenever any
//!    rung can honour them.
//!
//! Every input is deterministic (scenario seed, round clock, the observed
//! [`CommTotals`] ledger, EF magnitudes) and the high/low threshold is
//! dithered by a seeded hash draw over `(round, stream, bytes spent)` —
//! the same SplitMix64 discipline as churn and attack scheduling — so
//! reruns are bit-identical and `shiftex-lint`'s determinism rules hold.

use serde::{Deserialize, Serialize};

use crate::codec::CodecSpec;
use crate::comm::CommTotals;
use crate::scenario::draw_unit;

/// Salt for the controller's threshold-dither hash draws.
const SALT_CODEC: u64 = 0xc0dec;

/// Scenario-level byte budget for the adaptive codec controller.
///
/// `None` caps are unlimited; with both set, both must hold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetSpec {
    /// Cap on estimated total bytes per `(round, stream)`:
    /// `cohort × (uplink + downlink)` frame bytes.
    pub round_bytes: Option<u64>,
    /// Cap on estimated bytes per party per round (its uplink + downlink).
    pub party_bytes: Option<u64>,
}

impl BudgetSpec {
    /// No caps: the controller always picks the densest rung.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps estimated bytes per round at `bytes`.
    pub fn per_round(bytes: u64) -> Self {
        Self {
            round_bytes: Some(bytes),
            party_bytes: None,
        }
    }

    /// Caps estimated bytes per party per round at `bytes`.
    pub fn per_party(bytes: u64) -> Self {
        Self {
            round_bytes: None,
            party_bytes: Some(bytes),
        }
    }

    /// Do the estimated costs fit every configured cap?
    pub fn fits(&self, round_cost: u64, party_cost: u64) -> bool {
        self.round_bytes.is_none_or(|cap| round_cost <= cap)
            && self.party_bytes.is_none_or(|cap| party_cost <= cap)
    }
}

/// Per-round, per-stream adaptive codec choice under a [`BudgetSpec`].
///
/// The controller is pure: [`CodecController::spec_for`] is a function of
/// its construction parameters and the observed round state, holding no
/// mutable state of its own — which is what makes adaptive runs resumable
/// and rerun-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodecController {
    seed: u64,
    budget: BudgetSpec,
    /// Candidate specs, densest first. Invariant: per-coordinate wire cost
    /// is non-increasing along the ladder (checked in debug builds).
    ladder: Vec<CodecSpec>,
    /// Mean-|EF-residual| level separating "owes mass, spend dense" from
    /// "residual quiet, bank bytes" (dithered ±50 % per decision).
    ef_threshold: f32,
}

impl CodecController {
    /// Builds a controller on the default ladder: delta-dense →
    /// delta-quant8(256) → EF-delta-top-k(5 %) → EF-delta-top-k(1 %).
    pub fn new(seed: u64, budget: BudgetSpec) -> Self {
        Self::with_ladder(
            seed,
            budget,
            vec![
                CodecSpec::dense().with_delta(),
                CodecSpec::quant8(256).with_delta(),
                CodecSpec::topk(0.05).with_delta().with_error_feedback(),
                CodecSpec::topk(0.01).with_delta().with_error_feedback(),
            ],
        )
    }

    /// Builds a controller on a custom non-empty ladder (densest first).
    pub fn with_ladder(seed: u64, budget: BudgetSpec, ladder: Vec<CodecSpec>) -> Self {
        assert!(!ladder.is_empty(), "controller ladder must be non-empty");
        Self {
            seed,
            budget,
            ladder,
            ef_threshold: 0.01,
        }
    }

    /// Replaces the EF-magnitude threshold (default 0.01 mean |residual|).
    pub fn with_ef_threshold(mut self, threshold: f32) -> Self {
        self.ef_threshold = threshold;
        self
    }

    /// The candidate specs, densest first.
    pub fn ladder(&self) -> &[CodecSpec] {
        &self.ladder
    }

    /// The configured budget.
    pub fn budget(&self) -> &BudgetSpec {
        &self.budget
    }

    /// Estimated `(round, party)` byte cost of `spec` for a cohort of
    /// `cohort` parties on an `n_params`-parameter stream: one downlink
    /// frame plus one uplink frame per member. Exact by construction —
    /// codec sizes are value-independent.
    pub fn estimated_cost(spec: &CodecSpec, cohort: usize, n_params: usize) -> (u64, u64) {
        let party = (spec.broadcast_len(n_params) + spec.update_len(n_params)) as u64;
        (party * cohort as u64, party)
    }

    /// Picks the spec for stream `stream` in round `round`, given the
    /// cohort size, the model size, the observed ledger snapshot, and the
    /// stream's mean-|EF-residual| magnitude. Deterministic in its inputs.
    pub fn spec_for(
        &self,
        round: usize,
        stream: usize,
        cohort: usize,
        n_params: usize,
        totals: &CommTotals,
        ef_magnitude: f32,
    ) -> CodecSpec {
        let costs: Vec<(u64, u64)> = self
            .ladder
            .iter()
            .map(|spec| Self::estimated_cost(spec, cohort, n_params))
            .collect();
        if self.budget.fits(costs[0].0, costs[0].1) {
            // Ample budget: densest rung, unconditionally.
            return self.ladder[0];
        }
        let Some(densest_fit) = (0..self.ladder.len()).find(|&i| {
            let (r, p) = costs[i];
            self.budget.fits(r, p)
        }) else {
            // Nothing fits: the sparsest rung is the best we can do.
            return self.ladder[self.ladder.len() - 1];
        };
        // Threshold dither keyed on (round, stream, bytes spent so far):
        // the decision is hash-derived from the scenario seed and the
        // observed ledger, never from ambient state.
        let spent = totals.up_bytes
            + totals.down_bytes
            + totals.first_contact_down_bytes
            + totals.join_chunk_down_bytes;
        let dither = draw_unit(
            self.seed,
            SALT_CODEC,
            (round as u64) << 16 | stream as u64,
            spent,
        );
        let tau = self.ef_threshold * (0.5 + dither);
        if ef_magnitude > tau {
            // The residual says compression has been withholding mass the
            // parties still owe: spend the densest affordable rung.
            self.ladder[densest_fit]
        } else {
            // Residual quiet: step one rung sparser and bank the bytes.
            self.ladder[(densest_fit + 1).min(self.ladder.len() - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(budget: BudgetSpec) -> CodecController {
        CodecController::new(7, budget)
    }

    #[test]
    fn ample_budget_degrades_to_densest() {
        let c = ctl(BudgetSpec::unlimited());
        let t = CommTotals::default();
        for round in 1..6 {
            for ef in [0.0f32, 1.0] {
                assert_eq!(
                    c.spec_for(round, 0, 10, 1000, &t, ef),
                    CodecSpec::dense().with_delta()
                );
            }
        }
    }

    #[test]
    fn binding_budget_never_exceeds_caps() {
        // Cap at roughly the quant8 level for 10×1000 params.
        let quant = CodecSpec::quant8(256).with_delta();
        let (round_cost, _) = CodecController::estimated_cost(&quant, 10, 1000);
        let budget = BudgetSpec::per_round(round_cost);
        let c = ctl(budget);
        let t = CommTotals::default();
        for round in 1..8 {
            for ef in [0.0f32, 0.5] {
                let spec = c.spec_for(round, 0, 10, 1000, &t, ef);
                let (r, p) = CodecController::estimated_cost(&spec, 10, 1000);
                assert!(budget.fits(r, p), "round {round} ef {ef}: {spec} busts cap");
            }
        }
    }

    #[test]
    fn ef_magnitude_picks_between_affordable_rungs() {
        let quant = CodecSpec::quant8(256).with_delta();
        let (round_cost, _) = CodecController::estimated_cost(&quant, 10, 1000);
        let c = ctl(BudgetSpec::per_round(round_cost));
        let t = CommTotals::default();
        // Loud residual: densest affordable rung (quant8).
        assert_eq!(c.spec_for(1, 0, 10, 1000, &t, 10.0), quant);
        // Quiet residual: one rung sparser.
        assert_eq!(
            c.spec_for(1, 0, 10, 1000, &t, 0.0),
            CodecSpec::topk(0.05).with_delta().with_error_feedback()
        );
    }

    #[test]
    fn impossible_budget_falls_to_sparsest() {
        let c = ctl(BudgetSpec::per_party(1));
        let t = CommTotals::default();
        assert_eq!(
            c.spec_for(1, 0, 10, 1000, &t, 0.3),
            CodecSpec::topk(0.01).with_delta().with_error_feedback()
        );
    }

    #[test]
    fn decisions_are_rerun_identical() {
        let mk = || ctl(BudgetSpec::per_round(50_000));
        let t = CommTotals {
            up_bytes: 12_345,
            down_bytes: 6_789,
            ..Default::default()
        };
        for round in 1..10 {
            for stream in 0..3 {
                assert_eq!(
                    mk().spec_for(round, stream, 10, 2000, &t, 0.01),
                    mk().spec_for(round, stream, 10, 2000, &t, 0.01)
                );
            }
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Whenever any rung fits the caps, the chosen spec fits the caps —
        /// across arbitrary budgets, cohort sizes, models, and signals.
        #[test]
        fn prop_controller_never_exceeds_a_satisfiable_budget(
            seed in 0u64..1000,
            round_cap in proptest::option::of(1_000u64..2_000_000),
            party_cap in proptest::option::of(100u64..200_000),
            round in 1usize..50,
            stream in 0usize..4,
            cohort in 1usize..50,
            n_params in 1usize..5000,
            ef in 0.0f32..1.0,
            spent in 0u64..10_000_000,
        ) {
            let budget = BudgetSpec { round_bytes: round_cap, party_bytes: party_cap };
            let c = CodecController::new(seed, budget);
            let t = CommTotals { up_bytes: spent, ..Default::default() };
            let spec = c.spec_for(round, stream, cohort, n_params, &t, ef);
            let any_fits = c.ladder().iter().any(|s| {
                let (r, p) = CodecController::estimated_cost(s, cohort, n_params);
                budget.fits(r, p)
            });
            let (r, p) = CodecController::estimated_cost(&spec, cohort, n_params);
            prop_assert!(
                !any_fits || budget.fits(r, p),
                "{spec} busts a satisfiable budget {budget:?}"
            );
        }

        /// No caps → the densest rung, regardless of every other input.
        #[test]
        fn prop_unlimited_budget_always_picks_densest(
            seed in 0u64..1000,
            round in 1usize..50,
            cohort in 1usize..100,
            n_params in 1usize..5000,
            ef in 0.0f32..1.0,
        ) {
            let c = CodecController::new(seed, BudgetSpec::unlimited());
            let t = CommTotals::default();
            let spec = c.spec_for(round, 0, cohort, n_params, &t, ef);
            prop_assert_eq!(spec, c.ladder()[0]);
        }
    }

    #[test]
    fn ladder_costs_are_monotone_for_real_models() {
        let c = ctl(BudgetSpec::unlimited());
        let n = 2146;
        let costs: Vec<u64> = c
            .ladder()
            .iter()
            .map(|s| CodecController::estimated_cost(s, 10, n).0)
            .collect();
        for pair in costs.windows(2) {
            assert!(pair[0] > pair[1], "ladder must be densest-first: {costs:?}");
        }
    }
}
