//! Lloyd's k-means with k-means++ initialisation.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_tensor::{rngx, vector};

/// K-means configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f32,
    /// Independent k-means++ restarts; the lowest-inertia fit wins. Single
    /// restarts leave validity indices (Davies–Bouldin) hostage to seeding
    /// luck, which destabilises the k-selection sweep in
    /// [`crate::choose_k`].
    pub n_init: usize,
}

/// Result of a k-means fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Final centroids (`k` vectors; empty clusters are dropped, so the
    /// actual count may be smaller than requested).
    pub centroids: Vec<Vec<f32>>,
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f32,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Point indices grouped per cluster.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.centroids.len()];
        for (i, &c) in self.assignment.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }
}

impl KMeans {
    /// Creates a k-means configuration with defaults (`max_iter` 50,
    /// `tol` 1e-4, `n_init` 4).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            max_iter: 50,
            tol: 1e-4,
            n_init: 4,
        }
    }

    /// Fits k-means to `points` (each a feature vector of equal length),
    /// running [`KMeans::n_init`] k-means++ restarts and keeping the
    /// lowest-inertia fit. When `points.len() <= k` each point becomes its
    /// own cluster. Empty clusters are removed from the result.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, dimensions differ, or `n_init == 0`.
    pub fn fit(&self, points: &[Vec<f32>], rng: &mut impl Rng) -> KMeansResult {
        assert!(self.n_init > 0, "n_init must be positive");
        let mut best: Option<KMeansResult> = None;
        for _ in 0..self.n_init {
            let fit = self.fit_once(points, rng);
            if best.as_ref().is_none_or(|b| fit.inertia < b.inertia) {
                best = Some(fit);
            }
        }
        best.expect("n_init > 0 guarantees at least one fit")
    }

    /// One k-means++ seeded Lloyd run.
    fn fit_once(&self, points: &[Vec<f32>], rng: &mut impl Rng) -> KMeansResult {
        assert!(!points.is_empty(), "kmeans on empty point set");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "point dimension mismatch"
        );
        let k = self.k.min(points.len());

        let mut centroids = plus_plus_init(points, k, rng);
        let mut assignment = vec![0usize; points.len()];
        let mut iterations = 0;
        for iter in 0..self.max_iter {
            iterations = iter + 1;
            // Assign.
            for (i, p) in points.iter().enumerate() {
                assignment[i] = nearest(p, &centroids).0;
            }
            // Update.
            let mut sums = vec![vec![0.0f32; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (p, &a) in points.iter().zip(assignment.iter()) {
                vector::axpy(&mut sums[a], 1.0, p);
                counts[a] += 1;
            }
            let mut movement = 0.0;
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(counts.iter())) {
                if count == 0 {
                    continue; // keep old centroid; may be dropped below
                }
                let new: Vec<f32> = sum.iter().map(|&s| s / count as f32).collect();
                movement += vector::l2_dist(c, &new);
                *c = new;
            }
            if movement < self.tol {
                break;
            }
        }

        // Final assignment, then drop empty clusters and re-index.
        for (i, p) in points.iter().enumerate() {
            assignment[i] = nearest(p, &centroids).0;
        }
        let mut used: Vec<usize> = assignment.clone();
        used.sort_unstable();
        used.dedup();
        let remap: std::collections::BTreeMap<usize, usize> = used
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let centroids: Vec<Vec<f32>> = used.iter().map(|&i| centroids[i].clone()).collect();
        for a in assignment.iter_mut() {
            *a = remap[a];
        }
        let inertia = points
            .iter()
            .zip(assignment.iter())
            .map(|(p, &a)| vector::sq_dist(p, &centroids[a]))
            .sum();
        KMeansResult {
            centroids,
            assignment,
            inertia,
            iterations,
        }
    }
}

/// k-means++ seeding: first centre uniform, subsequent centres with
/// probability proportional to squared distance to the nearest chosen one.
///
/// Keeps a running nearest-centroid distance per point and folds in only the
/// newest centre each round — O(n·k·d) total instead of the O(n·k²·d) of
/// recomputing all distances per round, with identical sampling weights
/// (`min` over the same values, accumulated incrementally).
fn plus_plus_init(points: &[Vec<f32>], k: usize, rng: &mut impl Rng) -> Vec<Vec<f32>> {
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    let mut d2: Vec<f32> = points
        .iter()
        .map(|p| vector::sq_dist(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f32 = d2.iter().sum();
        let next = if total <= 1e-12 {
            // All points coincide with chosen centroids; pick uniformly.
            points[rng.random_range(0..points.len())].clone()
        } else {
            points[rngx::categorical(rng, &d2)].clone()
        };
        for (best, p) in d2.iter_mut().zip(points.iter()) {
            *best = best.min(vector::sq_dist(p, &next));
        }
        centroids.push(next);
    }
    centroids
}

/// Returns `(index, squared distance)` of the closest centroid.
fn nearest(p: &[f32], centroids: &[Vec<f32>]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = vector::sq_dist(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs(n_per: usize, sep: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::new();
        for i in 0..2 * n_per {
            let center = if i < n_per { 0.0 } else { sep };
            points.push(vec![
                center + rngx::normal(&mut rng, 0.0, 0.3),
                center + rngx::normal(&mut rng, 0.0, 0.3),
            ]);
        }
        points
    }

    #[test]
    fn separates_two_blobs() {
        let points = two_blobs(20, 8.0, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let result = KMeans::new(2).fit(&points, &mut rng);
        assert_eq!(result.centroids.len(), 2);
        // All members of each blob share a cluster.
        let first = result.assignment[0];
        assert!(result.assignment[..20].iter().all(|&a| a == first));
        assert!(result.assignment[20..].iter().all(|&a| a != first));
    }

    #[test]
    fn k_larger_than_points_degrades_gracefully() {
        let points = vec![vec![0.0], vec![5.0]];
        let mut rng = StdRng::seed_from_u64(2);
        let result = KMeans::new(10).fit(&points, &mut rng);
        assert!(result.centroids.len() <= 2);
        assert_eq!(result.assignment.len(), 2);
    }

    #[test]
    fn identical_points_collapse_to_one_cluster_worth_of_inertia() {
        let points = vec![vec![1.0, 1.0]; 12];
        let mut rng = StdRng::seed_from_u64(3);
        let result = KMeans::new(3).fit(&points, &mut rng);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn groups_partition_points() {
        let points = two_blobs(10, 6.0, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let result = KMeans::new(2).fit(&points, &mut rng);
        let groups = result.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, points.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every point is assigned to its nearest final centroid.
        #[test]
        fn prop_assignment_is_nearest_centroid(seed in 0u64..500, k in 1usize..5) {
            let points = two_blobs(8, 5.0, seed);
            let mut rng = StdRng::seed_from_u64(seed + 1);
            let result = KMeans::new(k).fit(&points, &mut rng);
            for (p, &a) in points.iter().zip(result.assignment.iter()) {
                let (nearest_idx, _) = super::nearest(p, &result.centroids);
                let d_assigned = shiftex_tensor::vector::sq_dist(p, &result.centroids[a]);
                let d_nearest = shiftex_tensor::vector::sq_dist(p, &result.centroids[nearest_idx]);
                prop_assert!(d_assigned <= d_nearest + 1e-5);
            }
        }

        /// Inertia never increases when k grows (given same data/seed family).
        #[test]
        fn prop_inertia_nonincreasing_in_k(seed in 0u64..200) {
            let points = two_blobs(12, 4.0, seed);
            let fit = |k: usize| {
                let mut best = f32::INFINITY;
                // Best of 3 restarts to smooth out seeding noise.
                for s in 0..3u64 {
                    let mut rng = StdRng::seed_from_u64(seed * 10 + s);
                    best = best.min(KMeans::new(k).fit(&points, &mut rng).inertia);
                }
                best
            };
            prop_assert!(fit(3) <= fit(1) + 1e-3);
        }
    }
}
