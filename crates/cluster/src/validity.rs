//! Cluster-validity indices: Davies–Bouldin (used by the paper to pick the
//! number of covariate clusters) and silhouette (used by tests/ablations).

use shiftex_tensor::vector;

/// Davies–Bouldin index: mean over clusters of the worst
/// `(σ_i + σ_j) / d(c_i, c_j)` ratio. **Lower is better.**
///
/// Returns `0.0` for fewer than two clusters (a single regime is perfectly
/// "separated" by convention, matching how ShiftEx treats an unsplit cohort).
///
/// # Panics
///
/// Panics if `assignment.len() != points.len()` or an assignment index is
/// out of range.
pub fn davies_bouldin(points: &[Vec<f32>], assignment: &[usize], centroids: &[Vec<f32>]) -> f32 {
    assert_eq!(points.len(), assignment.len(), "assignment length mismatch");
    let k = centroids.len();
    if k < 2 {
        return 0.0;
    }
    // Mean intra-cluster distance to centroid (σ_i).
    let mut scatter = vec![0.0f32; k];
    let mut counts = vec![0usize; k];
    for (p, &a) in points.iter().zip(assignment.iter()) {
        assert!(a < k, "assignment index {a} out of range");
        scatter[a] += vector::l2_dist(p, &centroids[a]);
        counts[a] += 1;
    }
    for (s, &c) in scatter.iter_mut().zip(counts.iter()) {
        if c > 0 {
            *s /= c as f32;
        }
    }
    let mut total = 0.0;
    for i in 0..k {
        let mut worst = 0.0f32;
        for j in 0..k {
            if i == j {
                continue;
            }
            let sep = vector::l2_dist(&centroids[i], &centroids[j]).max(1e-12);
            worst = worst.max((scatter[i] + scatter[j]) / sep);
        }
        total += worst;
    }
    total / k as f32
}

/// Mean silhouette coefficient in `[-1, 1]`. **Higher is better.**
///
/// Returns `0.0` for fewer than two clusters or trivially small inputs.
///
/// # Panics
///
/// Panics if `assignment.len() != points.len()`.
pub fn silhouette(points: &[Vec<f32>], assignment: &[usize]) -> f32 {
    assert_eq!(points.len(), assignment.len(), "assignment length mismatch");
    let k = assignment.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 || points.len() < 3 {
        return 0.0;
    }
    let mut total = 0.0f32;
    let mut counted = 0usize;
    for (i, p) in points.iter().enumerate() {
        // Mean distance to own cluster (a) and nearest other cluster (b).
        let mut dist_sum = vec![0.0f32; k];
        let mut dist_count = vec![0usize; k];
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            dist_sum[assignment[j]] += vector::l2_dist(p, q);
            dist_count[assignment[j]] += 1;
        }
        let own = assignment[i];
        if dist_count[own] == 0 {
            continue; // singleton cluster: silhouette undefined, skip
        }
        let a = dist_sum[own] / dist_count[own] as f32;
        let mut b = f32::INFINITY;
        for c in 0..k {
            if c != own && dist_count[c] > 0 {
                b = b.min(dist_sum[c] / dist_count[c] as f32);
            }
        }
        if b.is_finite() {
            total += (b - a) / a.max(b).max(1e-12);
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(sep: f32) -> (Vec<Vec<f32>>, Vec<usize>, Vec<Vec<f32>>) {
        let mut points = Vec::new();
        let mut assignment = Vec::new();
        for i in 0..10 {
            points.push(vec![0.0 + (i as f32) * 0.01]);
            assignment.push(0);
        }
        for i in 0..10 {
            points.push(vec![sep + (i as f32) * 0.01]);
            assignment.push(1);
        }
        let centroids = vec![vec![0.045], vec![sep + 0.045]];
        (points, assignment, centroids)
    }

    #[test]
    fn db_index_lower_for_better_separation() {
        let (p1, a1, c1) = blobs(10.0);
        let (p2, a2, c2) = blobs(0.5);
        let good = davies_bouldin(&p1, &a1, &c1);
        let bad = davies_bouldin(&p2, &a2, &c2);
        assert!(
            good < bad,
            "well-separated DB {good} should be < overlapping DB {bad}"
        );
    }

    #[test]
    fn db_index_zero_for_single_cluster() {
        let points = vec![vec![0.0], vec![1.0]];
        assert_eq!(davies_bouldin(&points, &[0, 0], &[vec![0.5]]), 0.0);
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let (p, a, _) = blobs(10.0);
        assert!(silhouette(&p, &a) > 0.8);
    }

    #[test]
    fn silhouette_low_for_overlapping_blobs() {
        let (p, a, _) = blobs(0.05);
        assert!(silhouette(&p, &a) < 0.5);
    }

    #[test]
    fn silhouette_zero_for_single_cluster() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        assert_eq!(silhouette(&points, &[0, 0, 0]), 0.0);
    }
}
