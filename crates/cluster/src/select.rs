//! Cluster-count selection: Davies–Bouldin index with the elbow method,
//! the rule the paper uses in place of hand-tuning the expert-creation cost
//! λ ("we rely on clustering quality metrics, applying the Davies–Bouldin
//! Index with the elbow method", §5.2.2).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::kmeans::{KMeans, KMeansResult};
use crate::validity::davies_bouldin;

/// Outcome of a k sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KSelection {
    /// Chosen number of clusters.
    pub k: usize,
    /// The fit at the chosen k.
    pub result: KMeansResult,
    /// Davies–Bouldin index per candidate k (index 0 ↔ k = 1).
    pub db_scores: Vec<f32>,
    /// Inertia per candidate k (for the elbow criterion).
    pub inertias: Vec<f32>,
}

/// Davies–Bouldin value below which a multi-cluster split is considered
/// genuinely separated. A 2-way split of a single Gaussian blob scores
/// ≈ 1.2; well-separated regimes score ≪ 1.
pub const DB_ACCEPT: f32 = 0.8;

/// Elbow criterion: a multi-cluster solution must collapse inertia to at
/// most this fraction of the k = 1 inertia. Splitting one homogeneous blob
/// removes only ~30 % of inertia per added cluster and fails this test,
/// while genuinely multi-regime data collapses by orders of magnitude.
pub const ELBOW_FRAC: f32 = 0.1;

/// Sweeps `k = 1..=k_max`, scoring each fit with the Davies–Bouldin index,
/// and picks the best k.
///
/// A multi-cluster solution is accepted only when its DB index clears
/// [`DB_ACCEPT`] *and* the elbow criterion [`ELBOW_FRAC`] holds; among
/// near-tied DB scores the smallest k wins (parsimony). This is the rule
/// that stands in for hand-tuning the expert-creation cost λ in Eq. 2
/// (§5.2.2 of the paper).
///
/// # Panics
///
/// Panics if `points` is empty or `k_max == 0`.
pub fn choose_k(points: &[Vec<f32>], k_max: usize, rng: &mut impl Rng) -> KSelection {
    assert!(!points.is_empty(), "choose_k on empty point set");
    assert!(k_max > 0, "k_max must be positive");
    // Cap k so clusters average ≥ 2 points: singleton-heavy solutions have
    // zero scatter, which makes both DB (0) and inertia (0) degenerately
    // "perfect" without describing any real regime structure.
    let k_max = k_max.min(points.len() / 2).max(1);

    let mut fits: Vec<KMeansResult> = Vec::with_capacity(k_max);
    let mut db_scores = Vec::with_capacity(k_max);
    let mut inertias = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        let fit = KMeans::new(k).fit(points, rng);
        db_scores.push(davies_bouldin(points, &fit.assignment, &fit.centroids));
        inertias.push(fit.inertia);
        fits.push(fit);
    }

    // Multi-cluster candidates must pass both quality gates.
    let admissible = |cand: usize| {
        db_scores[cand] <= DB_ACCEPT && inertias[cand] <= ELBOW_FRAC * inertias[0].max(1e-12)
    };
    let mut best = 0usize; // index into fits (k = index + 1); 0 means k = 1
    let min_db = (1..fits.len())
        .filter(|&c| admissible(c))
        .map(|c| db_scores[c])
        .fold(f32::INFINITY, f32::min);
    if min_db.is_finite() {
        // Smallest admissible k whose DB is within 10 % of the minimum.
        if let Some(cand) =
            (1..fits.len()).find(|&c| admissible(c) && db_scores[c] <= min_db * 1.1 + 1e-6)
        {
            best = cand;
        }
    }
    KSelection {
        k: best + 1,
        result: fits.swap_remove(best),
        db_scores,
        inertias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shiftex_tensor::rngx;

    fn blobs(centers: &[f32], n_per: usize, std: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for &c in centers {
            for _ in 0..n_per {
                out.push(vec![
                    c + rngx::normal(&mut rng, 0.0, std),
                    c + rngx::normal(&mut rng, 0.0, std),
                ]);
            }
        }
        out
    }

    #[test]
    fn finds_three_separated_blobs() {
        let points = blobs(&[0.0, 10.0, 20.0], 15, 0.3, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = choose_k(&points, 6, &mut rng);
        assert_eq!(sel.k, 3, "db scores {:?}", sel.db_scores);
    }

    #[test]
    fn single_blob_stays_one_cluster() {
        let points = blobs(&[0.0], 30, 0.5, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let sel = choose_k(&points, 5, &mut rng);
        assert_eq!(sel.k, 1, "inertias {:?}", sel.inertias);
    }

    #[test]
    fn two_blobs_give_two() {
        let points = blobs(&[0.0, 8.0], 20, 0.4, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let sel = choose_k(&points, 5, &mut rng);
        assert_eq!(sel.k, 2);
    }

    #[test]
    fn k_max_respected() {
        let points = blobs(&[0.0, 5.0, 10.0, 15.0], 10, 0.2, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let sel = choose_k(&points, 2, &mut rng);
        assert!(sel.k <= 2);
    }

    #[test]
    fn selection_reports_sweep_metadata() {
        let points = blobs(&[0.0, 9.0], 10, 0.3, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let sel = choose_k(&points, 4, &mut rng);
        assert_eq!(sel.db_scores.len(), 4);
        assert_eq!(sel.inertias.len(), 4);
        // Inertia at chosen k should be far below k=1.
        assert!(sel.inertias[sel.k - 1] < sel.inertias[0]);
    }
}
