//! K-means clustering with cluster-count selection, as used by ShiftEx's
//! aggregator (§5.2.1 of the paper): shifted parties are grouped by their
//! latent representations with k-means, and the number of clusters is chosen
//! with the Davies–Bouldin index combined with the elbow method.
//!
//! # Example
//!
//! ```
//! use shiftex_cluster::{KMeans, choose_k};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // Two obvious groups on a line.
//! let points: Vec<Vec<f32>> = (0..20)
//!     .map(|i| vec![if i < 10 { 0.0 } else { 10.0 } + (i % 10) as f32 * 0.01])
//!     .collect();
//! let result = KMeans::new(2).fit(&points, &mut rng);
//! assert_eq!(result.centroids.len(), 2);
//! let pick = choose_k(&points, 4, &mut rng);
//! assert_eq!(pick.k, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kmeans;
mod select;
mod validity;

pub use kmeans::{KMeans, KMeansResult};
pub use select::{choose_k, KSelection, DB_ACCEPT, ELBOW_FRAC};
pub use validity::{davies_bouldin, silhouette};
