//! Distribution regimes: the unit of covariate/label shift.
//!
//! A [`Regime`] describes the data-generating condition of one party in one
//! window: an optional covariate corruption or transform, and an optional
//! label distribution. Two parties in the same regime experience the same
//! kind of shift — the recurring-regime structure ShiftEx's latent memory
//! exploits.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::corruption::Corruption;
use crate::dataset::Dataset;
use crate::transform::Transform;

/// Opaque regime identifier, used by shift schedules and expert bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegimeId(pub u32);

impl std::fmt::Display for RegimeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regime#{}", self.0)
    }
}

/// The covariate component of a regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CovariateSpec {
    /// Clean inputs.
    Clear,
    /// Corruption at a fixed severity.
    Corrupted(Corruption, u8),
    /// A chain of geometric/photometric transforms.
    Transformed(Vec<Transform>),
}

/// A data-generating condition: covariate spec + optional label distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regime {
    /// Identifier (stable across windows for recurring regimes).
    pub id: RegimeId,
    /// Covariate condition.
    pub covariate: CovariateSpec,
    /// Optional class-probability vector (label shift); `None` = uniform.
    pub label_dist: Option<Vec<f32>>,
}

impl Regime {
    /// Clean regime with uniform labels.
    pub fn clear() -> Self {
        Self {
            id: RegimeId(0),
            covariate: CovariateSpec::Clear,
            label_dist: None,
        }
    }

    /// Corruption regime with uniform labels.
    pub fn corrupted(corruption: Corruption, severity: u8) -> Self {
        Self {
            id: RegimeId(1),
            covariate: CovariateSpec::Corrupted(corruption, severity),
            label_dist: None,
        }
    }

    /// Transform-chain regime with uniform labels.
    pub fn transformed(transforms: Vec<Transform>) -> Self {
        Self {
            id: RegimeId(1),
            covariate: CovariateSpec::Transformed(transforms),
            label_dist: None,
        }
    }

    /// Returns a copy with the given id.
    pub fn with_id(mut self, id: RegimeId) -> Self {
        self.id = id;
        self
    }

    /// Returns a copy with the given label distribution.
    ///
    /// # Panics
    ///
    /// Panics if `dist` is empty or has non-positive mass.
    pub fn with_label_dist(mut self, dist: Vec<f32>) -> Self {
        assert!(!dist.is_empty(), "label distribution must be non-empty");
        assert!(
            dist.iter().sum::<f32>() > 0.0,
            "label distribution needs positive mass"
        );
        self.label_dist = Some(dist);
        self
    }

    /// Class weights for sampling, or `None` for uniform.
    ///
    /// # Panics
    ///
    /// Panics if a stored distribution's length disagrees with `num_classes`.
    pub fn label_weights(&self, num_classes: usize) -> Option<Vec<f32>> {
        self.label_dist.as_ref().map(|d| {
            assert_eq!(d.len(), num_classes, "label distribution length mismatch");
            d.clone()
        })
    }

    /// `true` if this regime perturbs the input distribution.
    pub fn has_covariate_shift(&self) -> bool {
        !matches!(self.covariate, CovariateSpec::Clear)
    }

    /// Applies the covariate component to every sample of `ds` in place.
    pub fn apply_covariate(&self, ds: &mut Dataset, rng: &mut impl Rng) {
        let shape = ds.shape();
        match &self.covariate {
            CovariateSpec::Clear => {}
            CovariateSpec::Corrupted(corruption, severity) => {
                let features = ds.features_mut();
                for r in 0..features.rows() {
                    corruption.apply(features.row_mut(r), shape, *severity, rng);
                }
            }
            CovariateSpec::Transformed(transforms) => {
                let features = ds.features_mut();
                for r in 0..features.rows() {
                    for t in transforms {
                        t.apply(features.row_mut(r), shape, rng);
                    }
                }
            }
        }
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        let cov = match &self.covariate {
            CovariateSpec::Clear => "clear".to_string(),
            CovariateSpec::Corrupted(c, s) => format!("{c}@s{s}"),
            CovariateSpec::Transformed(ts) => ts
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join("+"),
        };
        match &self.label_dist {
            Some(_) => format!("{} ({cov}, label-shifted)", self.id),
            None => format!("{} ({cov})", self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ImageShape;
    use crate::synth::PrototypeGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clear_regime_leaves_data_unchanged() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 2, &mut rng);
        let ds = g.generate_uniform(8, &mut rng);
        let mut ds2 = ds.clone();
        Regime::clear().apply_covariate(&mut ds2, &mut rng);
        assert_eq!(ds.features(), ds2.features());
    }

    #[test]
    fn corrupted_regime_changes_features_not_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 2, &mut rng);
        let ds = g.generate_uniform(8, &mut rng);
        let mut ds2 = ds.clone();
        Regime::corrupted(Corruption::Fog, 3).apply_covariate(&mut ds2, &mut rng);
        assert_ne!(ds.features(), ds2.features());
        assert_eq!(ds.labels(), ds2.labels());
    }

    #[test]
    fn label_dist_biases_generation() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        let regime = Regime::clear().with_label_dist(vec![1.0, 0.0, 0.0]);
        let ds = g.generate_with_regime(50, &regime, &mut rng);
        assert!(ds.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn describe_mentions_condition() {
        let r = Regime::corrupted(Corruption::Snow, 2).with_id(RegimeId(7));
        assert!(r.describe().contains("snow"));
        assert!(r.describe().contains('7'));
    }

    #[test]
    fn has_covariate_shift_flags() {
        assert!(!Regime::clear().has_covariate_shift());
        assert!(Regime::corrupted(Corruption::Fog, 1).has_covariate_shift());
    }
}
