//! Federated data partitioning: IID and Dirichlet label-skew splits.

use rand::Rng;
use shiftex_tensor::rngx;

use crate::dataset::Dataset;

/// Splits sample indices IID across `num_parties` (sizes differ by ≤ 1).
///
/// # Panics
///
/// Panics if `num_parties == 0`.
pub fn iid_partition(n: usize, num_parties: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
    assert!(num_parties > 0, "need at least one party");
    let mut order: Vec<usize> = (0..n).collect();
    rngx::shuffle(rng, &mut order);
    let mut parts = vec![Vec::new(); num_parties];
    for (i, idx) in order.into_iter().enumerate() {
        parts[i % num_parties].push(idx);
    }
    parts
}

/// Dirichlet label-skew partition: for each class, the class's samples are
/// split across parties with proportions drawn from `Dirichlet(alpha)`.
/// Smaller `alpha` produces more skewed (non-IID) parties — the standard
/// federated-learning heterogeneity protocol.
///
/// # Panics
///
/// Panics if `num_parties == 0` or `alpha <= 0`.
pub fn dirichlet_partition(
    dataset: &Dataset,
    num_parties: usize,
    alpha: f32,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    assert!(num_parties > 0, "need at least one party");
    assert!(alpha > 0.0, "alpha must be positive");
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
    for (i, &l) in dataset.labels().iter().enumerate() {
        per_class[l].push(i);
    }
    let mut parts = vec![Vec::new(); num_parties];
    for class_indices in per_class.iter_mut() {
        rngx::shuffle(rng, class_indices);
        let props = rngx::dirichlet(rng, alpha, num_parties);
        // Convert proportions to cumulative cut points over this class.
        let n = class_indices.len();
        let mut start = 0usize;
        let mut acc = 0.0f32;
        for (p, part) in props.iter().zip(parts.iter_mut()) {
            acc += p;
            let end = ((acc * n as f32).round() as usize).min(n);
            part.extend_from_slice(&class_indices[start..end]);
            start = end;
        }
        // Rounding may leave a tail; give it to a random party.
        if start < n {
            let k = rng.random_range(0..num_parties);
            parts[k].extend_from_slice(&class_indices[start..]);
        }
    }
    parts
}

/// Per-party class-probability vectors drawn from `Dirichlet(alpha)` — used
/// when parties *generate* windowed data rather than splitting a fixed pool.
pub fn dirichlet_label_dists(
    num_parties: usize,
    num_classes: usize,
    alpha: f32,
    rng: &mut impl Rng,
) -> Vec<Vec<f32>> {
    (0..num_parties)
        .map(|_| rngx::dirichlet(rng, alpha, num_classes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ImageShape;
    use crate::synth::PrototypeGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shiftex_tensor::stats;

    fn dataset(n: usize, classes: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = PrototypeGenerator::new(ImageShape::new(1, 4, 4), classes, &mut rng);
        g.generate_uniform(n, &mut rng)
    }

    #[test]
    fn iid_partition_covers_everything_once() {
        let mut rng = StdRng::seed_from_u64(0);
        let parts = iid_partition(103, 10, &mut rng);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        assert!(parts.iter().all(|p| p.len() == 10 || p.len() == 11));
    }

    #[test]
    fn dirichlet_partition_covers_everything_once() {
        let ds = dataset(200, 5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let parts = dirichlet_partition(&ds, 8, 0.5, &mut rng);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn small_alpha_is_more_skewed_than_large() {
        let ds = dataset(2000, 10, 3);
        let skew_of = |alpha: f32, seed: u64| -> f32 {
            let mut rng = StdRng::seed_from_u64(seed);
            let parts = dirichlet_partition(&ds, 10, alpha, &mut rng);
            // Mean max-class share across parties: higher = more skewed.
            let mut total = 0.0;
            let mut count = 0;
            for p in &parts {
                if p.is_empty() {
                    continue;
                }
                let hist = stats::label_histogram(p.iter().map(|&i| ds.labels()[i]), 10);
                total += hist.iter().cloned().fold(0.0, f32::max);
                count += 1;
            }
            total / count as f32
        };
        let skewed = skew_of(0.1, 4);
        let uniform = skew_of(100.0, 4);
        assert!(
            skewed > uniform + 0.1,
            "alpha=0.1 skew {skewed} should exceed alpha=100 skew {uniform}"
        );
    }

    #[test]
    fn label_dists_are_distributions() {
        let mut rng = StdRng::seed_from_u64(5);
        let dists = dirichlet_label_dists(6, 4, 0.5, &mut rng);
        assert_eq!(dists.len(), 6);
        for d in dists {
            assert!((d.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }
}
