//! Parametric image corruptions at five severities.
//!
//! Mirrors the construction of Tiny-ImageNet-C / CIFAR-10-C (Hendrycks &
//! Dietterich, 2019): fifteen corruption families grouped into noise, blur,
//! weather and digital categories, each applied at severity 1–5, plus `Rain`
//! which the paper's Figure 1 uses as a weather condition.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_tensor::rngx;

use crate::dataset::ImageShape;

/// Corruption family. Severity is passed at application time (1–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corruption {
    /// Additive white Gaussian noise.
    GaussianNoise,
    /// Signal-dependent (Poisson-like) noise.
    ShotNoise,
    /// Salt-and-pepper impulses.
    ImpulseNoise,
    /// Box blur (defocus).
    DefocusBlur,
    /// Blur with local pixel shuffling (glass).
    GlassBlur,
    /// Horizontal streak blur (motion).
    MotionBlur,
    /// Centre-weighted multi-scale blur (zoom).
    ZoomBlur,
    /// Additive haze field plus contrast loss.
    Fog,
    /// Diagonal bright streak occlusions.
    Rain,
    /// Bright speckle occlusions.
    Snow,
    /// Low-frequency occlusion plus desaturation.
    Frost,
    /// Global brightness offset.
    Brightness,
    /// Contrast reduction towards the mean.
    Contrast,
    /// Smooth spatial displacement (elastic).
    ElasticTransform,
    /// Block down-sampling (pixelate).
    Pixelate,
    /// Block quantisation artefacts (JPEG-like).
    JpegCompression,
}

impl Corruption {
    /// All fifteen `-C` benchmark corruption families (excludes [`Corruption::Rain`],
    /// which is an extra weather condition used by the paper's Figure 1).
    pub fn all() -> [Corruption; 15] {
        use Corruption::*;
        [
            GaussianNoise,
            ShotNoise,
            ImpulseNoise,
            DefocusBlur,
            GlassBlur,
            MotionBlur,
            ZoomBlur,
            Fog,
            Snow,
            Frost,
            Brightness,
            Contrast,
            ElasticTransform,
            Pixelate,
            JpegCompression,
        ]
    }

    /// The weather conditions of the paper's Figure 1 (clear is "no corruption").
    pub fn weather() -> [Corruption; 4] {
        [
            Corruption::Fog,
            Corruption::Rain,
            Corruption::Snow,
            Corruption::Frost,
        ]
    }

    /// Corruption *groups* used by the Tiny-ImageNet-C protocol ("we group
    /// corruption types and randomly sample severity levels across windows").
    pub fn groups() -> [&'static [Corruption]; 4] {
        use Corruption::*;
        const NOISE: &[Corruption] = &[GaussianNoise, ShotNoise, ImpulseNoise];
        const BLUR: &[Corruption] = &[DefocusBlur, GlassBlur, MotionBlur, ZoomBlur];
        const WEATHER: &[Corruption] = &[Fog, Snow, Frost, Brightness];
        const DIGITAL: &[Corruption] = &[Contrast, ElasticTransform, Pixelate, JpegCompression];
        [NOISE, BLUR, WEATHER, DIGITAL]
    }

    /// Applies the corruption to one flattened `(c, h, w)` image in place.
    ///
    /// # Panics
    ///
    /// Panics if `severity` is outside `1..=5` or the buffer length does not
    /// match `shape.dim()`.
    pub fn apply(&self, x: &mut [f32], shape: ImageShape, severity: u8, rng: &mut impl Rng) {
        assert!(
            (1..=5).contains(&severity),
            "severity must be 1..=5, got {severity}"
        );
        assert_eq!(x.len(), shape.dim(), "buffer length mismatch");
        let s = severity as f32 / 5.0; // 0.2 .. 1.0
        match self {
            Corruption::GaussianNoise => {
                for v in x.iter_mut() {
                    *v += rngx::normal(rng, 0.0, 0.8 * s);
                }
            }
            Corruption::ShotNoise => {
                for v in x.iter_mut() {
                    let scale = (v.abs() + 0.1).sqrt();
                    *v += rngx::normal(rng, 0.0, 0.7 * s * scale);
                }
            }
            Corruption::ImpulseNoise => {
                let p = 0.25 * s;
                for v in x.iter_mut() {
                    if rng.random_range(0.0..1.0) < p {
                        *v = if rng.random_range(0.0..1.0) < 0.5 {
                            2.5
                        } else {
                            -2.5
                        };
                    }
                }
            }
            Corruption::DefocusBlur => box_blur(x, shape, 1 + severity as usize / 2),
            Corruption::GlassBlur => {
                glass_shuffle(x, shape, severity as usize, rng);
                box_blur(x, shape, 1);
            }
            Corruption::MotionBlur => motion_blur(x, shape, 1 + severity as usize),
            Corruption::ZoomBlur => {
                // Blend increasingly blurred copies to mimic zoom streaking.
                let mut blurred = x.to_vec();
                box_blur(&mut blurred, shape, 1 + severity as usize);
                for (v, b) in x.iter_mut().zip(blurred.iter()) {
                    *v = (1.0 - 0.6 * s) * *v + 0.6 * s * b;
                }
            }
            Corruption::Fog => {
                // Haze blend that moves the distribution strongly while
                // keeping class structure recoverable (the blend scales signal
                // and noise equally): at severity 5 only 25 % of the raw
                // signal magnitude survives.
                let haze = smooth_noise(shape, rng);
                let t = 0.15 * severity as f32;
                for (i, v) in x.iter_mut().enumerate() {
                    *v = (1.0 - t) * *v + t * (1.4 + 0.4 * haze[i]);
                }
            }
            // Semi-transparent additive streaks: occlude without erasing.
            Corruption::Rain => streaks(x, shape, severity as usize + 1, 1.2, rng),
            Corruption::Snow => {
                // Additive speckle plus brightness lift and mild blur.
                let p = 0.12 * s;
                for v in x.iter_mut() {
                    if rng.random_range(0.0..1.0) < p {
                        *v += 1.8 + rng.random_range(0.0..0.5);
                    } else {
                        *v += 0.6 * s;
                    }
                }
                box_blur(x, shape, 1);
            }
            Corruption::Frost => {
                // Low-frequency icy occlusion + desaturation towards the
                // mean; keeps 30 % of the signal at severity 5.
                let occl = smooth_noise(shape, rng);
                let mean = shiftex_tensor::vector::mean(x);
                let t = 0.14 * severity as f32;
                for (i, v) in x.iter_mut().enumerate() {
                    let frosted = 0.6 * mean + 1.5 * occl[i].max(0.0) - 0.5;
                    *v = (1.0 - t) * *v + t * frosted;
                }
            }
            Corruption::Brightness => {
                for v in x.iter_mut() {
                    *v += 1.5 * s;
                }
            }
            Corruption::Contrast => {
                let mean = shiftex_tensor::vector::mean(x);
                let k = 1.0 - 0.8 * s;
                for v in x.iter_mut() {
                    *v = mean + k * (*v - mean);
                }
            }
            Corruption::ElasticTransform => elastic(x, shape, 1.0 + 2.0 * s, rng),
            Corruption::Pixelate => pixelate(x, shape, 1 + severity as usize),
            Corruption::JpegCompression => {
                // Coarse quantisation of pixel values in 2x2 blocks.
                pixelate(x, shape, 2);
                let q = 0.2 + 0.5 * s;
                for v in x.iter_mut() {
                    *v = (*v / q).round() * q;
                }
            }
        }
    }
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Corruption::GaussianNoise => "gaussian-noise",
            Corruption::ShotNoise => "shot-noise",
            Corruption::ImpulseNoise => "impulse-noise",
            Corruption::DefocusBlur => "defocus-blur",
            Corruption::GlassBlur => "glass-blur",
            Corruption::MotionBlur => "motion-blur",
            Corruption::ZoomBlur => "zoom-blur",
            Corruption::Fog => "fog",
            Corruption::Rain => "rain",
            Corruption::Snow => "snow",
            Corruption::Frost => "frost",
            Corruption::Brightness => "brightness",
            Corruption::Contrast => "contrast",
            Corruption::ElasticTransform => "elastic",
            Corruption::Pixelate => "pixelate",
            Corruption::JpegCompression => "jpeg",
        };
        f.write_str(s)
    }
}

/// Per-channel box blur with the given radius.
fn box_blur(x: &mut [f32], shape: ImageShape, radius: usize) {
    let (h, w) = (shape.h, shape.w);
    let mut out = vec![0.0f32; h * w];
    for c in 0..shape.c {
        let chan = &x[c * h * w..(c + 1) * h * w];
        for y in 0..h {
            for xx in 0..w {
                let mut acc = 0.0;
                let mut count = 0.0;
                for dy in -(radius as isize)..=(radius as isize) {
                    for dx in -(radius as isize)..=(radius as isize) {
                        let (ny, nx) = (y as isize + dy, xx as isize + dx);
                        if ny >= 0 && ny < h as isize && nx >= 0 && nx < w as isize {
                            acc += chan[ny as usize * w + nx as usize];
                            count += 1.0;
                        }
                    }
                }
                out[y * w + xx] = acc / count;
            }
        }
        x[c * h * w..(c + 1) * h * w].copy_from_slice(&out);
    }
}

/// Horizontal-only blur imitating motion streaks.
fn motion_blur(x: &mut [f32], shape: ImageShape, length: usize) {
    let (h, w) = (shape.h, shape.w);
    let mut out = vec![0.0f32; h * w];
    for c in 0..shape.c {
        let chan = &x[c * h * w..(c + 1) * h * w];
        for y in 0..h {
            for xx in 0..w {
                let mut acc = 0.0f32;
                let mut count = 0.0f32;
                for d in 0..length {
                    if xx + d < w {
                        acc += chan[y * w + xx + d];
                        count += 1.0;
                    }
                }
                out[y * w + xx] = acc / count.max(1.0);
            }
        }
        x[c * h * w..(c + 1) * h * w].copy_from_slice(&out);
    }
}

/// Swaps nearby pixels, as in glass blur.
fn glass_shuffle(x: &mut [f32], shape: ImageShape, reach: usize, rng: &mut impl Rng) {
    let (h, w) = (shape.h, shape.w);
    for c in 0..shape.c {
        let base = c * h * w;
        for y in 0..h {
            for xx in 0..w {
                let dy = rng.random_range(0..=reach.min(h - 1));
                let dx = rng.random_range(0..=reach.min(w - 1));
                let ny = (y + dy).min(h - 1);
                let nx = (xx + dx).min(w - 1);
                x.swap(base + y * w + xx, base + ny * w + nx);
            }
        }
    }
}

/// Adds bright diagonal streaks (rain); additive so the underlying signal
/// survives beneath the occlusion.
fn streaks(x: &mut [f32], shape: ImageShape, count: usize, intensity: f32, rng: &mut impl Rng) {
    let (h, w) = (shape.h, shape.w);
    for _ in 0..count {
        let mut y = 0usize;
        let mut xx = rng.random_range(0..w);
        while y < h {
            for c in 0..shape.c {
                x[c * h * w + y * w + xx] += intensity;
            }
            y += 1;
            xx = (xx + 1) % w;
        }
    }
}

/// Smooth low-frequency noise field in roughly `[-1, 1]`.
fn smooth_noise(shape: ImageShape, rng: &mut impl Rng) -> Vec<f32> {
    const COARSE: usize = 3;
    let grid: Vec<f32> = (0..COARSE * COARSE)
        .map(|_| rngx::normal(rng, 0.0, 0.6))
        .collect();
    let mut out = vec![0.0f32; shape.dim()];
    for c in 0..shape.c {
        for y in 0..shape.h {
            for xx in 0..shape.w {
                let gy = y as f32 / shape.h.max(1) as f32 * (COARSE - 1) as f32;
                let gx = xx as f32 / shape.w.max(1) as f32 * (COARSE - 1) as f32;
                let (y0, x0) = (gy.floor() as usize, gx.floor() as usize);
                let (y1, x1) = ((y0 + 1).min(COARSE - 1), (x0 + 1).min(COARSE - 1));
                let (fy, fx) = (gy - y0 as f32, gx - x0 as f32);
                out[c * shape.h * shape.w + y * shape.w + xx] =
                    grid[y0 * COARSE + x0] * (1.0 - fy) * (1.0 - fx)
                        + grid[y0 * COARSE + x1] * (1.0 - fy) * fx
                        + grid[y1 * COARSE + x0] * fy * (1.0 - fx)
                        + grid[y1 * COARSE + x1] * fy * fx;
            }
        }
    }
    out
}

/// Smooth random displacement of pixels.
fn elastic(x: &mut [f32], shape: ImageShape, magnitude: f32, rng: &mut impl Rng) {
    let (h, w) = (shape.h, shape.w);
    let field = smooth_noise(shape, rng);
    let orig = x.to_vec();
    for c in 0..shape.c {
        let base = c * h * w;
        for y in 0..h {
            for xx in 0..w {
                let d = field[base + y * w + xx] * magnitude;
                let sy = ((y as f32 + d).round() as isize).clamp(0, h as isize - 1) as usize;
                let sx = ((xx as f32 - d).round() as isize).clamp(0, w as isize - 1) as usize;
                x[base + y * w + xx] = orig[base + sy * w + sx];
            }
        }
    }
}

/// Replaces each `block × block` tile with its mean.
fn pixelate(x: &mut [f32], shape: ImageShape, block: usize) {
    let (h, w) = (shape.h, shape.w);
    for c in 0..shape.c {
        let base = c * h * w;
        let mut y = 0;
        while y < h {
            let mut xx = 0;
            while xx < w {
                let mut acc = 0.0;
                let mut count = 0.0;
                for dy in 0..block.min(h - y) {
                    for dx in 0..block.min(w - xx) {
                        acc += x[base + (y + dy) * w + xx + dx];
                        count += 1.0;
                    }
                }
                let mean = acc / count;
                for dy in 0..block.min(h - y) {
                    for dx in 0..block.min(w - xx) {
                        x[base + (y + dy) * w + xx + dx] = mean;
                    }
                }
                xx += block;
            }
            y += block;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shiftex_tensor::vector;

    fn image(shape: ImageShape, rng: &mut StdRng) -> Vec<f32> {
        (0..shape.dim())
            .map(|_| rngx::normal(rng, 0.0, 1.0))
            .collect()
    }

    #[test]
    fn every_corruption_changes_the_image() {
        let shape = ImageShape::new(1, 8, 8);
        for &c in Corruption::all().iter().chain([Corruption::Rain].iter()) {
            let mut rng = StdRng::seed_from_u64(11);
            let orig = image(shape, &mut rng);
            let mut x = orig.clone();
            c.apply(&mut x, shape, 3, &mut rng);
            let d = vector::l2_dist(&orig, &x);
            assert!(d > 1e-3, "{c} left the image unchanged");
            assert!(
                x.iter().all(|v| v.is_finite()),
                "{c} produced non-finite values"
            );
        }
    }

    #[test]
    fn severity_increases_distortion_for_noise() {
        let shape = ImageShape::new(1, 8, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let orig = image(shape, &mut rng);
        let mut mild = orig.clone();
        Corruption::GaussianNoise.apply(&mut mild, shape, 1, &mut StdRng::seed_from_u64(1));
        let mut severe = orig.clone();
        Corruption::GaussianNoise.apply(&mut severe, shape, 5, &mut StdRng::seed_from_u64(1));
        assert!(vector::l2_dist(&orig, &severe) > vector::l2_dist(&orig, &mild));
    }

    #[test]
    fn contrast_moves_pixels_towards_mean() {
        let shape = ImageShape::new(1, 2, 2);
        let mut x = vec![-2.0, -1.0, 1.0, 2.0];
        let mut rng = StdRng::seed_from_u64(0);
        Corruption::Contrast.apply(&mut x, shape, 5, &mut rng);
        assert!(x.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn brightness_shifts_mean_up() {
        let shape = ImageShape::new(1, 2, 2);
        let mut x = vec![0.0; 4];
        let mut rng = StdRng::seed_from_u64(0);
        Corruption::Brightness.apply(&mut x, shape, 3, &mut rng);
        assert!(vector::mean(&x) > 0.5);
    }

    #[test]
    fn groups_cover_all_corruptions() {
        let mut seen: Vec<Corruption> = Corruption::groups()
            .iter()
            .flat_map(|g| g.iter().copied())
            .collect();
        seen.sort_by_key(|c| format!("{c}"));
        seen.dedup();
        assert_eq!(seen.len(), 15, "groups should cover the 15 -C families");
    }

    #[test]
    #[should_panic(expected = "severity must be 1..=5")]
    fn rejects_bad_severity() {
        let shape = ImageShape::new(1, 2, 2);
        let mut x = vec![0.0; 4];
        let mut rng = StdRng::seed_from_u64(0);
        Corruption::Fog.apply(&mut x, shape, 0, &mut rng);
    }
}
