//! Dataset registry: the five evaluation datasets of the paper, as synthetic
//! profiles with matching shift structure, party counts and windowing modes.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::corruption::Corruption;
use crate::dataset::ImageShape;
use crate::shift::{Regime, RegimeId};
use crate::transform::Transform;

/// The five evaluation datasets (§6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Functional Map of the World: satellite land use, natural shifts.
    Fmow,
    /// Tiny-ImageNet-C: grouped corruptions at random severities.
    TinyImagenetC,
    /// CIFAR-10-C: weather corruptions.
    Cifar10C,
    /// FEMNIST: handwritten characters, synthetic transform shifts.
    Femnist,
    /// Fashion-MNIST: clothing images, synthetic transform shifts.
    FashionMnist,
}

impl DatasetKind {
    /// All five datasets in paper order.
    pub fn all() -> [DatasetKind; 5] {
        [
            DatasetKind::Fmow,
            DatasetKind::TinyImagenetC,
            DatasetKind::Cifar10C,
            DatasetKind::Femnist,
            DatasetKind::FashionMnist,
        ]
    }

    /// Parses a dataset name (kebab or lower-case, as used by the CLI).
    pub fn parse(s: &str) -> Option<DatasetKind> {
        match s.to_ascii_lowercase().as_str() {
            "fmow" => Some(DatasetKind::Fmow),
            "tinyimagenetc" | "tiny-imagenet-c" | "tinyimagenet-c" => {
                Some(DatasetKind::TinyImagenetC)
            }
            "cifar10c" | "cifar-10-c" => Some(DatasetKind::Cifar10C),
            "femnist" => Some(DatasetKind::Femnist),
            "fashionmnist" | "fashion-mnist" => Some(DatasetKind::FashionMnist),
            _ => None,
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fmt_impl!();
}

macro_rules! fmt_impl {
    () => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let s = match self {
                DatasetKind::Fmow => "FMoW",
                DatasetKind::TinyImagenetC => "TinyImagenet-C",
                DatasetKind::Cifar10C => "CIFAR-10-C",
                DatasetKind::Femnist => "FEMNIST",
                DatasetKind::FashionMnist => "FashionMNIST",
            };
            f.write_str(s)
        }
    };
}
use fmt_impl;

/// Simulation scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimScale {
    /// Minutes-long CI scale: few parties, tiny windows.
    Smoke,
    /// Default laptop scale.
    Small,
    /// The paper's protocol: 200 parties (50 for FMoW), long windows.
    Paper,
}

impl SimScale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<SimScale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(SimScale::Smoke),
            "small" => Some(SimScale::Small),
            "paper" => Some(SimScale::Paper),
            _ => None,
        }
    }
}

/// Windowing mode per the paper's "Windowing Strategy" (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowingMode {
    /// Disjoint fixed-size windows (FMoW, Tiny-ImageNet-C).
    Tumbling,
    /// Overlapping windows (CIFAR-10-C, FEMNIST, Fashion-MNIST).
    Sliding,
}

/// Scenario parameters for one dataset at one scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Which dataset this profiles.
    pub kind: DatasetKind,
    /// Number of classes in the synthetic stand-in.
    pub classes: usize,
    /// Image shape of the synthetic stand-in.
    pub shape: ImageShape,
    /// Number of federated parties.
    pub num_parties: usize,
    /// Number of *evaluation* windows (W1..Wn; W0 is bootstrap).
    pub eval_windows: usize,
    /// Windowing mode.
    pub windowing: WindowingMode,
    /// Training samples per party per window.
    pub samples_per_party: usize,
    /// Held-out test samples per party per window.
    pub test_samples_per_party: usize,
    /// Dirichlet alpha for label shift (None = no label shift protocol).
    pub label_alpha: Option<f32>,
    /// Dirichlet alpha of each party's *static* non-IID label distribution
    /// ("we simulate 200 parties … to capture fine-grained heterogeneity in
    /// non-IID settings", §6). Applied at W0 and retained across windows.
    pub base_label_alpha: f32,
    /// Fraction of parties that receive a new distribution each window
    /// (the paper uses 50 %).
    pub shift_fraction: f32,
}

/// Returns the scenario profile for `kind` at `scale`.
///
/// Window counts and windowing modes follow the paper exactly; party and
/// sample counts shrink at sub-`Paper` scales (see `DESIGN.md` §3.5).
pub fn profile(kind: DatasetKind, scale: SimScale) -> DatasetProfile {
    let (num_parties, samples, test) = match (kind, scale) {
        (DatasetKind::Fmow, SimScale::Paper) => (50, 200, 60),
        (_, SimScale::Paper) => (200, 200, 60),
        (DatasetKind::Fmow, SimScale::Small) => (16, 40, 30),
        (_, SimScale::Small) => (24, 40, 30),
        (DatasetKind::Fmow, SimScale::Smoke) => (6, 30, 16),
        (_, SimScale::Smoke) => (8, 30, 16),
    };
    let shape = match (kind, scale) {
        (DatasetKind::Fmow, SimScale::Paper) => ImageShape::new(3, 12, 12),
        (DatasetKind::TinyImagenetC, SimScale::Paper) => ImageShape::new(3, 12, 12),
        (DatasetKind::Cifar10C, SimScale::Paper) => ImageShape::new(3, 8, 8),
        (DatasetKind::Fmow | DatasetKind::TinyImagenetC | DatasetKind::Cifar10C, _) => {
            ImageShape::new(3, 8, 8)
        }
        (DatasetKind::Femnist | DatasetKind::FashionMnist, _) => ImageShape::new(1, 8, 8),
    };
    let classes = match kind {
        DatasetKind::Fmow => 10,          // paper selects 10 FMoW labels
        DatasetKind::TinyImagenetC => 10, // stand-in for 200 (see DESIGN.md)
        DatasetKind::Cifar10C => 10,
        DatasetKind::Femnist => 10, // stand-in for 62 classes
        DatasetKind::FashionMnist => 10,
    };
    let (eval_windows, windowing) = match kind {
        DatasetKind::Fmow => (4, WindowingMode::Tumbling),
        DatasetKind::TinyImagenetC => (5, WindowingMode::Tumbling),
        DatasetKind::Cifar10C => (4, WindowingMode::Sliding),
        DatasetKind::Femnist => (5, WindowingMode::Sliding),
        DatasetKind::FashionMnist => (5, WindowingMode::Sliding),
    };
    let label_alpha = match kind {
        DatasetKind::Fmow => Some(1.0), // natural land-use prevalence drift
        DatasetKind::TinyImagenetC | DatasetKind::Cifar10C => None,
        DatasetKind::Femnist | DatasetKind::FashionMnist => Some(0.5),
    };
    DatasetProfile {
        kind,
        classes,
        shape,
        num_parties,
        eval_windows,
        windowing,
        samples_per_party: samples,
        test_samples_per_party: test,
        label_alpha,
        base_label_alpha: 0.6,
        shift_fraction: 0.5,
    }
}

impl DatasetProfile {
    /// Builds the pool of covariate regimes this dataset cycles through.
    ///
    /// Regime 0 is always "clear" (the W0 bootstrap distribution); windows
    /// introduce later regimes per the experiment schedule. Label
    /// distributions are attached by the schedule, not here.
    pub fn regime_pool(&self, rng: &mut impl Rng) -> Vec<Regime> {
        let mut pool = vec![Regime::clear()];
        match self.kind {
            DatasetKind::Fmow => {
                // Natural geographic/temporal variation: seasonal weather and
                // sensor conditions over satellite scenes.
                for (i, (c, s)) in [
                    (Corruption::Fog, 4),
                    (Corruption::Frost, 4),
                    (Corruption::Contrast, 4),
                    (Corruption::Rain, 3),
                    (Corruption::Snow, 3),
                ]
                .into_iter()
                .enumerate()
                {
                    pool.push(Regime::corrupted(c, s).with_id(RegimeId(i as u32 + 1)));
                }
            }
            DatasetKind::TinyImagenetC => {
                // One corruption per group at a random severity, twice over,
                // mirroring "group corruption types and randomly sample
                // severity levels across time windows".
                let mut id = 1u32;
                for round in 0..2 {
                    for group in Corruption::groups() {
                        let c = group[(rng.random_range(0..group.len()) + round) % group.len()];
                        let s = rng.random_range(2..=5) as u8;
                        pool.push(Regime::corrupted(c, s).with_id(RegimeId(id)));
                        id += 1;
                    }
                }
            }
            DatasetKind::Cifar10C => {
                // The paper's expert-distribution figure (7c) shows CIFAR-10-C
                // stabilising into a two-expert configuration: clear plus one
                // recurring weather regime that parties gradually migrate to.
                pool.push(Regime::corrupted(Corruption::Fog, 5).with_id(RegimeId(1)));
            }
            DatasetKind::Femnist => {
                // Rotation/scaling/colour-jitter chains per the paper's
                // synthetic-shift protocol. Pure geometry barely moves the
                // *marginal* statistics of smooth synthetic fields, so each
                // chain carries a regime-level brightness (the deterministic
                // component of ColorJitter) that makes the covariate shift
                // detectable — the role lighting plays in real handwriting
                // captures.
                let chains: Vec<Vec<Transform>> = vec![
                    vec![Transform::Rotation(90.0), Transform::Brightness(1.3)],
                    vec![Transform::Scale(1.8), Transform::Brightness(-1.1)],
                    vec![
                        Transform::FlipHorizontal,
                        Transform::Rotation(45.0),
                        Transform::Brightness(0.9),
                    ],
                    vec![
                        Transform::Rotation(-60.0),
                        Transform::Scale(0.6),
                        Transform::Brightness(-0.8),
                    ],
                    vec![Transform::Translate(3.0, -3.0), Transform::Brightness(1.6)],
                ];
                for (i, chain) in chains.into_iter().enumerate() {
                    pool.push(Regime::transformed(chain).with_id(RegimeId(i as u32 + 1)));
                }
            }
            DatasetKind::FashionMnist => {
                let chains: Vec<Vec<Transform>> = vec![
                    vec![
                        Transform::FlipHorizontal,
                        Transform::Rotation(60.0),
                        Transform::Brightness(1.2),
                    ],
                    vec![Transform::Scale(0.55), Transform::Brightness(-1.0)],
                    vec![Transform::Rotation(120.0), Transform::Brightness(0.8)],
                    vec![
                        Transform::FlipHorizontal,
                        Transform::Scale(1.7),
                        Transform::Brightness(-1.4),
                    ],
                ];
                for (i, chain) in chains.into_iter().enumerate() {
                    pool.push(Regime::transformed(chain).with_id(RegimeId(i as u32 + 1)));
                }
            }
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_scale_matches_protocol() {
        let p = profile(DatasetKind::Fmow, SimScale::Paper);
        assert_eq!(p.num_parties, 50);
        assert_eq!(p.eval_windows, 4);
        assert_eq!(p.windowing, WindowingMode::Tumbling);
        let p = profile(DatasetKind::Cifar10C, SimScale::Paper);
        assert_eq!(p.num_parties, 200);
        assert_eq!(p.windowing, WindowingMode::Sliding);
        let p = profile(DatasetKind::Femnist, SimScale::Paper);
        assert_eq!(p.eval_windows, 5);
    }

    #[test]
    fn shift_fraction_is_half() {
        for kind in DatasetKind::all() {
            assert_eq!(profile(kind, SimScale::Small).shift_fraction, 0.5);
        }
    }

    #[test]
    fn regime_pool_starts_clear_with_unique_ids() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in DatasetKind::all() {
            let p = profile(kind, SimScale::Small);
            let pool = p.regime_pool(&mut rng);
            assert!(
                !pool[0].has_covariate_shift(),
                "{kind}: regime 0 must be clear"
            );
            assert!(
                pool.len() >= 2,
                "{kind}: pool needs at least one shifted regime"
            );
            let mut ids: Vec<u32> = pool.iter().map(|r| r.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), pool.len(), "{kind}: duplicate regime ids");
        }
    }

    #[test]
    fn parse_roundtrips() {
        assert_eq!(DatasetKind::parse("fmow"), Some(DatasetKind::Fmow));
        assert_eq!(
            DatasetKind::parse("CIFAR-10-C"),
            Some(DatasetKind::Cifar10C)
        );
        assert_eq!(DatasetKind::parse("nope"), None);
        assert_eq!(SimScale::parse("paper"), Some(SimScale::Paper));
    }

    #[test]
    fn smoke_scale_is_smaller_than_paper() {
        for kind in DatasetKind::all() {
            let smoke = profile(kind, SimScale::Smoke);
            let paper = profile(kind, SimScale::Paper);
            assert!(smoke.num_parties < paper.num_parties);
            assert!(smoke.samples_per_party < paper.samples_per_party);
        }
    }
}
