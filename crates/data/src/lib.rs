//! Synthetic streaming-vision datasets with controllable covariate and label
//! shift.
//!
//! The paper evaluates on FMoW, Tiny-ImageNet-C, CIFAR-10-C, FEMNIST and
//! Fashion-MNIST. Those corpora are unavailable offline, so this crate
//! generates *prototype-based* image-like data whose shift structure mirrors
//! the paper's protocol (see `DESIGN.md` §3):
//!
//! * each class has a smooth random prototype field; samples are prototype +
//!   structured noise, so models can learn the classes and embeddings carry
//!   class/style information;
//! * **covariate shift** is a parametric corruption ([`Corruption`]) or
//!   geometric transform ([`Transform`]) applied to inputs at one of five
//!   severities — the construction of the `-C` benchmark family;
//! * **label shift** is Dirichlet re-sampling of per-party class proportions
//!   ([`partition`]), the standard federated non-IID knob.
//!
//! # Example
//!
//! ```
//! use shiftex_data::{ImageShape, PrototypeGenerator, Corruption, Regime};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let gen = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 10, &mut rng);
//! let clear = gen.generate_uniform(64, &mut rng);
//! let regime = Regime::corrupted(Corruption::Fog, 3);
//! let foggy = gen.generate_with_regime(64, &regime, &mut rng);
//! assert_eq!(clear.len(), foggy.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corruption;
mod dataset;
pub mod partition;
mod registry;
mod shift;
mod synth;
mod transform;

pub use corruption::Corruption;
pub use dataset::{Dataset, ImageShape};
pub use registry::{profile, DatasetKind, DatasetProfile, SimScale, WindowingMode};
pub use shift::{Regime, RegimeId};
pub use synth::PrototypeGenerator;
pub use transform::Transform;
