//! Prototype-based synthetic image generator.
//!
//! Each class is represented by a smooth random field (a coarse random grid
//! bilinearly upsampled to the target resolution). Samples are the prototype
//! plus optional per-sample style variation and pixel noise. Smoothness makes
//! spatial corruptions (fog, blur, streaks) behave like they do on natural
//! images, while class separation keeps the task learnable by small models.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_tensor::{rngx, Matrix};

use crate::dataset::{Dataset, ImageShape};
use crate::shift::Regime;

/// Synthetic data generator with one smooth prototype per class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrototypeGenerator {
    shape: ImageShape,
    num_classes: usize,
    /// Per-class prototype fields, each of length `shape.dim()`.
    prototypes: Vec<Vec<f32>>,
    /// Std-dev of i.i.d. pixel noise added to every sample.
    pub noise_std: f32,
    /// Std-dev of the per-sample global style offset.
    pub style_std: f32,
}

impl PrototypeGenerator {
    /// Scale of class-discriminative signal relative to unit-scale noise
    /// fields; chosen so a small model reaches ~75–90 % on clean data (the
    /// operating point of the paper's Figure 1) rather than saturating.
    pub const CLASS_SCALE: f32 = 0.25;

    /// Creates a generator with freshly sampled class prototypes.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or the shape is degenerate.
    pub fn new(shape: ImageShape, num_classes: usize, rng: &mut impl Rng) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(shape.dim() > 0, "degenerate image shape");
        let prototypes = (0..num_classes)
            .map(|_| {
                let mut field = smooth_field(shape, rng);
                for v in &mut field {
                    *v *= Self::CLASS_SCALE;
                }
                field
            })
            .collect();
        Self {
            shape,
            num_classes,
            prototypes,
            noise_std: 0.4,
            style_std: 0.25,
        }
    }

    /// Image shape of generated samples.
    pub fn shape(&self) -> ImageShape {
        self.shape
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Read-only access to a class prototype (tests, visualisation).
    pub fn prototype(&self, class: usize) -> &[f32] {
        &self.prototypes[class]
    }

    /// Draws one sample of `class` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or `out` has the wrong length.
    pub fn sample_into(&self, class: usize, out: &mut [f32], rng: &mut impl Rng) {
        assert!(class < self.num_classes, "class {class} out of range");
        assert_eq!(out.len(), self.shape.dim(), "output buffer length mismatch");
        let style = rngx::normal(rng, 0.0, self.style_std);
        for (o, &p) in out.iter_mut().zip(self.prototypes[class].iter()) {
            *o = p + style + rngx::normal(rng, 0.0, self.noise_std);
        }
    }

    /// Generates `n` samples with classes drawn from `class_weights`
    /// (need not be normalised).
    ///
    /// # Panics
    ///
    /// Panics if `class_weights.len() != num_classes` or all weights are zero.
    pub fn generate(&self, n: usize, class_weights: &[f32], rng: &mut impl Rng) -> Dataset {
        assert_eq!(
            class_weights.len(),
            self.num_classes,
            "weights length mismatch"
        );
        let dim = self.shape.dim();
        let mut features = Matrix::zeros(n, dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = rngx::categorical(rng, class_weights);
            labels.push(class);
            self.sample_into(class, features.row_mut(i), rng);
        }
        Dataset::new(features, labels, self.num_classes, self.shape)
    }

    /// Generates `n` samples with uniform class weights.
    pub fn generate_uniform(&self, n: usize, rng: &mut impl Rng) -> Dataset {
        self.generate(n, &vec![1.0; self.num_classes], rng)
    }

    /// Generates `n` samples under a [`Regime`]: class weights come from the
    /// regime's label distribution (uniform if unset) and the regime's
    /// covariate corruption/transform is applied to every sample.
    pub fn generate_with_regime(&self, n: usize, regime: &Regime, rng: &mut impl Rng) -> Dataset {
        let weights = regime
            .label_weights(self.num_classes)
            .unwrap_or_else(|| vec![1.0; self.num_classes]);
        let mut ds = self.generate(n, &weights, rng);
        regime.apply_covariate(&mut ds, rng);
        ds
    }
}

/// Samples a smooth random field: a coarse `4×4` (per channel) grid of
/// `N(0,1)` values bilinearly upsampled to `(h, w)`.
fn smooth_field(shape: ImageShape, rng: &mut impl Rng) -> Vec<f32> {
    const COARSE: usize = 4;
    let mut field = vec![0.0f32; shape.dim()];
    for c in 0..shape.c {
        let grid: Vec<f32> = (0..COARSE * COARSE)
            .map(|_| rngx::normal(rng, 0.0, 1.0))
            .collect();
        for y in 0..shape.h {
            for x in 0..shape.w {
                let gy = y as f32 / shape.h.max(1) as f32 * (COARSE - 1) as f32;
                let gx = x as f32 / shape.w.max(1) as f32 * (COARSE - 1) as f32;
                let (y0, x0) = (gy.floor() as usize, gx.floor() as usize);
                let (y1, x1) = ((y0 + 1).min(COARSE - 1), (x0 + 1).min(COARSE - 1));
                let (fy, fx) = (gy - y0 as f32, gx - x0 as f32);
                let v = grid[y0 * COARSE + x0] * (1.0 - fy) * (1.0 - fx)
                    + grid[y0 * COARSE + x1] * (1.0 - fy) * fx
                    + grid[y1 * COARSE + x0] * fy * (1.0 - fx)
                    + grid[y1 * COARSE + x1] * fy * fx;
                field[c * shape.h * shape.w + y * shape.w + x] = v;
            }
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shiftex_tensor::vector;

    #[test]
    fn generates_requested_count_and_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = PrototypeGenerator::new(ImageShape::new(3, 8, 8), 5, &mut rng);
        let ds = g.generate_uniform(32, &mut rng);
        assert_eq!(ds.len(), 32);
        assert_eq!(ds.features().cols(), 192);
        assert!(ds.labels().iter().all(|&l| l < 5));
    }

    #[test]
    fn class_weights_bias_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = PrototypeGenerator::new(ImageShape::new(1, 4, 4), 3, &mut rng);
        let ds = g.generate(300, &[0.0, 1.0, 0.0], &mut rng);
        assert!(ds.labels().iter().all(|&l| l == 1));
    }

    #[test]
    fn samples_cluster_near_their_prototype() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 2, &mut rng);
        let mut buf = vec![0.0; 64];
        g.sample_into(0, &mut buf, &mut rng);
        let d_own = vector::l2_dist(&buf, g.prototype(0));
        let d_other = vector::l2_dist(&buf, g.prototype(1));
        // With smooth prototypes of unit scale and noise 0.25, a sample is
        // (with overwhelming probability) closer to its own prototype.
        assert!(d_own < d_other, "sample should be nearer its own prototype");
    }

    #[test]
    fn prototypes_differ_between_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = PrototypeGenerator::new(ImageShape::new(1, 8, 8), 2, &mut rng);
        assert!(vector::l2_dist(g.prototype(0), g.prototype(1)) > 0.5);
    }

    #[test]
    fn deterministic_for_equal_seed() {
        let g1 =
            PrototypeGenerator::new(ImageShape::new(1, 4, 4), 2, &mut StdRng::seed_from_u64(9));
        let g2 =
            PrototypeGenerator::new(ImageShape::new(1, 4, 4), 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.prototype(0), g2.prototype(0));
    }
}
