//! Geometric / photometric transforms used for the synthetic-shift protocol
//! on FEMNIST and Fashion-MNIST ("PyTorch image transformations (e.g.,
//! rotation, scaling, color jitter)").

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_tensor::rngx;

use crate::dataset::ImageShape;

/// A geometric or photometric input transform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Transform {
    /// Rotation about the image centre, in degrees.
    Rotation(f32),
    /// Isotropic scaling about the centre (`> 1` zooms in).
    Scale(f32),
    /// Translation in pixels `(dy, dx)`.
    Translate(f32, f32),
    /// Colour jitter: brightness offset and contrast factor, randomly
    /// perturbed per sample by the given amounts.
    ColorJitter {
        /// Max absolute brightness offset.
        brightness: f32,
        /// Max relative contrast change.
        contrast: f32,
    },
    /// Horizontal flip.
    FlipHorizontal,
    /// Deterministic brightness offset — a regime-level lighting condition
    /// (the fixed component of torchvision-style ColorJitter).
    Brightness(f32),
}

impl Transform {
    /// Applies the transform to one flattened `(c, h, w)` image in place.
    ///
    /// Geometric transforms use bilinear resampling with zero padding.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match `shape.dim()`.
    pub fn apply(&self, x: &mut [f32], shape: ImageShape, rng: &mut impl Rng) {
        assert_eq!(x.len(), shape.dim(), "buffer length mismatch");
        match *self {
            Transform::Rotation(deg) => {
                let rad = deg.to_radians();
                warp(x, shape, |y, xx, cy, cx| {
                    let (dy, dx) = (y - cy, xx - cx);
                    (
                        cy + dy * rad.cos() - dx * rad.sin(),
                        cx + dy * rad.sin() + dx * rad.cos(),
                    )
                });
            }
            Transform::Scale(factor) => {
                assert!(factor > 0.0, "scale factor must be positive");
                let inv = 1.0 / factor;
                warp(x, shape, |y, xx, cy, cx| {
                    (cy + (y - cy) * inv, cx + (xx - cx) * inv)
                });
            }
            Transform::Translate(dy, dx) => {
                warp(x, shape, |y, xx, _, _| (y - dy, xx - dx));
            }
            Transform::ColorJitter {
                brightness,
                contrast,
            } => {
                let b = rngx::normal(rng, 0.0, brightness.max(0.0));
                let k = 1.0 + rngx::normal(rng, 0.0, contrast.max(0.0));
                let mean = shiftex_tensor::vector::mean(x);
                for v in x.iter_mut() {
                    *v = mean + k * (*v - mean) + b;
                }
            }
            Transform::FlipHorizontal => {
                let (h, w) = (shape.h, shape.w);
                for c in 0..shape.c {
                    let base = c * h * w;
                    for y in 0..h {
                        let row = &mut x[base + y * w..base + (y + 1) * w];
                        row.reverse();
                    }
                }
            }
            Transform::Brightness(offset) => {
                for v in x.iter_mut() {
                    *v += offset;
                }
            }
        }
    }
}

impl std::fmt::Display for Transform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transform::Rotation(d) => write!(f, "rotate({d}°)"),
            Transform::Scale(s) => write!(f, "scale({s})"),
            Transform::Translate(dy, dx) => write!(f, "translate({dy},{dx})"),
            Transform::ColorJitter {
                brightness,
                contrast,
            } => {
                write!(f, "jitter(b={brightness},c={contrast})")
            }
            Transform::FlipHorizontal => write!(f, "hflip"),
            Transform::Brightness(b) => write!(f, "brightness({b})"),
        }
    }
}

/// Inverse-warps each output pixel from source coordinates produced by `f`,
/// sampling bilinearly with zero padding.
fn warp(x: &mut [f32], shape: ImageShape, f: impl Fn(f32, f32, f32, f32) -> (f32, f32)) {
    let (h, w) = (shape.h, shape.w);
    let (cy, cx) = ((h as f32 - 1.0) / 2.0, (w as f32 - 1.0) / 2.0);
    let orig = x.to_vec();
    for c in 0..shape.c {
        let base = c * h * w;
        for y in 0..h {
            for xx in 0..w {
                let (sy, sx) = f(y as f32, xx as f32, cy, cx);
                x[base + y * w + xx] = bilinear(&orig[base..base + h * w], h, w, sy, sx);
            }
        }
    }
}

/// Bilinear sample with zero padding outside the image.
fn bilinear(chan: &[f32], h: usize, w: usize, y: f32, x: f32) -> f32 {
    if y < -1.0 || x < -1.0 || y > h as f32 || x > w as f32 {
        return 0.0;
    }
    let (y0, x0) = (y.floor() as isize, x.floor() as isize);
    let (fy, fx) = (y - y0 as f32, x - x0 as f32);
    let at = |yy: isize, xx: isize| -> f32 {
        if yy < 0 || xx < 0 || yy >= h as isize || xx >= w as isize {
            0.0
        } else {
            chan[yy as usize * w + xx as usize]
        }
    };
    at(y0, x0) * (1.0 - fy) * (1.0 - fx)
        + at(y0, x0 + 1) * (1.0 - fy) * fx
        + at(y0 + 1, x0) * fy * (1.0 - fx)
        + at(y0 + 1, x0 + 1) * fy * fx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shiftex_tensor::vector;

    fn ramp(shape: ImageShape) -> Vec<f32> {
        (0..shape.dim())
            .map(|i| i as f32 / shape.dim() as f32)
            .collect()
    }

    #[test]
    fn rotation_360_is_near_identity() {
        let shape = ImageShape::new(1, 9, 9);
        let orig = ramp(shape);
        let mut x = orig.clone();
        let mut rng = StdRng::seed_from_u64(0);
        Transform::Rotation(360.0).apply(&mut x, shape, &mut rng);
        // Interior pixels must match; borders may differ from padding.
        let d = vector::l2_dist(&orig, &x);
        assert!(d < 0.2, "rot360 distance {d}");
    }

    #[test]
    fn flip_twice_is_identity() {
        let shape = ImageShape::new(2, 4, 4);
        let orig = ramp(shape);
        let mut x = orig.clone();
        let mut rng = StdRng::seed_from_u64(0);
        Transform::FlipHorizontal.apply(&mut x, shape, &mut rng);
        assert_ne!(orig, x);
        Transform::FlipHorizontal.apply(&mut x, shape, &mut rng);
        assert_eq!(orig, x);
    }

    #[test]
    fn scale_one_is_identity() {
        let shape = ImageShape::new(1, 6, 6);
        let orig = ramp(shape);
        let mut x = orig.clone();
        let mut rng = StdRng::seed_from_u64(0);
        Transform::Scale(1.0).apply(&mut x, shape, &mut rng);
        for (a, b) in orig.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn translate_moves_content() {
        let shape = ImageShape::new(1, 4, 4);
        let mut x = vec![0.0; 16];
        x[5] = 1.0; // (1,1)
        let mut rng = StdRng::seed_from_u64(0);
        Transform::Translate(1.0, 1.0).apply(&mut x, shape, &mut rng);
        assert!(
            (x[10] - 1.0).abs() < 1e-5,
            "pixel should move to (2,2): {x:?}"
        );
    }

    #[test]
    fn rotation_changes_image() {
        let shape = ImageShape::new(1, 8, 8);
        let orig = ramp(shape);
        let mut x = orig.clone();
        let mut rng = StdRng::seed_from_u64(0);
        Transform::Rotation(45.0).apply(&mut x, shape, &mut rng);
        assert!(vector::l2_dist(&orig, &x) > 0.05);
    }

    #[test]
    fn jitter_changes_stats() {
        let shape = ImageShape::new(1, 4, 4);
        let orig = ramp(shape);
        let mut x = orig.clone();
        let mut rng = StdRng::seed_from_u64(3);
        Transform::ColorJitter {
            brightness: 0.8,
            contrast: 0.5,
        }
        .apply(&mut x, shape, &mut rng);
        assert!(vector::l2_dist(&orig, &x) > 1e-3);
    }
}
