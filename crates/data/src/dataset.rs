//! Dataset container shared by every crate in the workspace.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_tensor::{stats, Matrix};

/// Image volume description: channels × height × width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImageShape {
    /// Channel count (1 = grayscale, 3 = RGB-like).
    pub c: usize,
    /// Height in pixels.
    pub h: usize,
    /// Width in pixels.
    pub w: usize,
}

impl ImageShape {
    /// Creates a shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// Flat vector dimensionality `c·h·w`.
    pub fn dim(&self) -> usize {
        self.c * self.h * self.w
    }
}

/// A labelled dataset: features as a `(n, c·h·w)` matrix plus integer labels.
///
/// # Example
///
/// ```
/// use shiftex_data::{Dataset, ImageShape};
/// use shiftex_tensor::Matrix;
///
/// let ds = Dataset::new(Matrix::zeros(4, 4), vec![0, 1, 0, 1], 2,
///                       ImageShape::new(1, 2, 2));
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.label_histogram(), vec![0.5, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
    shape: ImageShape,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `features.rows() != labels.len()`, a label is out of range,
    /// or `features.cols() != shape.dim()`.
    pub fn new(
        features: Matrix,
        labels: Vec<usize>,
        num_classes: usize,
        shape: ImageShape,
    ) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature/label count mismatch"
        );
        assert_eq!(
            features.cols(),
            shape.dim(),
            "feature width does not match shape"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range for {num_classes} classes"
        );
        Self {
            features,
            labels,
            num_classes,
            shape,
        }
    }

    /// An empty dataset with the given class count and shape.
    pub fn empty(num_classes: usize, shape: ImageShape) -> Self {
        Self::new(
            Matrix::zeros(0, shape.dim()),
            Vec::new(),
            num_classes,
            shape,
        )
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature matrix `(n, c·h·w)`.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Mutable feature matrix (used by in-place corruption application).
    pub fn features_mut(&mut self) -> &mut Matrix {
        &mut self.features
    }

    /// Integer labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image shape of each sample.
    pub fn shape(&self) -> ImageShape {
        self.shape
    }

    /// Normalised label histogram `ŷ[i] = count_i / n` (uniform when empty).
    pub fn label_histogram(&self) -> Vec<f32> {
        stats::label_histogram(self.labels.iter().copied(), self.num_classes)
    }

    /// Copies the samples at `indices` into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let features = self.features.select_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            features,
            labels,
            num_classes: self.num_classes,
            shape: self.shape,
        }
    }

    /// A copy with every label rewritten by `f` (features untouched).
    /// Used for label-poisoning adversaries; `f` must map into
    /// `0..num_classes`.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces an out-of-range label.
    pub fn map_labels(&self, f: impl Fn(usize) -> usize) -> Dataset {
        Dataset::new(
            self.features.clone(),
            self.labels.iter().map(|&l| f(l)).collect(),
            self.num_classes,
            self.shape,
        )
    }

    /// Splits into `(train, test)` with `train_frac` of samples (shuffled).
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is outside `[0, 1]`.
    pub fn split(&self, train_frac: f32, rng: &mut impl Rng) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_frac),
            "train_frac must be in [0,1]"
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        shiftex_tensor::rngx::shuffle(rng, &mut order);
        let cut = (self.len() as f32 * train_frac).round() as usize;
        let (train_idx, test_idx) = order.split_at(cut.min(self.len()));
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Concatenates datasets (which must agree on class count and shape).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or metadata disagrees.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat of empty list");
        let num_classes = parts[0].num_classes;
        let shape = parts[0].shape;
        assert!(
            parts
                .iter()
                .all(|d| d.num_classes == num_classes && d.shape == shape),
            "concat metadata mismatch"
        );
        let mats: Vec<&Matrix> = parts.iter().map(|d| &d.features).collect();
        let features = Matrix::vstack(&mats);
        let labels = parts
            .iter()
            .flat_map(|d| d.labels.iter().copied())
            .collect();
        Dataset {
            features,
            labels,
            num_classes,
            shape,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 3.0], &[4.0, 5.0], &[6.0, 7.0]]);
        Dataset::new(m, vec![0, 1, 1, 2], 3, ImageShape::new(1, 1, 2))
    }

    #[test]
    fn histogram_counts_labels() {
        let d = tiny();
        assert_eq!(d.label_histogram(), vec![0.25, 0.5, 0.25]);
    }

    #[test]
    fn subset_preserves_pairing() {
        let d = tiny();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.labels(), &[1, 0]);
        assert_eq!(s.features().row(0), &[4.0, 5.0]);
    }

    #[test]
    fn split_partitions_all_samples() {
        use rand::{rngs::StdRng, SeedableRng};
        let d = tiny();
        let (tr, te) = d.split(0.5, &mut StdRng::seed_from_u64(0));
        assert_eq!(tr.len() + te.len(), d.len());
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn concat_appends() {
        let d = tiny();
        let c = Dataset::concat(&[&d, &d]);
        assert_eq!(c.len(), 8);
        assert_eq!(c.labels()[4..], d.labels()[..]);
    }

    #[test]
    fn empty_histogram_is_uniform() {
        let d = Dataset::empty(4, ImageShape::new(1, 1, 1));
        assert_eq!(d.label_histogram(), vec![0.25; 4]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Dataset::new(Matrix::zeros(1, 2), vec![5], 3, ImageShape::new(1, 1, 2));
    }
}
