//! Free-function helpers over `&[f32]` slices.
//!
//! These are used pervasively for embedding vectors, label histograms and
//! flattened model parameters, where allocating a full [`crate::Matrix`]
//! would be overkill.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn l2_dist(a: &[f32], b: &[f32]) -> f32 {
    sq_dist(a, b).sqrt()
}

/// Cosine similarity in `[-1, 1]`.
///
/// Returns `0.0` when either vector has (near-)zero norm, which is the
/// conservative choice for the expert-consolidation test `cos(θi, θj) > τ`:
/// degenerate experts are never considered similar.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f32>() / a.len() as f32
    }
}

/// Population variance (0 for slices with < 2 elements).
pub fn variance(a: &[f32]) -> f32 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / a.len() as f32
}

/// Population standard deviation.
pub fn std_dev(a: &[f32]) -> f32 {
    variance(a).sqrt()
}

/// Index of the maximum element (first on ties). Returns 0 for empty input.
pub fn argmax(a: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in a.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Index of the minimum element (first on ties). Returns 0 for empty input.
pub fn argmin(a: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::INFINITY;
    for (i, &v) in a.iter().enumerate() {
        if v < best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Numerically-stable softmax, returning a fresh probability vector.
pub fn softmax(a: &[f32]) -> Vec<f32> {
    if a.is_empty() {
        return Vec::new();
    }
    let max = a.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = a.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// `a += alpha * b`, elementwise in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: &mut [f32], alpha: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += alpha * y;
    }
}

/// Scales every element in place.
pub fn scale(a: &mut [f32], s: f32) {
    for v in a.iter_mut() {
        *v *= s;
    }
}

/// Normalises a non-negative vector to sum to one.
///
/// If the sum is (near-)zero the uniform distribution is returned instead,
/// which keeps downstream divergence computations well-defined.
pub fn normalize_distribution(a: &[f32]) -> Vec<f32> {
    let sum: f32 = a.iter().sum();
    if sum <= 1e-12 {
        if a.is_empty() {
            return Vec::new();
        }
        return vec![1.0 / a.len() as f32; a.len()];
    }
    a.iter().map(|&v| v / sum).collect()
}

/// Weighted mean of several equal-length vectors; weights need not sum to 1.
///
/// # Panics
///
/// Panics if `vectors` is empty, lengths differ, or all weights are zero.
pub fn weighted_mean(vectors: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "weighted_mean of empty set");
    assert_eq!(vectors.len(), weights.len(), "weights length mismatch");
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weighted_mean with zero total weight");
    let dim = vectors[0].len();
    let mut out = vec![0.0; dim];
    for (vec, &w) in vectors.iter().zip(weights.iter()) {
        assert_eq!(vec.len(), dim, "weighted_mean dimension mismatch");
        axpy(&mut out, w / total, vec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_parallel_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_gives_uniform() {
        assert_eq!(normalize_distribution(&[0.0, 0.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn weighted_mean_recovers_average() {
        let a = [1.0, 1.0];
        let b = [3.0, 3.0];
        let m = weighted_mean(&[&a, &b], &[1.0, 1.0]);
        assert_eq!(m, vec![2.0, 2.0]);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let a = [0.0];
        let b = [10.0];
        let m = weighted_mean(&[&a, &b], &[3.0, 1.0]);
        assert!((m[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmin(&[1.0, -5.0, 2.0]), 1);
    }

    proptest! {
        #[test]
        fn prop_cosine_bounded(a in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
            let b: Vec<f32> = a.iter().map(|v| v * 2.0 + 1.0).collect();
            let c = cosine_similarity(&a, &b);
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        #[test]
        fn prop_softmax_is_distribution(a in proptest::collection::vec(-50.0f32..50.0, 1..16)) {
            let p = softmax(&a);
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn prop_sq_dist_nonnegative_and_symmetric(
            a in proptest::collection::vec(-10.0f32..10.0, 8),
            b in proptest::collection::vec(-10.0f32..10.0, 8),
        ) {
            let d1 = sq_dist(&a, &b);
            let d2 = sq_dist(&b, &a);
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-4);
        }
    }
}
