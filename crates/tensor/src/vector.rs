//! Free-function helpers over `&[f32]` slices.
//!
//! These are used pervasively for embedding vectors, label histograms and
//! flattened model parameters, where allocating a full [`crate::Matrix`]
//! would be overkill.

/// Unroll width of the [`dot`] / [`dot2`] / [`sq_dist`] / [`axpy`] kernels.
///
/// Thirty-two independent `f32` accumulators (four AVX2 registers' worth)
/// break the sequential floating-point dependency chain — strict
/// left-to-right `f32` addition cannot be reordered — with enough
/// instruction-level parallelism to cover FMA latency. The explicit-SIMD
/// path in `crate::simd` uses the same layout.
pub const LANES: usize = 32;

/// The reduction kernels dispatch to pinned AVX2+FMA intrinsics when the
/// build target guarantees them (see `crate::simd` for why autovectorizing
/// the safe fallbacks is not reliable enough for the Gram-matrix hot path).
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
use crate::simd;

/// Fused multiply-add `a * b + acc` for the safe fallback path when the
/// target has hardware FMA but the intrinsics path is unavailable;
/// `f32::mul_add` without hardware support would fall back to a (correct
/// but ~100x slower) libm soft-fma call, hence the gate.
#[cfg(all(
    target_feature = "fma",
    not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))
))]
#[inline(always)]
fn madd(a: f32, b: f32, acc: f32) -> f32 {
    a.mul_add(b, acc)
}

/// Non-FMA fallback of [`madd`]: separate multiply and add.
#[cfg(not(target_feature = "fma"))]
#[inline(always)]
fn madd(a: f32, b: f32, acc: f32) -> f32 {
    acc + a * b
}

/// One [`LANES`]-wide multiply-add step `acc[l] += x[l] * b[l]` for the
/// safe fallback path, kept as its own always-inlined function so the
/// vectorizer treats the lane axis as the vector axis.
#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
)))]
#[inline(always)]
fn fma_lanes(acc: &mut [f32; LANES], x: &[f32], b: &[f32]) {
    for l in 0..LANES {
        acc[l] = madd(x[l], b[l], acc[l]);
    }
}

/// Pairwise tree reduction of the lane accumulators, matching the
/// `crate::simd` reduction order exactly.
#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
)))]
#[inline(always)]
fn reduce_lanes(acc: &[f32; LANES]) -> f32 {
    let mut s = [0.0f32; 8];
    for (l, v) in s.iter_mut().enumerate() {
        *v = (acc[l] + acc[l + 8]) + (acc[l + 16] + acc[l + 24]);
    }
    let q = [s[0] + s[4], s[1] + s[5], s[2] + s[6], s[3] + s[7]];
    (q[0] + q[2]) + (q[1] + q[3])
}

/// Dot product of two equal-length slices.
///
/// Accumulates over [`LANES`] independent partial sums (SIMD-friendly), so
/// the summation order differs from a strict left-to-right reduction;
/// results may differ from a naive loop by normal `f32` rounding. On
/// AVX2+FMA targets the accumulation runs on pinned intrinsics
/// (`crate::simd`); elsewhere on a safe lane-unrolled loop with the same
/// accumulator layout.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    return simd::dot(a, b);
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    {
        let mut acc = [0.0f32; LANES];
        let mut ca = a.chunks_exact(LANES);
        let mut cb = b.chunks_exact(LANES);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            fma_lanes(&mut acc, xa, xb);
        }
        let mut tail = 0.0f32;
        for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
            tail = madd(x, y, tail);
        }
        reduce_lanes(&acc) + tail
    }
}

/// Two dot products sharing one streamed right-hand vector.
///
/// The Gram-matrix kernel ([`crate::Matrix::matmul_t`]) is load-bound: a
/// single [`dot`] issues two loads per multiply-add. Pairing two left-hand
/// rows against one `b` stream amortises the `b` loads and runs two
/// independent [`LANES`]-wide accumulator chains, which is what keeps the
/// FMA units fed (wider row tiles spill accumulators out of registers and
/// regress). Each result is bit-identical to `dot(a_i, b)` — same lane
/// layout and reduction order — so kernels mix `dot` and `dot2` freely
/// across rows.
///
/// # Panics
///
/// Panics if the three slices have different lengths.
#[inline]
pub fn dot2(a0: &[f32], a1: &[f32], b: &[f32]) -> [f32; 2] {
    assert_eq!(a0.len(), b.len(), "dot2 length mismatch");
    assert_eq!(a1.len(), b.len(), "dot2 length mismatch");
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    return simd::dot2(a0, a1, b);
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    {
        let mut acc0 = [0.0f32; LANES];
        let mut acc1 = [0.0f32; LANES];
        let mut cb = b.chunks_exact(LANES);
        let mut c0 = a0.chunks_exact(LANES);
        let mut c1 = a1.chunks_exact(LANES);
        for ((xb, x0), x1) in (&mut cb).zip(&mut c0).zip(&mut c1) {
            fma_lanes(&mut acc0, x0, xb);
            fma_lanes(&mut acc1, x1, xb);
        }
        let mut t0 = 0.0f32;
        let mut t1 = 0.0f32;
        for (&x, &y) in c0.remainder().iter().zip(cb.remainder()) {
            t0 = madd(x, y, t0);
        }
        for (&x, &y) in c1.remainder().iter().zip(cb.remainder()) {
            t1 = madd(x, y, t1);
        }
        [reduce_lanes(&acc0) + t0, reduce_lanes(&acc1) + t1]
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// Uses the same [`LANES`]-wide accumulator layout (and SIMD dispatch) as
/// [`dot`]; identical inputs still produce exactly `0.0` (every term is
/// `0.0` before summing).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    return simd::sq_dist(a, b);
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    {
        let mut acc = [0.0f32; LANES];
        let mut ca = a.chunks_exact(LANES);
        let mut cb = b.chunks_exact(LANES);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            for l in 0..LANES {
                let d = xa[l] - xb[l];
                acc[l] = madd(d, d, acc[l]);
            }
        }
        let mut tail = 0.0f32;
        for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
            let d = x - y;
            tail = madd(d, d, tail);
        }
        reduce_lanes(&acc) + tail
    }
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn l2_dist(a: &[f32], b: &[f32]) -> f32 {
    sq_dist(a, b).sqrt()
}

/// Cosine similarity in `[-1, 1]`.
///
/// Returns `0.0` when either vector has (near-)zero norm, which is the
/// conservative choice for the expert-consolidation test `cos(θi, θj) > τ`:
/// degenerate experts are never considered similar.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f32>() / a.len() as f32
    }
}

/// Population variance (0 for slices with < 2 elements).
pub fn variance(a: &[f32]) -> f32 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / a.len() as f32
}

/// Population standard deviation.
pub fn std_dev(a: &[f32]) -> f32 {
    variance(a).sqrt()
}

/// Index of the maximum element (first on ties). Returns 0 for empty input.
pub fn argmax(a: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in a.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Index of the minimum element (first on ties). Returns 0 for empty input.
pub fn argmin(a: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::INFINITY;
    for (i, &v) in a.iter().enumerate() {
        if v < best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Numerically-stable softmax, returning a fresh probability vector.
pub fn softmax(a: &[f32]) -> Vec<f32> {
    if a.is_empty() {
        return Vec::new();
    }
    let max = a.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = a.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// `a += alpha * b`, elementwise in place.
///
/// Unrolled [`LANES`] wide; each lane is independent so, unlike [`dot`],
/// results are bit-identical to the naive loop.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: &mut [f32], alpha: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    let mut ca = a.chunks_exact_mut(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            xa[l] += alpha * xb[l];
        }
    }
    for (x, &y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
        *x += alpha * y;
    }
}

/// Scales every element in place.
pub fn scale(a: &mut [f32], s: f32) {
    for v in a.iter_mut() {
        *v *= s;
    }
}

/// Normalises a non-negative vector to sum to one.
///
/// If the sum is (near-)zero the uniform distribution is returned instead,
/// which keeps downstream divergence computations well-defined.
pub fn normalize_distribution(a: &[f32]) -> Vec<f32> {
    let sum: f32 = a.iter().sum();
    if sum <= 1e-12 {
        if a.is_empty() {
            return Vec::new();
        }
        return vec![1.0 / a.len() as f32; a.len()];
    }
    a.iter().map(|&v| v / sum).collect()
}

/// Weighted mean of several equal-length vectors; weights need not sum to 1.
///
/// # Panics
///
/// Panics if `vectors` is empty, lengths differ, or all weights are zero.
pub fn weighted_mean(vectors: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "weighted_mean of empty set");
    assert_eq!(vectors.len(), weights.len(), "weights length mismatch");
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weighted_mean with zero total weight");
    let dim = vectors[0].len();
    let mut out = vec![0.0; dim];
    for (vec, &w) in vectors.iter().zip(weights.iter()) {
        assert_eq!(vec.len(), dim, "weighted_mean dimension mismatch");
        axpy(&mut out, w / total, vec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_parallel_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_gives_uniform() {
        assert_eq!(normalize_distribution(&[0.0, 0.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn weighted_mean_recovers_average() {
        let a = [1.0, 1.0];
        let b = [3.0, 3.0];
        let m = weighted_mean(&[&a, &b], &[1.0, 1.0]);
        assert_eq!(m, vec![2.0, 2.0]);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let a = [0.0];
        let b = [10.0];
        let m = weighted_mean(&[&a, &b], &[3.0, 1.0]);
        assert!((m[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmin(&[1.0, -5.0, 2.0]), 1);
    }

    proptest! {
        #[test]
        fn prop_cosine_bounded(a in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
            let b: Vec<f32> = a.iter().map(|v| v * 2.0 + 1.0).collect();
            let c = cosine_similarity(&a, &b);
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        #[test]
        fn prop_softmax_is_distribution(a in proptest::collection::vec(-50.0f32..50.0, 1..16)) {
            let p = softmax(&a);
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn prop_sq_dist_nonnegative_and_symmetric(
            a in proptest::collection::vec(-10.0f32..10.0, 8),
            b in proptest::collection::vec(-10.0f32..10.0, 8),
        ) {
            let d1 = sq_dist(&a, &b);
            let d2 = sq_dist(&b, &a);
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-4);
        }

        /// Lane-unrolled `dot` matches a strict sequential reduction within
        /// relative tolerance, across lengths that exercise every remainder
        /// branch of the LANES-wide kernel.
        #[test]
        fn prop_dot_matches_sequential(
            a in proptest::collection::vec(-10.0f32..10.0, 1..70),
        ) {
            let b: Vec<f32> = a.iter().rev().map(|v| v * 0.5 + 1.0).collect();
            let naive: f32 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
            let fast = dot(&a, &b);
            let scale = naive.abs().max(fast.abs()).max(1.0);
            prop_assert!((fast - naive).abs() <= 1e-4 * scale,
                         "fast {fast} vs naive {naive}");
        }

        /// Lane-unrolled `sq_dist` matches the sequential reduction, and is
        /// exactly zero on identical inputs.
        #[test]
        fn prop_sq_dist_matches_sequential(
            a in proptest::collection::vec(-10.0f32..10.0, 1..70),
        ) {
            let b: Vec<f32> = a.iter().map(|v| v + 0.25).collect();
            let naive: f32 = a.iter().zip(b.iter())
                .map(|(&x, &y)| (x - y) * (x - y)).sum();
            let fast = sq_dist(&a, &b);
            let scale = naive.abs().max(fast.abs()).max(1.0);
            prop_assert!((fast - naive).abs() <= 1e-4 * scale);
            prop_assert_eq!(sq_dist(&a, &a), 0.0);
        }

        /// Lane-unrolled `axpy` is bit-identical to the naive update.
        #[test]
        fn prop_axpy_matches_sequential(
            a in proptest::collection::vec(-10.0f32..10.0, 1..70),
            alpha in -4.0f32..4.0,
        ) {
            let b: Vec<f32> = a.iter().map(|v| v * 1.5 - 2.0).collect();
            let mut fast = a.clone();
            axpy(&mut fast, alpha, &b);
            let naive: Vec<f32> = a.iter().zip(b.iter())
                .map(|(&x, &y)| x + alpha * y).collect();
            prop_assert_eq!(fast, naive);
        }
    }
}
