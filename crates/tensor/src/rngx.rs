//! Seedable sampling distributions implemented from scratch.
//!
//! The workspace deliberately depends only on the `rand` core crate; the
//! distributions needed by the experimental protocol — normal noise for
//! synthetic images, gamma/Dirichlet for label-skew partitioning — are
//! implemented here (Box–Muller and Marsaglia–Tsang respectively).

use rand::Rng;

/// Draws one sample from `N(mean, std²)` via the Box–Muller transform.
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn normal(rng: &mut impl Rng, mean: f32, std: f32) -> f32 {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    if std == 0.0 {
        return mean;
    }
    // Box–Muller: avoid u1 == 0 to keep ln finite.
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    mean + std * z
}

/// Fills a vector with i.i.d. `N(mean, std²)` samples.
pub fn normal_vec(rng: &mut impl Rng, n: usize, mean: f32, std: f32) -> Vec<f32> {
    (0..n).map(|_| normal(rng, mean, std)).collect()
}

/// Draws one sample from `Gamma(shape, 1)` using Marsaglia–Tsang squeeze
/// (with the standard `shape < 1` boost).
///
/// # Panics
///
/// Panics if `shape <= 0`.
pub fn gamma(rng: &mut impl Rng, shape: f32) -> f32 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f32 = rng.random_range(f32::EPSILON..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng, 0.0, 1.0);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f32 = rng.random_range(f32::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Draws one sample from the symmetric `Dirichlet(alpha, ..., alpha)` over
/// `k` categories. Smaller `alpha` means more skew — the standard non-IID
/// federated-learning partitioning knob.
///
/// # Panics
///
/// Panics if `k == 0` or `alpha <= 0`.
pub fn dirichlet(rng: &mut impl Rng, alpha: f32, k: usize) -> Vec<f32> {
    dirichlet_with(rng, &vec![alpha; k])
}

/// Draws one sample from `Dirichlet(alphas)`.
///
/// # Panics
///
/// Panics if `alphas` is empty or any entry is non-positive.
pub fn dirichlet_with(rng: &mut impl Rng, alphas: &[f32]) -> Vec<f32> {
    assert!(!alphas.is_empty(), "dirichlet needs at least one category");
    let gammas: Vec<f32> = alphas.iter().map(|&a| gamma(rng, a)).collect();
    let sum: f32 = gammas.iter().sum();
    if sum <= 1e-20 {
        // Numerically degenerate draw (can happen for very small alpha);
        // fall back to a one-hot on a random category, which is the limit
        // behaviour of Dirichlet as alpha -> 0.
        let mut out = vec![0.0; alphas.len()];
        out[rng.random_range(0..alphas.len())] = 1.0;
        return out;
    }
    gammas.into_iter().map(|g| g / sum).collect()
}

/// Samples one index from a (not necessarily normalised) weight vector.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn categorical(rng: &mut impl Rng, weights: &[f32]) -> usize {
    assert!(!weights.is_empty(), "categorical needs at least one weight");
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "categorical weights must have positive sum");
    let mut t = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

/// Fisher–Yates shuffle of a slice (uniform over permutations).
pub fn shuffle<T>(rng: &mut impl Rng, slice: &mut [T]) {
    for i in (1..slice.len()).rev() {
        let j = rng.random_range(0..=i);
        slice.swap(i, j);
    }
}

/// Samples `m` distinct indices uniformly from `0..n` (partial Fisher–Yates).
///
/// # Panics
///
/// Panics if `m > n`.
pub fn sample_without_replacement(rng: &mut impl Rng, n: usize, m: usize) -> Vec<usize> {
    assert!(m <= n, "cannot sample {m} from {n} without replacement");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..m {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(m);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs = normal_vec(&mut rng, 20_000, 2.0, 3.0);
        assert!((vector::mean(&xs) - 2.0).abs() < 0.1);
        assert!((vector::std_dev(&xs) - 3.0).abs() < 0.1);
    }

    #[test]
    fn normal_zero_std_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(normal(&mut rng, 5.0, 0.0), 5.0);
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        for &shape in &[0.5f32, 1.0, 2.5, 8.0] {
            let xs: Vec<f32> = (0..20_000).map(|_| gamma(&mut rng, shape)).collect();
            let m = vector::mean(&xs);
            assert!(
                (m - shape).abs() < 0.15 * shape.max(1.0),
                "gamma({shape}) sample mean {m}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_is_skewed_for_small_alpha() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = dirichlet(&mut rng, 0.1, 10);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        let max = p.iter().cloned().fold(0.0, f32::max);
        assert!(max > 0.3, "alpha=0.1 draws should be skewed, got max {max}");
        let q = dirichlet(&mut rng, 100.0, 10);
        let max_q = q.iter().cloned().fold(0.0, f32::max);
        assert!(
            max_q < 0.2,
            "alpha=100 draws should be near-uniform, got max {max_q}"
        );
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        let f2 = counts[2] as f32 / 30_000.0;
        assert!((f2 - 0.7).abs() < 0.02, "weight-7 category frequency {f2}");
    }

    #[test]
    fn sampling_without_replacement_is_distinct() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = sample_without_replacement(&mut rng, 100, 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<usize> = (0..50).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = gamma(&mut rng, 0.0);
    }
}
