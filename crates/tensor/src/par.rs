//! Row-chunk parallel executor for tensor kernels.
//!
//! Matrix kernels in this crate write disjoint row ranges of one output
//! buffer, so the only parallel primitive they need is "split the output
//! into contiguous row chunks and run a closure on each chunk in its own
//! scoped thread". [`for_each_row_chunk`] provides exactly that, built on
//! the vendored crossbeam scoped threads.
//!
//! Small problems stay serial: thread spawn/join costs microseconds, which
//! dwarfs the kernel time for the tiny per-layer matrices most models here
//! use. Work is estimated by the caller in multiply-add units and compared
//! against [`PAR_MIN_WORK`].

use std::sync::OnceLock;

/// Minimum estimated work (multiply-adds) before a kernel goes parallel.
///
/// Below this, scoped-thread spawn/join overhead exceeds the kernel time;
/// 1M multiply-adds is ~0.1–1 ms of serial work on one core.
pub const PAR_MIN_WORK: usize = 1 << 20;

/// Number of worker threads tensor kernels may use.
///
/// Defaults to [`std::thread::available_parallelism`]; override with the
/// `SHIFTEX_NUM_THREADS` environment variable (values `0` and `1` both mean
/// "serial"). The value is read once and cached for the process lifetime.
pub fn max_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("SHIFTEX_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    })
}

/// Runs `f(first_row, chunk)` over disjoint contiguous row chunks of `out`.
///
/// `out` is interpreted as a row-major buffer of `row_width`-wide rows.
/// When `work` (caller's estimate of total multiply-adds) is below
/// [`PAR_MIN_WORK`], or only one thread is available, `f` runs once on the
/// whole buffer — the serial fast path pays zero synchronisation cost.
/// Otherwise the rows are split into at most [`max_threads`] chunks, each
/// handled by a crossbeam scoped thread.
///
/// # Panics
///
/// Panics if `row_width == 0` while `out` is non-empty, or if a worker
/// thread panics (the panic is propagated).
pub fn for_each_row_chunk<F>(out: &mut [f32], row_width: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        return;
    }
    assert!(row_width > 0, "row_width must be positive");
    debug_assert_eq!(out.len() % row_width, 0, "buffer is not whole rows");
    let rows = out.len() / row_width;
    let threads = max_threads();
    if threads <= 1 || rows < 2 || work < PAR_MIN_WORK {
        f(0, out);
        return;
    }
    let chunks = threads.min(rows);
    let rows_per_chunk = rows.div_ceil(chunks);
    crossbeam::thread::scope(|scope| {
        for (ci, chunk) in out.chunks_mut(rows_per_chunk * row_width).enumerate() {
            let f = &f;
            scope.spawn(move |_| f(ci * rows_per_chunk, chunk));
        }
    })
    .expect("tensor worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_path_covers_all_rows() {
        let mut buf = vec![0.0f32; 4 * 3];
        for_each_row_chunk(&mut buf, 3, 0, |first, chunk| {
            for (r, row) in chunk.chunks_exact_mut(3).enumerate() {
                row.fill((first + r) as f32);
            }
        });
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[3], 1.0);
        assert_eq!(buf[9], 3.0);
    }

    #[test]
    fn parallel_path_covers_all_rows() {
        // Force the parallel branch regardless of machine size by passing
        // huge estimated work; with one hardware thread it still runs serial,
        // which is exactly the contract.
        let rows = 37;
        let width = 5;
        let mut buf = vec![-1.0f32; rows * width];
        for_each_row_chunk(&mut buf, width, usize::MAX, |first, chunk| {
            for (r, row) in chunk.chunks_exact_mut(width).enumerate() {
                row.fill((first + r) as f32);
            }
        });
        for r in 0..rows {
            assert!(buf[r * width..(r + 1) * width]
                .iter()
                .all(|&v| v == r as f32));
        }
    }

    #[test]
    fn empty_buffer_is_noop() {
        let mut buf: Vec<f32> = Vec::new();
        for_each_row_chunk(&mut buf, 0, usize::MAX, |_, _| panic!("must not run"));
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
