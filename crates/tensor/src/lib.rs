//! Minimal, dependency-light f32 tensor math for the ShiftEx reproduction.
//!
//! This crate provides the numeric substrate used by every other crate in the
//! workspace: a row-major [`Matrix`] type with the linear-algebra operations a
//! small neural-network library needs, free-function vector helpers in
//! [`vector`], seedable sampling distributions in [`rngx`] (normal, gamma,
//! Dirichlet — implemented from scratch so the workspace depends only on the
//! `rand` core), descriptive statistics in [`stats`], and the row-chunk
//! parallel executor behind the blocked matrix kernels in [`par`]. Naive
//! reference implementations of the blocked kernels live in [`naive`] for
//! equivalence testing.
//!
//! # Example
//!
//! ```
//! use shiftex_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

// `deny` rather than `forbid`: the one exception is the explicit-SIMD
// kernel module, which carries its own scoped `allow` and documents why
// autovectorization alone cannot be trusted on the Gram-matrix hot path.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
pub mod par;
pub mod rngx;
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
mod simd;
pub mod stats;
pub mod vector;

pub use matrix::{naive, Matrix};

/// Error type for shape mismatches and invalid numeric arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes; payload is a human-readable
    /// description of the expected vs. actual shapes.
    ShapeMismatch(String),
    /// A numeric argument was outside its valid domain.
    InvalidArgument(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
