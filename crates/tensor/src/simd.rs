//! Explicit AVX2+FMA kernels behind the [`crate::vector`] dispatch.
//!
//! The safe lane-unrolled kernels in [`crate::vector`] are written so the
//! autovectorizer *can* turn them into SIMD — but whether it actually does
//! depends on fragile SLP-vectorizer heuristics: the same source compiles
//! to clean 8-wide FMA chains in one crate context and to a shuffle-heavy
//! 4-wide form in another (observed with rustc 1.95: presence of a second
//! caller of the kernel closure flips the chosen vector axis and costs
//! 2–4× on the Gram-matrix hot path). The reductions here are the one
//! place in the workspace where that variance is unacceptable, so this
//! module pins the instruction selection with `core::arch` intrinsics.
//!
//! This is the only module in the crate allowed to use `unsafe`; it is
//! compiled (and reachable) only when the build target enables both `avx2`
//! and `fma` — which the repo's `target-cpu=native` build flag does on any
//! modern x86-64 host. Every other configuration uses the safe fallbacks.
//!
//! The accumulator layout (four 8-lane registers per operand row, i.e.
//! [`LANES`] = 32 partial sums) and the reduction tree mirror the safe
//! fallback exactly, so both paths agree up to the usual FMA-vs-mul-add
//! rounding differences of the tails they share.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_fmadd_ps,
    _mm256_loadu_ps, _mm256_setzero_ps, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32,
    _mm_movehl_ps, _mm_shuffle_ps,
};

use crate::vector::LANES;

/// Dot product over the main [`LANES`]-multiple prefix plus a scalar tail.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = b.len();
    let main = n - n % LANES;
    // SAFETY: avx2+fma are statically enabled (this module only compiles
    // under `cfg(all(target_feature = "avx2", target_feature = "fma"))`, see
    // the module docs), so the intrinsics cannot fault. Every unaligned load
    // reads 8 floats at offset `i + {0,8,16,24}` with `i + 32 <= main`, and
    // `main <= a.len() == b.len()` (lengths asserted equal above), so all
    // accesses stay inside the two live slices.
    unsafe {
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 16)),
                _mm256_loadu_ps(pb.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 24)),
                _mm256_loadu_ps(pb.add(i + 24)),
                acc3,
            );
            i += LANES;
        }
        let mut tail = 0.0f32;
        for k in main..n {
            tail = a[k].mul_add(b[k], tail);
        }
        reduce4(acc0, acc1, acc2, acc3) + tail
    }
}

/// Two dot products sharing one streamed `b`; see [`crate::vector::dot2`].
#[inline]
pub fn dot2(a0: &[f32], a1: &[f32], b: &[f32]) -> [f32; 2] {
    debug_assert_eq!(a0.len(), b.len());
    debug_assert_eq!(a1.len(), b.len());
    let n = b.len();
    let main = n - n % LANES;
    // SAFETY: avx2+fma are statically enabled (module-level cfg), so the
    // intrinsics cannot fault. Each load reads 8 floats at `i + {0,8,16,24}`
    // with `i + 32 <= main`, and `main` is bounded by the asserted-equal
    // lengths of all three slices, so every access is in bounds.
    unsafe {
        let (p0, p1, pb) = (a0.as_ptr(), a1.as_ptr(), b.as_ptr());
        let mut acc00 = _mm256_setzero_ps();
        let mut acc01 = _mm256_setzero_ps();
        let mut acc02 = _mm256_setzero_ps();
        let mut acc03 = _mm256_setzero_ps();
        let mut acc10 = _mm256_setzero_ps();
        let mut acc11 = _mm256_setzero_ps();
        let mut acc12 = _mm256_setzero_ps();
        let mut acc13 = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            let b0 = _mm256_loadu_ps(pb.add(i));
            let b1 = _mm256_loadu_ps(pb.add(i + 8));
            let b2 = _mm256_loadu_ps(pb.add(i + 16));
            let b3 = _mm256_loadu_ps(pb.add(i + 24));
            acc00 = _mm256_fmadd_ps(_mm256_loadu_ps(p0.add(i)), b0, acc00);
            acc01 = _mm256_fmadd_ps(_mm256_loadu_ps(p0.add(i + 8)), b1, acc01);
            acc02 = _mm256_fmadd_ps(_mm256_loadu_ps(p0.add(i + 16)), b2, acc02);
            acc03 = _mm256_fmadd_ps(_mm256_loadu_ps(p0.add(i + 24)), b3, acc03);
            acc10 = _mm256_fmadd_ps(_mm256_loadu_ps(p1.add(i)), b0, acc10);
            acc11 = _mm256_fmadd_ps(_mm256_loadu_ps(p1.add(i + 8)), b1, acc11);
            acc12 = _mm256_fmadd_ps(_mm256_loadu_ps(p1.add(i + 16)), b2, acc12);
            acc13 = _mm256_fmadd_ps(_mm256_loadu_ps(p1.add(i + 24)), b3, acc13);
            i += LANES;
        }
        let mut t0 = 0.0f32;
        let mut t1 = 0.0f32;
        for k in main..n {
            t0 = a0[k].mul_add(b[k], t0);
            t1 = a1[k].mul_add(b[k], t1);
        }
        [
            reduce4(acc00, acc01, acc02, acc03) + t0,
            reduce4(acc10, acc11, acc12, acc13) + t1,
        ]
    }
}

/// Squared Euclidean distance; exactly `0.0` for identical inputs
/// (every difference is `0.0` before accumulation).
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = b.len();
    let main = n - n % LANES;
    // SAFETY: avx2+fma are statically enabled (module-level cfg), so the
    // intrinsics cannot fault. Each load reads 8 floats at `i + {0,8,16,24}`
    // with `i + 32 <= main <= a.len() == b.len()` (lengths asserted equal
    // above), so every access stays inside the two live slices.
    unsafe {
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
            );
            let d2 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(i + 16)),
                _mm256_loadu_ps(pb.add(i + 16)),
            );
            let d3 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(i + 24)),
                _mm256_loadu_ps(pb.add(i + 24)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            acc2 = _mm256_fmadd_ps(d2, d2, acc2);
            acc3 = _mm256_fmadd_ps(d3, d3, acc3);
            i += LANES;
        }
        let mut tail = 0.0f32;
        for k in main..n {
            let d = a[k] - b[k];
            tail = d.mul_add(d, tail);
        }
        reduce4(acc0, acc1, acc2, acc3) + tail
    }
}

/// Horizontal sum of four 8-lane accumulators with a balanced tree:
/// `(a+b) + (c+d)` lanewise, then `8 → 4 → 2 → 1`.
#[inline]
// SAFETY: callers must (and do — this fn is module-private) run under the
// avx2 target feature; with that established the body is pure register
// arithmetic with no memory access, so there is no pointer obligation.
unsafe fn reduce4(a: __m256, b: __m256, c: __m256, d: __m256) -> f32 {
    // SAFETY: avx2 is statically enabled (module-level cfg); pure register
    // arithmetic, no memory access.
    unsafe {
        let s = _mm256_add_ps(_mm256_add_ps(a, b), _mm256_add_ps(c, d));
        let q = _mm_add_ps(_mm256_castps256_ps128(s), _mm256_extractf128_ps(s, 1));
        let h = _mm_add_ps(q, _mm_movehl_ps(q, q));
        _mm_cvtss_f32(_mm_add_ss(h, _mm_shuffle_ps(h, h, 1)))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn simd_dot_matches_scalar() {
        let a: Vec<f32> = (0..77).map(|i| i as f32 * 0.25 - 9.0).collect();
        let b: Vec<f32> = (0..77).map(|i| 3.0 - i as f32 * 0.125).collect();
        let scalar: f64 = a.iter().zip(&b).map(|(&x, &y)| (x as f64) * y as f64).sum();
        let fast = super::dot(&a, &b) as f64;
        assert!((fast - scalar).abs() < 1e-2 * scalar.abs().max(1.0));
        let pair = super::dot2(&a, &a, &b);
        assert_eq!(pair[0], pair[1]);
        assert_eq!(pair[0], super::dot(&a, &b));
    }

    #[test]
    fn simd_sq_dist_identical_is_zero() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        assert_eq!(super::sq_dist(&a, &a), 0.0);
    }
}
