//! Descriptive statistics used by threshold calibration and reporting.

/// Summary of a scalar sample: mean, standard deviation and extremes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Computes a summary of `xs` (all-zero summary for empty input).
    pub fn of(xs: &[f32]) -> Self {
        if xs.is_empty() {
            return Self {
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mean = crate::vector::mean(xs);
        let std = crate::vector::std_dev(xs);
        let min = xs.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        Self {
            mean,
            std,
            min,
            max,
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (min {:.4}, max {:.4}, n={})",
            self.mean, self.std, self.min, self.max, self.n
        )
    }
}

/// Empirical quantile with linear interpolation, `q ∈ [0, 1]`.
///
/// Uses `select_nth_unstable_by` (expected O(n)) instead of a full sort —
/// the median heuristic feeds this ~32k pairwise distances per detector
/// construction, where O(n log n) sorting dominated. Only the `lo`-th order
/// statistic is selected; the `hi` neighbour needed for interpolation is the
/// minimum of the partition's upper half.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut scratch: Vec<f32> = xs.to_vec();
    let pos = q * (scratch.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let (_, &mut lo_val, upper) = scratch.select_nth_unstable_by(lo, f32::total_cmp);
    if lo == hi {
        lo_val
    } else {
        let hi_val = upper
            .iter()
            .copied()
            .min_by(f32::total_cmp)
            .expect("hi > lo implies a non-empty upper partition");
        let frac = pos - lo as f32;
        lo_val * (1.0 - frac) + hi_val * frac
    }
}

/// Histogram of non-negative integer-valued labels into `bins` counts.
pub fn label_counts(labels: impl IntoIterator<Item = usize>, bins: usize) -> Vec<usize> {
    let mut counts = vec![0usize; bins];
    for l in labels {
        if l < bins {
            counts[l] += 1;
        }
    }
    counts
}

/// Normalised label histogram (`ŷ[i] = count_i / total`); uniform if empty.
pub fn label_histogram(labels: impl IntoIterator<Item = usize>, bins: usize) -> Vec<f32> {
    let counts = label_counts(labels, bins);
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![1.0 / bins.max(1) as f32; bins];
    }
    counts
        .into_iter()
        .map(|c| c as f32 / total as f32)
        .collect()
}

/// Exponential moving average: `beta * prev + (1 - beta) * next`, elementwise.
///
/// # Panics
///
/// Panics if the slices have different lengths or `beta` is outside `[0, 1]`.
pub fn ema_update(prev: &[f32], next: &[f32], beta: f32) -> Vec<f32> {
    assert_eq!(prev.len(), next.len(), "ema length mismatch");
    assert!((0.0..=1.0).contains(&beta), "ema beta must be in [0,1]");
    prev.iter()
        .zip(next.iter())
        .map(|(&p, &n)| beta * p + (1.0 - beta) * n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn label_histogram_normalises() {
        let h = label_histogram([0, 0, 1, 2], 4);
        assert_eq!(h, vec![0.5, 0.25, 0.25, 0.0]);
    }

    #[test]
    fn label_histogram_empty_is_uniform() {
        let h = label_histogram(std::iter::empty(), 4);
        assert_eq!(h, vec![0.25; 4]);
    }

    #[test]
    fn ema_blends() {
        let out = ema_update(&[1.0, 0.0], &[0.0, 1.0], 0.9);
        assert!((out[0] - 0.9).abs() < 1e-6);
        assert!((out[1] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn label_counts_ignores_out_of_range() {
        let c = label_counts([0, 1, 9], 2);
        assert_eq!(c, vec![1, 1]);
    }
}
