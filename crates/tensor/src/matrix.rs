//! Row-major `f32` matrix with the operations a small NN stack needs.
//!
//! The matrix-product kernels ([`Matrix::matmul`], [`Matrix::matmul_t`],
//! [`Matrix::t_matmul`]) are blocked for cache reuse, register-tiled over
//! [`MR`] output rows, and split across scoped worker threads once the
//! estimated work crosses [`crate::par::PAR_MIN_WORK`] (tiny model matrices
//! never pay spawn cost). Accumulation order over the shared dimension is
//! the same ascending order as the textbook loops, so `matmul`/`t_matmul`
//! results are bit-identical to the naive references in [`naive`];
//! `matmul_t` rides the lane-unrolled [`crate::vector::dot`] and may differ
//! by normal `f32` rounding.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::vector;

/// Register tile height: output rows updated together in [`Matrix::matmul`],
/// amortising each load of a `rhs` row stripe over four accumulator rows.
const MR: usize = 4;
/// Depth (shared-dimension) blocking factor of [`Matrix::matmul`].
const KC: usize = 256;
/// Output-column blocking factor of [`Matrix::matmul`]: one `KC × NC` panel
/// of `rhs` (1 MiB at f32) stays cache-resident while a row tile sweeps it.
const NC: usize = 1024;
/// Square tile side of the blocked [`Matrix::transpose`].
const TB: usize = 32;

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the workhorse of the workspace: mini-batches are stored as
/// `(batch, features)` matrices, dense-layer weights as `(in, out)` matrices.
/// All operations panic on shape mismatch (they are internal programming
/// errors, not recoverable conditions) — the panic message names the shapes.
///
/// # Example
///
/// ```
/// use shiftex_tensor::Matrix;
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from an owned backing vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "backing vector length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows: expected {c}, got {}", row.len());
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Samples every element i.i.d. from `N(mean, std²)` using the Box–Muller
    /// transform (see [`crate::rngx::normal`]).
    pub fn randn(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| crate::rngx::normal(rng, mean, std))
    }

    /// Xavier/Glorot-uniform initialisation for a dense-layer weight of shape
    /// `(fan_in, fan_out)`: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::from_fn(fan_in, fan_out, |_, _| rng.random_range(-a..a))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over one column's values, walking the backing buffer with a
    /// stride of `cols` (one bounds check per column, not per element).
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols` (unless the matrix has zero rows).
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(self.rows == 0 || c < self.cols, "column {c} out of bounds");
        self.data
            .get(c..)
            .unwrap_or(&[])
            .iter()
            .step_by(self.cols.max(1))
            .copied()
    }

    /// Copies one column into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        self.col_iter(c).collect()
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Matrix product `self · rhs`.
    ///
    /// Blocked over depth (`KC`) and output columns (`NC`) with an
    /// `MR`-row register tile, and parallelised over output-row chunks for
    /// large shapes (see [`crate::par`]). Per-element accumulation over the
    /// shared dimension stays ascending, so results are bit-identical to
    /// [`naive::matmul`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({}x{}) x ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (kd, n) = (self.cols, rhs.cols);
        let mut out = Matrix::zeros(self.rows, n);
        let work = self.rows * kd * n;
        let (a, b) = (&self.data, &rhs.data);
        crate::par::for_each_row_chunk(&mut out.data, n.max(1), work, |first, chunk| {
            let rows = chunk.len() / n;
            matmul_block(&a[first * kd..(first + rows) * kd], b, chunk, kd, n);
        });
        out
    }

    /// `selfᵀ · rhs` without materialising the transpose.
    ///
    /// Sweeps the rows of both operands once per output-row chunk,
    /// accumulating rank-1 updates with the lane-unrolled
    /// [`crate::vector::axpy`]; zero coefficients (common in post-ReLU
    /// gradients) skip their update. Bit-identical to [`naive::t_matmul`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T x ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, ca, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(ca, n);
        let work = m * ca * n;
        let (a, b) = (&self.data, &rhs.data);
        crate::par::for_each_row_chunk(&mut out.data, n.max(1), work, |first, chunk| {
            for r in 0..m {
                let a_row = &a[r * ca..(r + 1) * ca];
                let b_row = &b[r * n..(r + 1) * n];
                for (li, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                    let coeff = a_row[first + li];
                    if coeff != 0.0 {
                        vector::axpy(out_row, coeff, b_row);
                    }
                }
            }
        });
        out
    }

    /// `self · rhsᵀ` without materialising the transpose.
    ///
    /// Every output element is one lane-unrolled [`crate::vector::dot`] of
    /// two contiguous rows — the ideal memory layout for a Gram matrix —
    /// parallelised over output-row chunks.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: ({}x{}) x ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (kd, p) = (self.cols, rhs.rows);
        let mut out = Matrix::zeros(self.rows, p);
        let work = self.rows * p * kd;
        let (a, b) = (&self.data, &rhs.data);
        crate::par::for_each_row_chunk(&mut out.data, p.max(1), work, |first, chunk| {
            // Row pairs share each streamed rhs row via dot2; a trailing odd
            // row falls back to a single dot (bit-identical result).
            let mut tiles = chunk.chunks_exact_mut(2 * p);
            let mut i0 = first;
            for tile in &mut tiles {
                let a0 = &a[i0 * kd..(i0 + 1) * kd];
                let a1 = &a[(i0 + 1) * kd..(i0 + 2) * kd];
                let (r0, r1) = tile.split_at_mut(p);
                for j in 0..p {
                    let d = vector::dot2(a0, a1, &b[j * kd..(j + 1) * kd]);
                    r0[j] = d[0];
                    r1[j] = d[1];
                }
                i0 += 2;
            }
            for (li, out_row) in tiles.into_remainder().chunks_exact_mut(p).enumerate() {
                let a_row = &a[(i0 + li) * kd..(i0 + li + 1) * kd];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = vector::dot(a_row, &b[j * kd..(j + 1) * kd]);
                }
            }
        });
        out
    }

    /// Symmetric Gram product `self · selfᵀ`: computes only the upper
    /// triangle (row pairs via [`crate::vector::dot2`], split over the
    /// parallel executor like [`Matrix::matmul_t`]) and mirrors it, roughly
    /// halving the work of `matmul_t` on its own transpose. `dot(x, y)` and
    /// `dot(y, x)` are bit-identical, so the mirrored matrix equals the
    /// full product exactly.
    pub fn self_gram(&self) -> Matrix {
        let (n, kd) = (self.rows, self.cols);
        let mut out = Matrix::zeros(n, n);
        let a = &self.data;
        // Triangle work ≈ half of the full product; chunks of later rows
        // carry less of it, which is acceptable imbalance for the executor.
        let work = n * n * kd / 2;
        crate::par::for_each_row_chunk(&mut out.data, n.max(1), work, |first, chunk| {
            // Pair rows within the chunk; each row i owns entries j >= i.
            let rows = chunk.len() / n;
            let mut li = 0;
            while li + 2 <= rows {
                let i = first + li;
                let a0 = &a[i * kd..(i + 1) * kd];
                let a1 = &a[(i + 1) * kd..(i + 2) * kd];
                let (r0, rest) = chunk[li * n..(li + 2) * n].split_at_mut(n);
                for j in i..n {
                    let d = vector::dot2(a0, a1, &a[j * kd..(j + 1) * kd]);
                    r0[j] = d[0];
                    rest[j] = d[1];
                }
                li += 2;
            }
            if li < rows {
                let i = first + li;
                let a_row = &a[i * kd..(i + 1) * kd];
                let out_row = &mut chunk[li * n..(li + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate().skip(i) {
                    *o = vector::dot(a_row, &a[j * kd..(j + 1) * kd]);
                }
            }
        });
        // Mirror the strict upper triangle down.
        let dst = &mut out.data;
        for r in 0..n {
            for c in (r + 1)..n {
                dst[c * n + r] = dst[r * n + c];
            }
        }
        out
    }

    /// Returns the transpose as a new matrix, copying `TB`×`TB` tiles
    /// so both the source and destination access patterns stay
    /// cache-resident.
    pub fn transpose(&self) -> Matrix {
        let (r, c) = (self.rows, self.cols);
        let mut out = Matrix::zeros(c, r);
        let dst = &mut out.data;
        for ib in (0..r).step_by(TB) {
            let iend = (ib + TB).min(r);
            for jb in (0..c).step_by(TB) {
                let jend = (jb + TB).min(c);
                for i in ib..iend {
                    let src_row = &self.data[i * c..(i + 1) * c];
                    for j in jb..jend {
                        dst[j * r + i] = src_row[j];
                    }
                }
            }
        }
        out
    }

    /// Pairwise squared Euclidean distances between the rows of `self` and
    /// the rows of `other`: entry `(i, j)` is `‖selfᵢ − otherⱼ‖²`, computed
    /// as `‖x‖² + ‖y‖² − 2·X·Yᵀ` with a single blocked [`Matrix::matmul_t`]
    /// call (or the half-work [`Matrix::self_gram`] when `other` is the
    /// same matrix). Entries are clamped at zero to absorb the cancellation
    /// error the norm expansion allows; a row compared against itself (same
    /// floating-point values) yields exactly `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn pairwise_sq_dists(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "pairwise_sq_dists dimension mismatch: {} vs {}",
            self.cols, other.cols
        );
        let mut g = if std::ptr::eq(self, other) {
            self.self_gram()
        } else {
            self.matmul_t(other)
        };
        let na: Vec<f32> = self.iter_rows().map(|r| vector::dot(r, r)).collect();
        let nb: Vec<f32> = other.iter_rows().map(|r| vector::dot(r, r)).collect();
        for (i, row) in g.data.chunks_exact_mut(g.cols.max(1)).enumerate() {
            let ni = na[i];
            for (v, &nj) in row.iter_mut().zip(nb.iter()) {
                *v = (ni + nj - 2.0 * *v).max(0.0);
            }
        }
        g
    }

    /// Element-wise addition. Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise subtraction. Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product. Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Element-wise combination with a binary function. Panics on shape mismatch.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiplies every element by a scalar, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// `self += alpha * rhs`, in place. Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Adds `bias` (length `cols`) to every row, in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }

    /// Column-wise sum, returning a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (s, &v) in sums.iter_mut().zip(row.iter()) {
                *s += v;
            }
        }
        sums
    }

    /// Column-wise mean, returning a vector of length `cols`.
    ///
    /// Returns zeros when the matrix has no rows.
    pub fn col_means(&self) -> Vec<f32> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let inv = 1.0 / self.rows as f32;
        self.col_sums().into_iter().map(|s| s * inv).collect()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm `sqrt(Σ v²)`.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum element in each row (ties go to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows().map(crate::vector::argmax).collect()
    }

    /// Extracts the sub-matrix made of the given rows (copied).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Stacks matrices vertically. All inputs must share `cols`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ or `mats` is empty.
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vstack of empty list");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }
}

/// Serial blocked matmul kernel over one chunk of output rows.
///
/// `a` holds the matching chunk of `self`'s rows (`chunk.len() / n` rows of
/// depth `kd`), `b` the full right-hand operand. Output rows are processed
/// in [`MR`]-row register tiles; within a tile, each depth index broadcasts
/// one coefficient per row against a cache-resident `KC × NC` panel of `b`.
fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], kd: usize, n: usize) {
    for (t, tile) in out.chunks_mut(MR * n).enumerate() {
        let tile_rows = tile.len() / n;
        let a_tile = &a[t * MR * kd..t * MR * kd + tile_rows * kd];
        if tile_rows == MR {
            let (r0, rest) = tile.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            for kb in (0..kd).step_by(KC) {
                let kend = (kb + KC).min(kd);
                for jb in (0..n).step_by(NC) {
                    let jend = (jb + NC).min(n);
                    for k in kb..kend {
                        let b_stripe = &b[k * n + jb..k * n + jend];
                        axpy_nonzero(&mut r0[jb..jend], a_tile[k], b_stripe);
                        axpy_nonzero(&mut r1[jb..jend], a_tile[kd + k], b_stripe);
                        axpy_nonzero(&mut r2[jb..jend], a_tile[2 * kd + k], b_stripe);
                        axpy_nonzero(&mut r3[jb..jend], a_tile[3 * kd + k], b_stripe);
                    }
                }
            }
        } else {
            // Remainder tile (fewer than MR rows): row-at-a-time, same
            // kb/jb blocking so the accumulation order is unchanged.
            for (r, out_row) in tile.chunks_exact_mut(n).enumerate() {
                let a_row = &a_tile[r * kd..(r + 1) * kd];
                for kb in (0..kd).step_by(KC) {
                    let kend = (kb + KC).min(kd);
                    for jb in (0..n).step_by(NC) {
                        let jend = (jb + NC).min(n);
                        for k in kb..kend {
                            let b_stripe = &b[k * n + jb..k * n + jend];
                            axpy_nonzero(&mut out_row[jb..jend], a_row[k], b_stripe);
                        }
                    }
                }
            }
        }
    }
}

/// [`vector::axpy`] that skips zero coefficients (sparse activations and
/// ReLU-masked gradients make these common).
#[inline]
fn axpy_nonzero(out: &mut [f32], coeff: f32, b: &[f32]) {
    if coeff != 0.0 {
        vector::axpy(out, coeff, b);
    }
}

/// Naive reference implementations of the blocked [`Matrix`] kernels.
///
/// Textbook loops with no blocking, tiling, unrolling or threading. They
/// exist so property tests (and benches) can check the optimized kernels
/// against an implementation whose correctness is obvious; production code
/// should always call the `Matrix` methods.
pub mod naive {
    use super::Matrix;

    /// Textbook triple-loop `a · b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|k| a.get(i, k) * b.get(k, j)).sum()
        })
    }

    /// Textbook `aᵀ · b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() != b.rows()`.
    pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "t_matmul shape mismatch");
        Matrix::from_fn(a.cols(), b.cols(), |i, j| {
            (0..a.rows()).map(|r| a.get(r, i) * b.get(r, j)).sum()
        })
    }

    /// Textbook `a · bᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.cols()`.
    pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_t shape mismatch");
        Matrix::from_fn(a.rows(), b.rows(), |i, j| {
            (0..a.cols()).map(|k| a.get(i, k) * b.get(j, k)).sum()
        })
    }

    /// Element-by-element transpose.
    pub fn transpose(a: &Matrix) -> Matrix {
        Matrix::from_fn(a.cols(), a.rows(), |i, j| a.get(j, i))
    }

    /// Per-pair squared-distance matrix via [`crate::vector::sq_dist`].
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn pairwise_sq_dists(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "pairwise_sq_dists dimension mismatch");
        Matrix::from_fn(a.rows(), b.rows(), |i, j| {
            crate::vector::sq_dist(a.row(i), b.row(j))
        })
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for row in self.iter_rows().take(6) {
            write!(f, "  ")?;
            for v in row.iter().take(8) {
                write!(f, "{v:>9.4} ")?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(4, 5, 0.0, 1.0, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(5, 3, 0.0, 1.0, &mut rng);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_and_colsums() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.col_sums(), vec![2.0, 4.0, 6.0]);
        assert_eq!(m.col_means(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let m = Matrix::from_rows(&[&[0.1, 0.9, 0.9], &[2.0, 1.0, 0.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_copies() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[&[5.0, 6.0], &[1.0, 2.0]]));
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::ones(1, 2);
        let b = Matrix::zeros(2, 2);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(0), &[1.0, 1.0]);
        assert_eq!(v.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(64, 32, &mut rng);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::full(2, 2, 2.5));
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(2, 2);
        assert!(!format!("{m}").is_empty());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn col_matches_strided_gather() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
        assert_eq!(m.col_iter(1).sum::<f32>(), 12.0);
        assert!(Matrix::zeros(0, 3).col(2).is_empty());
    }

    #[test]
    fn blocked_kernels_cross_depth_block_boundary() {
        // Shapes straddling KC (256) exercise the kb remainder handling.
        let mut rng = StdRng::seed_from_u64(21);
        let a = Matrix::randn(3, 300, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(300, 5, 0.0, 1.0, &mut rng);
        assert_close(&a.matmul(&b), &naive::matmul(&a, &b), 1e-4);
        let c = Matrix::randn(7, 300, 0.0, 1.0, &mut rng);
        assert_close(&a.matmul_t(&c), &naive::matmul_t(&a, &c), 1e-4);
    }

    #[test]
    fn pairwise_sq_dists_of_identical_rows_is_exactly_zero() {
        let mut rng = StdRng::seed_from_u64(22);
        let m = Matrix::randn(6, 33, 0.0, 2.0, &mut rng);
        let d = m.pairwise_sq_dists(&m);
        for i in 0..6 {
            assert_eq!(d.get(i, i), 0.0, "diagonal entry {i} must be exact 0");
        }
    }

    /// Asserts elementwise agreement within relative tolerance `tol`.
    fn assert_close(fast: &Matrix, slow: &Matrix, tol: f32) {
        assert_eq!(fast.shape(), slow.shape());
        for (i, (x, y)) in fast.as_slice().iter().zip(slow.as_slice()).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!(
                (x - y).abs() <= tol * scale,
                "element {i}: fast {x} vs naive {y}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Blocked `matmul` matches the naive reference across random
        /// shapes, including non-multiple-of-MR row counts.
        #[test]
        fn prop_matmul_matches_naive(m in 1usize..13, k in 1usize..40, n in 1usize..13,
                                     seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
            assert_close(&a.matmul(&b), &naive::matmul(&a, &b), 1e-4);
        }

        /// Blocked `matmul_t` matches the naive reference.
        #[test]
        fn prop_matmul_t_matches_naive(m in 1usize..13, k in 1usize..40, p in 1usize..13,
                                       seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
            let b = Matrix::randn(p, k, 0.0, 1.0, &mut rng);
            assert_close(&a.matmul_t(&b), &naive::matmul_t(&a, &b), 1e-4);
        }

        /// Blocked `t_matmul` matches the naive reference.
        #[test]
        fn prop_t_matmul_matches_naive(m in 1usize..40, k in 1usize..13, n in 1usize..13,
                                       seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
            let b = Matrix::randn(m, n, 0.0, 1.0, &mut rng);
            assert_close(&a.t_matmul(&b), &naive::t_matmul(&a, &b), 1e-4);
        }

        /// Tiled transpose matches the naive reference, including
        /// non-multiple-of-TB shapes, and round-trips.
        #[test]
        fn prop_transpose_matches_naive(r in 1usize..70, c in 1usize..70, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = Matrix::randn(r, c, 0.0, 1.0, &mut rng);
            let t = m.transpose();
            prop_assert_eq!(&t, &naive::transpose(&m));
            prop_assert_eq!(&t.transpose(), &m);
        }

        /// Gram-formula pairwise distances match per-pair `sq_dist` loops.
        #[test]
        fn prop_pairwise_sq_dists_matches_naive(m in 1usize..10, p in 1usize..10,
                                                d in 1usize..40, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::randn(m, d, 0.0, 1.0, &mut rng);
            let b = Matrix::randn(p, d, 1.0, 1.0, &mut rng);
            assert_close(&a.pairwise_sq_dists(&b), &naive::pairwise_sq_dists(&a, &b), 1e-4);
        }

        /// `col` equals an explicit per-element gather.
        #[test]
        fn prop_col_matches_get(r in 1usize..12, c in 1usize..12, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = Matrix::randn(r, c, 0.0, 1.0, &mut rng);
            for j in 0..c {
                let expect: Vec<f32> = (0..r).map(|i| m.get(i, j)).collect();
                prop_assert_eq!(m.col(j), expect);
            }
        }
    }
}
