//! Row-major `f32` matrix with the operations a small NN stack needs.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the workhorse of the workspace: mini-batches are stored as
/// `(batch, features)` matrices, dense-layer weights as `(in, out)` matrices.
/// All operations panic on shape mismatch (they are internal programming
/// errors, not recoverable conditions) — the panic message names the shapes.
///
/// # Example
///
/// ```
/// use shiftex_tensor::Matrix;
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from an owned backing vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "backing vector length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows: expected {c}, got {}", row.len());
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Samples every element i.i.d. from `N(mean, std²)` using the Box–Muller
    /// transform (see [`crate::rngx::normal`]).
    pub fn randn(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| crate::rngx::normal(rng, mean, std))
    }

    /// Xavier/Glorot-uniform initialisation for a dense-layer weight of shape
    /// `(fan_in, fan_out)`: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::from_fn(fan_in, fan_out, |_, _| rng.random_range(-a..a))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies one column into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Matrix product `self · rhs`.
    ///
    /// Uses an ikj loop order with a transposed accumulator access pattern,
    /// which is cache-friendly enough for the model sizes in this workspace.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({}x{}) x ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · rhs` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T x ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: ({}x{}) x ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                out.set(i, j, crate::vector::dot(a_row, rhs.row(j)));
            }
        }
        out
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise addition. Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise subtraction. Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product. Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Element-wise combination with a binary function. Panics on shape mismatch.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiplies every element by a scalar, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// `self += alpha * rhs`, in place. Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Adds `bias` (length `cols`) to every row, in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }

    /// Column-wise sum, returning a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (s, &v) in sums.iter_mut().zip(row.iter()) {
                *s += v;
            }
        }
        sums
    }

    /// Column-wise mean, returning a vector of length `cols`.
    ///
    /// Returns zeros when the matrix has no rows.
    pub fn col_means(&self) -> Vec<f32> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let inv = 1.0 / self.rows as f32;
        self.col_sums().into_iter().map(|s| s * inv).collect()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm `sqrt(Σ v²)`.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum element in each row (ties go to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows().map(crate::vector::argmax).collect()
    }

    /// Extracts the sub-matrix made of the given rows (copied).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Stacks matrices vertically. All inputs must share `cols`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ or `mats` is empty.
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vstack of empty list");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for row in self.iter_rows().take(6) {
            write!(f, "  ")?;
            for v in row.iter().take(8) {
                write!(f, "{v:>9.4} ")?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(4, 5, 0.0, 1.0, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(5, 3, 0.0, 1.0, &mut rng);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_and_colsums() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.col_sums(), vec![2.0, 4.0, 6.0]);
        assert_eq!(m.col_means(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let m = Matrix::from_rows(&[&[0.1, 0.9, 0.9], &[2.0, 1.0, 0.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_copies() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[&[5.0, 6.0], &[1.0, 2.0]]));
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::ones(1, 2);
        let b = Matrix::zeros(2, 2);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(0), &[1.0, 1.0]);
        assert_eq!(v.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(64, 32, &mut rng);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::full(2, 2, 2.5));
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(2, 2);
        assert!(!format!("{m}").is_empty());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
