//! Online drift monitoring for *gradual* distribution change.
//!
//! §2.1 of the paper distinguishes abrupt **shift** from gradual **drift**:
//! "a sequence of small shifts that accumulate and degrade model performance
//! over time … often requiring sustained monitoring". Per-window
//! thresholding catches abrupt shifts but misses slow drift whose
//! window-to-window scores each stay below δ. [`DriftMonitor`] closes that
//! gap with a one-sided CUSUM accumulator over the per-window scores.

use serde::{Deserialize, Serialize};

/// One-sided CUSUM drift accumulator.
///
/// Each window's detector score `s_t` (MMD², energy distance, …) updates
/// `C_t = max(0, C_{t-1} + s_t − reference)`; drift is signalled when
/// `C_t > decision_threshold`. A sequence of sub-δ scores that sit above
/// the stable-period reference accumulates to an alarm, while noise around
/// the reference keeps resetting to zero.
///
/// # Example
///
/// ```
/// use shiftex_detect::DriftMonitor;
///
/// let mut monitor = DriftMonitor::new(0.02, 0.15);
/// // Stable windows: scores at the noise floor — no alarm.
/// for _ in 0..10 {
///     assert!(!monitor.observe(0.015));
/// }
/// // Slow drift: each window is individually unremarkable…
/// let mut fired = false;
/// for _ in 0..10 {
///     fired |= monitor.observe(0.06);
/// }
/// assert!(fired, "accumulated drift must raise the alarm");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftMonitor {
    /// Expected score under "no drift" (e.g. the calibrated null mean).
    pub reference: f32,
    /// Alarm threshold on the accumulated excess.
    pub decision_threshold: f32,
    cusum: f32,
    windows_observed: usize,
    alarms: usize,
}

impl DriftMonitor {
    /// Creates a monitor.
    ///
    /// # Panics
    ///
    /// Panics if `decision_threshold <= 0`.
    pub fn new(reference: f32, decision_threshold: f32) -> Self {
        assert!(
            decision_threshold > 0.0,
            "decision threshold must be positive"
        );
        Self {
            reference,
            decision_threshold,
            cusum: 0.0,
            windows_observed: 0,
            alarms: 0,
        }
    }

    /// Feeds one window's detector score; returns `true` when the
    /// accumulated drift crosses the decision threshold (the accumulator
    /// resets after an alarm, so consecutive alarms indicate sustained
    /// drift pressure).
    pub fn observe(&mut self, score: f32) -> bool {
        self.windows_observed += 1;
        self.cusum = (self.cusum + score - self.reference).max(0.0);
        if self.cusum > self.decision_threshold {
            self.alarms += 1;
            self.cusum = 0.0;
            true
        } else {
            false
        }
    }

    /// Current accumulator value.
    pub fn pressure(&self) -> f32 {
        self.cusum
    }

    /// Number of windows observed so far.
    pub fn windows_observed(&self) -> usize {
        self.windows_observed
    }

    /// Number of alarms raised so far.
    pub fn alarms(&self) -> usize {
        self.alarms
    }

    /// Resets the accumulator (e.g. after the federation adapted).
    pub fn reset(&mut self) {
        self.cusum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_scores_never_alarm() {
        let mut m = DriftMonitor::new(0.02, 0.1);
        for _ in 0..100 {
            assert!(!m.observe(0.02));
        }
        assert_eq!(m.alarms(), 0);
    }

    #[test]
    fn abrupt_shift_alarms_immediately() {
        let mut m = DriftMonitor::new(0.02, 0.1);
        assert!(m.observe(0.5), "one huge score should fire at once");
    }

    #[test]
    fn gradual_drift_accumulates_to_alarm() {
        let mut m = DriftMonitor::new(0.02, 0.2);
        let mut fired_at = None;
        for w in 0..20 {
            if m.observe(0.05) {
                fired_at = Some(w);
                break;
            }
        }
        // Excess 0.03/window → alarm after ~7 windows.
        let w = fired_at.expect("drift must eventually alarm");
        assert!((5..=9).contains(&w), "alarm at window {w}");
    }

    #[test]
    fn noise_below_reference_resets_pressure() {
        let mut m = DriftMonitor::new(0.05, 0.2);
        m.observe(0.1); // pressure 0.05
        assert!(m.pressure() > 0.0);
        m.observe(0.0); // pressure max(0, 0.05 - 0.05) = 0
        assert_eq!(m.pressure(), 0.0);
    }

    #[test]
    fn alarm_resets_accumulator() {
        let mut m = DriftMonitor::new(0.0, 0.1);
        assert!(m.observe(0.2));
        assert_eq!(m.pressure(), 0.0);
        assert!(!m.observe(0.05));
    }
}
