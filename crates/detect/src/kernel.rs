//! RBF (Gaussian) kernel with the median-distance bandwidth heuristic.

use serde::{Deserialize, Serialize};
use shiftex_tensor::{stats, vector, Matrix};

/// Radial-basis-function kernel `k(x, y) = exp(-γ ‖x − y‖²)`.
///
/// The paper's MMD detector (Eq. 1) uses this kernel; `γ` is typically set
/// with [`RbfKernel::median_heuristic`], the standard choice for kernel
/// two-sample tests (Gretton et al., 2012).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RbfKernel {
    /// Bandwidth parameter γ.
    pub gamma: f32,
}

impl RbfKernel {
    /// Creates a kernel with explicit bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 0`.
    pub fn new(gamma: f32) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        Self { gamma }
    }

    /// Sets γ = 1 / median(‖x − y‖²) over the pooled samples of `p` and `q`
    /// (subsampled to at most 256 rows for O(n²) safety).
    ///
    /// The ~32k pairwise distances are computed in one shot via the blocked
    /// [`Matrix::pairwise_sq_dists`] Gram kernel rather than per-pair scalar
    /// loops, and the median via the selection-based
    /// [`shiftex_tensor::stats::quantile`].
    ///
    /// Falls back to γ = 1 when the median distance is degenerate (identical
    /// points).
    pub fn median_heuristic(p: &Matrix, q: &Matrix) -> Self {
        let mut rows: Vec<&[f32]> = Vec::new();
        for m in [p, q] {
            let step = (m.rows() / 128).max(1);
            for r in (0..m.rows()).step_by(step) {
                rows.push(m.row(r));
            }
        }
        if rows.len() < 2 {
            return Self { gamma: 1.0 };
        }
        let pooled = Matrix::from_rows(&rows);
        let d2 = pooled.pairwise_sq_dists(&pooled);
        let n = pooled.rows();
        let mut dists = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            dists.extend_from_slice(&d2.row(i)[i + 1..]);
        }
        let median = stats::quantile(&dists, 0.5);
        if median <= 1e-12 {
            Self { gamma: 1.0 }
        } else {
            Self {
                gamma: 1.0 / median,
            }
        }
    }

    /// Evaluates `k(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn eval(&self, x: &[f32], y: &[f32]) -> f32 {
        (-self.gamma * vector::sq_dist(x, y)).exp()
    }

    /// Kernel Gram matrix: entry `(i, j)` is `k(aᵢ, bⱼ)`.
    ///
    /// Squared distances come from one blocked
    /// [`Matrix::pairwise_sq_dists`] gemm (`‖x‖² + ‖y‖² − 2·X·Yᵀ`) and are
    /// exponentiated in place — O(n·m·d) arithmetic like the per-pair loop,
    /// but riding the SIMD dot-product kernel instead of scalar chains.
    ///
    /// # Panics
    ///
    /// Panics if the matrices have different column counts.
    pub fn gram(&self, a: &Matrix, b: &Matrix) -> Matrix {
        let mut g = a.pairwise_sq_dists(b);
        let gamma = self.gamma;
        g.map_inplace(|d2| (-gamma * d2).exp());
        g
    }

    /// Mean kernel value between all row pairs of `a` and `b`
    /// (`E[k(x, y)]` with x ~ a, y ~ b), including identical-index pairs.
    ///
    /// Reduces the [`RbfKernel::gram`] matrix with an `f64` accumulator.
    ///
    /// # Panics
    ///
    /// Panics if either matrix has no rows.
    pub fn mean_cross(&self, a: &Matrix, b: &Matrix) -> f32 {
        assert!(a.rows() > 0 && b.rows() > 0, "mean_cross of empty sample");
        let g = self.gram(a, b);
        let total: f64 = g.as_slice().iter().map(|&v| v as f64).sum();
        (total / (a.rows() as f64 * b.rows() as f64)) as f32
    }

    /// Mean kernel value over distinct row pairs of `a` (`i ≠ j`), the
    /// U-statistic form used by the unbiased MMD estimator.
    ///
    /// Computed as the full [`RbfKernel::gram`] sum minus its diagonal
    /// (`k(x, x) = 1` up to the exact zeros the Gram kernel guarantees for
    /// identical rows).
    ///
    /// # Panics
    ///
    /// Panics if `a` has fewer than 2 rows.
    pub fn mean_within_distinct(&self, a: &Matrix) -> f32 {
        let n = a.rows();
        assert!(n >= 2, "need at least 2 samples for distinct-pair mean");
        let g = self.gram(a, a);
        let total: f64 = g.as_slice().iter().map(|&v| v as f64).sum();
        let diag: f64 = (0..n).map(|i| g.get(i, i) as f64).sum();
        ((total - diag) / (n as f64 * (n as f64 - 1.0))) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kernel_is_one_at_zero_distance() {
        let k = RbfKernel::new(0.5);
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kernel_decays_with_distance() {
        let k = RbfKernel::new(0.5);
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn median_heuristic_scales_with_data_spread() {
        let mut rng = StdRng::seed_from_u64(0);
        let tight = Matrix::randn(32, 4, 0.0, 0.1, &mut rng);
        let wide = Matrix::randn(32, 4, 0.0, 10.0, &mut rng);
        let k_tight = RbfKernel::median_heuristic(&tight, &tight);
        let k_wide = RbfKernel::median_heuristic(&wide, &wide);
        assert!(k_tight.gamma > k_wide.gamma);
    }

    #[test]
    fn median_heuristic_on_identical_points_falls_back() {
        let m = Matrix::ones(8, 3);
        let k = RbfKernel::median_heuristic(&m, &m);
        assert_eq!(k.gamma, 1.0);
    }

    #[test]
    fn mean_cross_of_identical_sets_is_high() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::randn(16, 4, 0.0, 1.0, &mut rng);
        let k = RbfKernel::median_heuristic(&m, &m);
        assert!(k.mean_cross(&m, &m) > 0.2);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn rejects_nonpositive_gamma() {
        let _ = RbfKernel::new(0.0);
    }

    /// Per-pair reference for [`RbfKernel::mean_cross`].
    fn mean_cross_naive(k: &RbfKernel, a: &Matrix, b: &Matrix) -> f32 {
        let mut acc = 0.0f64;
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                acc += k.eval(a.row(i), b.row(j)) as f64;
            }
        }
        (acc / (a.rows() as f64 * b.rows() as f64)) as f32
    }

    /// Per-pair reference for [`RbfKernel::mean_within_distinct`].
    fn mean_within_distinct_naive(k: &RbfKernel, a: &Matrix) -> f32 {
        let n = a.rows();
        let mut acc = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    acc += k.eval(a.row(i), a.row(j)) as f64;
                }
            }
        }
        (acc / (n as f64 * (n as f64 - 1.0))) as f32
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Gram-matrix `mean_cross` matches the per-pair kernel loop within
        /// 1e-4 relative tolerance across random shapes.
        #[test]
        fn prop_mean_cross_matches_naive(n in 1usize..12, m in 1usize..12,
                                         d in 1usize..40, seed in 0u64..1000,
                                         gamma in 0.01f32..2.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::randn(n, d, 0.0, 1.0, &mut rng);
            let b = Matrix::randn(m, d, 0.5, 1.0, &mut rng);
            let k = RbfKernel::new(gamma);
            let fast = k.mean_cross(&a, &b);
            let slow = mean_cross_naive(&k, &a, &b);
            let scale = fast.abs().max(slow.abs()).max(1.0);
            prop_assert!((fast - slow).abs() <= 1e-4 * scale,
                         "gram {fast} vs naive {slow}");
        }

        /// Gram-matrix `mean_within_distinct` matches the per-pair loop.
        #[test]
        fn prop_mean_within_distinct_matches_naive(n in 2usize..14, d in 1usize..40,
                                                   seed in 0u64..1000,
                                                   gamma in 0.01f32..2.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::randn(n, d, 0.0, 1.5, &mut rng);
            let k = RbfKernel::new(gamma);
            let fast = k.mean_within_distinct(&a);
            let slow = mean_within_distinct_naive(&k, &a);
            let scale = fast.abs().max(slow.abs()).max(1.0);
            prop_assert!((fast - slow).abs() <= 1e-4 * scale,
                         "gram {fast} vs naive {slow}");
        }
    }
}
