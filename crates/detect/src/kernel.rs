//! RBF (Gaussian) kernel with the median-distance bandwidth heuristic.

use serde::{Deserialize, Serialize};
use shiftex_tensor::{stats, vector, Matrix};

/// Radial-basis-function kernel `k(x, y) = exp(-γ ‖x − y‖²)`.
///
/// The paper's MMD detector (Eq. 1) uses this kernel; `γ` is typically set
/// with [`RbfKernel::median_heuristic`], the standard choice for kernel
/// two-sample tests (Gretton et al., 2012).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RbfKernel {
    /// Bandwidth parameter γ.
    pub gamma: f32,
}

impl RbfKernel {
    /// Creates a kernel with explicit bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 0`.
    pub fn new(gamma: f32) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        Self { gamma }
    }

    /// Sets γ = 1 / median(‖x − y‖²) over the pooled samples of `p` and `q`
    /// (subsampled to at most 256 rows for O(n²) safety).
    ///
    /// Falls back to γ = 1 when the median distance is degenerate (identical
    /// points).
    pub fn median_heuristic(p: &Matrix, q: &Matrix) -> Self {
        let mut rows: Vec<&[f32]> = Vec::new();
        for m in [p, q] {
            let step = (m.rows() / 128).max(1);
            for r in (0..m.rows()).step_by(step) {
                rows.push(m.row(r));
            }
        }
        let mut dists = Vec::new();
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                dists.push(vector::sq_dist(rows[i], rows[j]));
            }
        }
        if dists.is_empty() {
            return Self { gamma: 1.0 };
        }
        let median = stats::quantile(&dists, 0.5);
        if median <= 1e-12 {
            Self { gamma: 1.0 }
        } else {
            Self {
                gamma: 1.0 / median,
            }
        }
    }

    /// Evaluates `k(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn eval(&self, x: &[f32], y: &[f32]) -> f32 {
        (-self.gamma * vector::sq_dist(x, y)).exp()
    }

    /// Mean kernel value between all row pairs of `a` and `b`
    /// (`E[k(x, y)]` with x ~ a, y ~ b), including identical-index pairs.
    ///
    /// # Panics
    ///
    /// Panics if either matrix has no rows.
    pub fn mean_cross(&self, a: &Matrix, b: &Matrix) -> f32 {
        assert!(a.rows() > 0 && b.rows() > 0, "mean_cross of empty sample");
        let mut acc = 0.0f64;
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                acc += self.eval(a.row(i), b.row(j)) as f64;
            }
        }
        (acc / (a.rows() as f64 * b.rows() as f64)) as f32
    }

    /// Mean kernel value over distinct row pairs of `a` (`i ≠ j`), the
    /// U-statistic form used by the unbiased MMD estimator.
    ///
    /// # Panics
    ///
    /// Panics if `a` has fewer than 2 rows.
    pub fn mean_within_distinct(&self, a: &Matrix) -> f32 {
        let n = a.rows();
        assert!(n >= 2, "need at least 2 samples for distinct-pair mean");
        let mut acc = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    acc += self.eval(a.row(i), a.row(j)) as f64;
                }
            }
        }
        (acc / (n as f64 * (n as f64 - 1.0))) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kernel_is_one_at_zero_distance() {
        let k = RbfKernel::new(0.5);
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kernel_decays_with_distance() {
        let k = RbfKernel::new(0.5);
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn median_heuristic_scales_with_data_spread() {
        let mut rng = StdRng::seed_from_u64(0);
        let tight = Matrix::randn(32, 4, 0.0, 0.1, &mut rng);
        let wide = Matrix::randn(32, 4, 0.0, 10.0, &mut rng);
        let k_tight = RbfKernel::median_heuristic(&tight, &tight);
        let k_wide = RbfKernel::median_heuristic(&wide, &wide);
        assert!(k_tight.gamma > k_wide.gamma);
    }

    #[test]
    fn median_heuristic_on_identical_points_falls_back() {
        let m = Matrix::ones(8, 3);
        let k = RbfKernel::median_heuristic(&m, &m);
        assert_eq!(k.gamma, 1.0);
    }

    #[test]
    fn mean_cross_of_identical_sets_is_high() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::randn(16, 4, 0.0, 1.0, &mut rng);
        let k = RbfKernel::median_heuristic(&m, &m);
        assert!(k.mean_cross(&m, &m) > 0.2);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn rejects_nonpositive_gamma() {
        let _ = RbfKernel::new(0.0);
    }
}
