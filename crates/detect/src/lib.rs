//! Distribution-shift detectors for streaming federated learning.
//!
//! Implements the two detectors of the paper's Algorithm 1 plus the
//! threshold-calibration procedure of §5:
//!
//! * **Covariate shift** — Maximum Mean Discrepancy ([`mmd2_biased`],
//!   [`mmd2_unbiased`]) with an RBF kernel ([`RbfKernel`]), comparing
//!   penultimate-layer embedding samples between consecutive windows (Eq. 1).
//! * **Label shift** — Jensen–Shannon divergence ([`jsd`]) between
//!   normalised label histograms.
//! * **Thresholds** — `δ_cov` / `δ_label` derived from bootstrapped null
//!   distributions via p-value estimation ([`ThresholdCalibrator`]).
//!
//! # Example
//!
//! ```
//! use shiftex_detect::{RbfKernel, mmd2_biased};
//! use shiftex_tensor::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let p = Matrix::randn(64, 8, 0.0, 1.0, &mut rng);
//! let q = Matrix::randn(64, 8, 3.0, 1.0, &mut rng); // shifted mean
//! let kernel = RbfKernel::median_heuristic(&p, &q);
//! let same = mmd2_biased(&p, &p, &kernel);
//! let diff = mmd2_biased(&p, &q, &kernel);
//! assert!(diff > same);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alternatives;
mod calibrate;
mod divergence;
mod kernel;
mod mmd;
mod online;
mod summary;

pub use alternatives::{energy_distance, ks_max};
pub use calibrate::{CalibratedThresholds, ThresholdCalibrator};
pub use divergence::{jsd, jsd_max, kl_divergence};
pub use kernel::RbfKernel;
pub use mmd::{mmd2_biased, mmd2_linear, mmd2_unbiased};
pub use online::DriftMonitor;
pub use summary::EmbeddingProfile;
