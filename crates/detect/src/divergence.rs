//! Discrete divergences for label-shift detection (§4.3 of the paper).

/// Kullback–Leibler divergence `D_KL(P ‖ Q)` in nats.
///
/// Terms with `p == 0` contribute zero; terms with `q == 0 < p` are clamped
/// (q floored at 1e-12), matching the usual numerical treatment.
///
/// # Panics
///
/// Panics if the distributions have different lengths.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    p.iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else {
                pi * (pi / qi.max(1e-12)).ln()
            }
        })
        .sum()
}

/// Jensen–Shannon divergence in nats:
/// `JSD(P‖Q) = ½·D_KL(P‖M) + ½·D_KL(Q‖M)` with `M = ½(P+Q)`.
///
/// Symmetric, bounded by `ln 2`, and finite even for disjoint supports —
/// the properties the paper cites for preferring it over KL for label
/// histograms.
///
/// # Panics
///
/// Panics if the distributions have different lengths.
pub fn jsd(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let m: Vec<f32> = p
        .iter()
        .zip(q.iter())
        .map(|(&a, &b)| 0.5 * (a + b))
        .collect();
    (0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)).max(0.0)
}

/// The upper bound of [`jsd`]: `ln 2`, attained by disjoint distributions.
pub fn jsd_max() -> f32 {
    std::f32::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use shiftex_tensor::vector::normalize_distribution;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-7);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-3);
    }

    #[test]
    fn jsd_of_identical_is_zero() {
        let p = [0.25; 4];
        assert!(jsd(&p, &p).abs() < 1e-7);
    }

    #[test]
    fn jsd_of_disjoint_is_ln2() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((jsd(&p, &q) - jsd_max()).abs() < 1e-5);
    }

    #[test]
    fn jsd_is_symmetric() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.1, 0.8];
        assert!((jsd(&p, &q) - jsd(&q, &p)).abs() < 1e-7);
    }

    #[test]
    fn jsd_finite_for_partial_overlap() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        let v = jsd(&p, &q);
        assert!(v.is_finite());
        assert!(v > 0.0 && v < jsd_max() + 1e-6);
    }

    proptest! {
        #[test]
        fn prop_jsd_symmetric_and_bounded(
            pa in proptest::collection::vec(0.0f32..1.0, 5),
            qa in proptest::collection::vec(0.0f32..1.0, 5),
        ) {
            let p = normalize_distribution(&pa);
            let q = normalize_distribution(&qa);
            let a = jsd(&p, &q);
            let b = jsd(&q, &p);
            prop_assert!((a - b).abs() < 1e-5);
            prop_assert!(a >= 0.0);
            prop_assert!(a <= jsd_max() + 1e-5);
        }

        #[test]
        fn prop_kl_nonnegative(
            pa in proptest::collection::vec(0.01f32..1.0, 4),
            qa in proptest::collection::vec(0.01f32..1.0, 4),
        ) {
            let p = normalize_distribution(&pa);
            let q = normalize_distribution(&qa);
            prop_assert!(kl_divergence(&p, &q) >= -1e-6);
        }
    }
}
