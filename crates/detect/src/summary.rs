//! Embedding profiles: the covariate statistic `P_c_t(X)` parties transmit.
//!
//! A party never ships raw data — it ships a bounded sample of
//! penultimate-layer embeddings (plus the mean vector). The aggregator
//! compares profiles with MMD, clusters their means, and maintains expert
//! latent-memory signatures from them.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_tensor::{rngx, Matrix};

use crate::kernel::RbfKernel;
use crate::mmd::{mmd2_biased, mmd2_unbiased};

/// A compact representation of an embedding distribution: a bounded sample
/// of embedding vectors and their mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingProfile {
    sample: Matrix,
    mean: Vec<f32>,
}

impl EmbeddingProfile {
    /// Builds a profile from raw embeddings, keeping at most `max_rows`
    /// uniformly-subsampled rows.
    ///
    /// # Panics
    ///
    /// Panics if `embeddings` has no rows or `max_rows == 0`.
    pub fn from_embeddings(embeddings: &Matrix, max_rows: usize, rng: &mut impl Rng) -> Self {
        assert!(embeddings.rows() > 0, "profile of empty embedding set");
        assert!(max_rows > 0, "max_rows must be positive");
        let sample = if embeddings.rows() <= max_rows {
            embeddings.clone()
        } else {
            let idx = rngx::sample_without_replacement(rng, embeddings.rows(), max_rows);
            embeddings.select_rows(&idx)
        };
        let mean = sample.col_means();
        Self { sample, mean }
    }

    /// Builds a profile directly from an already-bounded sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample` has no rows.
    pub fn from_sample(sample: Matrix) -> Self {
        assert!(sample.rows() > 0, "profile of empty sample");
        let mean = sample.col_means();
        Self { sample, mean }
    }

    /// The retained embedding sample.
    pub fn sample(&self) -> &Matrix {
        &self.sample
    }

    /// Mean embedding vector (the profile centroid).
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.sample.cols()
    }

    /// Number of retained rows.
    pub fn len(&self) -> usize {
        self.sample.rows()
    }

    /// `true` when the profile holds no rows (cannot occur via constructors).
    pub fn is_empty(&self) -> bool {
        self.sample.rows() == 0
    }

    /// Pools several profiles into one (the cluster aggregate `P_j(X)` of
    /// Algorithm 2 line 14), re-subsampling to `max_rows`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or dimensions differ.
    pub fn pool(profiles: &[&EmbeddingProfile], max_rows: usize, rng: &mut impl Rng) -> Self {
        assert!(!profiles.is_empty(), "pool of no profiles");
        let dim = profiles[0].dim();
        assert!(
            profiles.iter().all(|p| p.dim() == dim),
            "profile dimension mismatch"
        );
        let mats: Vec<&Matrix> = profiles.iter().map(|p| &p.sample).collect();
        let stacked = Matrix::vstack(&mats);
        Self::from_embeddings(&stacked, max_rows, rng)
    }

    /// MMD² between two profiles with a median-heuristic RBF kernel — the
    /// comparison primitive for shift detection and latent-memory matching.
    ///
    /// Uses the unbiased (U-statistic) estimator when both profiles have at
    /// least two rows, so scores are comparable across different profile
    /// sizes (the biased estimator carries an O(1/n) offset that would make
    /// small-sample null distributions incomparable to large-sample window
    /// comparisons).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mmd_to(&self, other: &EmbeddingProfile) -> f32 {
        let kernel = RbfKernel::median_heuristic(&self.sample, &other.sample);
        self.mmd_to_with(other, &kernel)
    }

    /// MMD² with an explicit kernel (for calibrated pipelines that fix γ).
    pub fn mmd_to_with(&self, other: &EmbeddingProfile, kernel: &RbfKernel) -> f32 {
        if self.sample.rows() >= 2 && other.sample.rows() >= 2 {
            mmd2_unbiased(&self.sample, &other.sample, kernel)
        } else {
            mmd2_biased(&self.sample, &other.sample, kernel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(n: usize, mean: f32, seed: u64) -> EmbeddingProfile {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::randn(n, 6, mean, 1.0, &mut rng);
        EmbeddingProfile::from_embeddings(&m, 64, &mut rng)
    }

    #[test]
    fn subsamples_to_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Matrix::randn(100, 4, 0.0, 1.0, &mut rng);
        let p = EmbeddingProfile::from_embeddings(&m, 32, &mut rng);
        assert_eq!(p.len(), 32);
        assert_eq!(p.dim(), 4);
    }

    #[test]
    fn keeps_small_samples_intact() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::randn(10, 4, 0.0, 1.0, &mut rng);
        let p = EmbeddingProfile::from_embeddings(&m, 32, &mut rng);
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn mean_tracks_distribution() {
        let p = profile(200, 5.0, 2);
        let avg: f32 = p.mean().iter().sum::<f32>() / p.dim() as f32;
        assert!((avg - 5.0).abs() < 0.5, "profile mean {avg}");
    }

    #[test]
    fn mmd_separates_shifted_profiles() {
        let a = profile(64, 0.0, 3);
        let b = profile(64, 0.0, 4);
        let c = profile(64, 4.0, 5);
        assert!(a.mmd_to(&c) > a.mmd_to(&b) * 3.0);
    }

    #[test]
    fn pool_combines_profiles() {
        let a = profile(40, 0.0, 6);
        let b = profile(40, 2.0, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let pooled = EmbeddingProfile::pool(&[&a, &b], 50, &mut rng);
        assert_eq!(pooled.len(), 50);
        let avg: f32 = pooled.mean().iter().sum::<f32>() / pooled.dim() as f32;
        assert!(
            avg > 0.4 && avg < 1.6,
            "pooled mean should be between components: {avg}"
        );
    }
}
