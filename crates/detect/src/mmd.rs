//! Maximum Mean Discrepancy estimators (Gretton et al., JMLR 2012).
//!
//! Implements Eq. 1 of the paper:
//! `MMD²(P,Q) = E[k(x,x′)] + E[k(y,y′)] − 2·E[k(x,y)]`.
//!
//! The quadratic estimators evaluate each expectation through the
//! Gram-matrix path ([`RbfKernel::mean_cross`] /
//! [`RbfKernel::mean_within_distinct`]): one blocked `X·Yᵀ` gemm plus an
//! in-place exponentiation per term, instead of O(n²·d) per-pair scalar
//! loops. Permutation calibration ([`crate::ThresholdCalibrator`]) rides the
//! same path.

use shiftex_tensor::Matrix;

use crate::kernel::RbfKernel;

/// Biased (V-statistic) MMD² estimator. Always ≥ 0; `MMD²(P, P) ≥ 0` with
/// equality only for degenerate kernels.
///
/// # Panics
///
/// Panics if either sample is empty or dimensions differ.
pub fn mmd2_biased(p: &Matrix, q: &Matrix, kernel: &RbfKernel) -> f32 {
    assert!(p.rows() > 0 && q.rows() > 0, "mmd of empty sample");
    assert_eq!(p.cols(), q.cols(), "mmd dimension mismatch");
    let kxx = kernel.mean_cross(p, p);
    let kyy = kernel.mean_cross(q, q);
    let kxy = kernel.mean_cross(p, q);
    (kxx + kyy - 2.0 * kxy).max(0.0)
}

/// Unbiased (U-statistic) MMD² estimator: excludes `i == j` pairs in the
/// within-sample terms. Can be slightly negative for equal distributions.
///
/// # Panics
///
/// Panics if either sample has fewer than 2 rows or dimensions differ.
pub fn mmd2_unbiased(p: &Matrix, q: &Matrix, kernel: &RbfKernel) -> f32 {
    assert!(
        p.rows() >= 2 && q.rows() >= 2,
        "unbiased mmd needs >= 2 samples"
    );
    assert_eq!(p.cols(), q.cols(), "mmd dimension mismatch");
    let kxx = kernel.mean_within_distinct(p);
    let kyy = kernel.mean_within_distinct(q);
    let kxy = kernel.mean_cross(p, q);
    kxx + kyy - 2.0 * kxy
}

/// Linear-time MMD² estimator (Gretton et al. §6): averages
/// `h((x_{2i}, y_{2i}), (x_{2i+1}, y_{2i+1}))` over sample pairs. O(n) —
/// the estimator the overhead benches use for d=2048 embeddings.
///
/// # Panics
///
/// Panics if the samples have different lengths, fewer than 2 rows, or
/// dimensions differ.
pub fn mmd2_linear(p: &Matrix, q: &Matrix, kernel: &RbfKernel) -> f32 {
    assert_eq!(p.rows(), q.rows(), "linear mmd needs equal sample sizes");
    assert!(p.rows() >= 2, "linear mmd needs >= 2 samples");
    assert_eq!(p.cols(), q.cols(), "mmd dimension mismatch");
    let pairs = p.rows() / 2;
    let mut acc = 0.0f64;
    for i in 0..pairs {
        let (x1, x2) = (p.row(2 * i), p.row(2 * i + 1));
        let (y1, y2) = (q.row(2 * i), q.row(2 * i + 1));
        let h =
            kernel.eval(x1, x2) + kernel.eval(y1, y2) - kernel.eval(x1, y2) - kernel.eval(x2, y1);
        acc += h as f64;
    }
    (acc / pairs as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize, d: usize, mean: f32, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::randn(n, d, mean, 1.0, &mut rng)
    }

    #[test]
    fn identical_samples_have_zero_biased_mmd() {
        let p = sample(32, 4, 0.0, 0);
        let k = RbfKernel::median_heuristic(&p, &p);
        let v = mmd2_biased(&p, &p, &k);
        assert!(v.abs() < 1e-6, "mmd(P,P) = {v}");
    }

    #[test]
    fn shifted_mean_increases_mmd() {
        let p = sample(64, 4, 0.0, 1);
        let q_same = sample(64, 4, 0.0, 2);
        let q_far = sample(64, 4, 3.0, 3);
        let k = RbfKernel::median_heuristic(&p, &p);
        let near = mmd2_biased(&p, &q_same, &k);
        let far = mmd2_biased(&p, &q_far, &k);
        assert!(far > near * 5.0, "far {far} vs near {near}");
    }

    #[test]
    fn unbiased_is_near_zero_for_same_distribution() {
        let p = sample(128, 4, 0.0, 4);
        let q = sample(128, 4, 0.0, 5);
        let k = RbfKernel::median_heuristic(&p, &q);
        let v = mmd2_unbiased(&p, &q, &k);
        assert!(v.abs() < 0.05, "unbiased mmd for same dist: {v}");
    }

    #[test]
    fn unbiased_detects_shift() {
        let p = sample(128, 4, 0.0, 6);
        let q = sample(128, 4, 2.0, 7);
        let k = RbfKernel::median_heuristic(&p, &q);
        assert!(mmd2_unbiased(&p, &q, &k) > 0.1);
    }

    #[test]
    fn linear_estimator_tracks_quadratic() {
        let p = sample(256, 4, 0.0, 8);
        let q = sample(256, 4, 1.5, 9);
        let k = RbfKernel::median_heuristic(&p, &q);
        let lin = mmd2_linear(&p, &q, &k);
        let qd = mmd2_unbiased(&p, &q, &k);
        assert!(lin > 0.0);
        assert!((lin - qd).abs() < 0.25, "linear {lin} vs quadratic {qd}");
    }

    #[test]
    fn mmd_symmetry() {
        let p = sample(32, 3, 0.0, 10);
        let q = sample(40, 3, 1.0, 11);
        let k = RbfKernel::median_heuristic(&p, &q);
        let a = mmd2_biased(&p, &q, &k);
        let b = mmd2_biased(&q, &p, &k);
        assert!((a - b).abs() < 1e-5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Biased MMD is non-negative for arbitrary small samples.
        #[test]
        fn prop_biased_mmd_nonnegative(seed_p in 0u64..1000, seed_q in 0u64..1000,
                                        mean in -3.0f32..3.0) {
            let p = sample(12, 3, 0.0, seed_p);
            let q = sample(12, 3, mean, seed_q);
            let k = RbfKernel::median_heuristic(&p, &q);
            prop_assert!(mmd2_biased(&p, &q, &k) >= 0.0);
        }

        /// MMD grows monotonically in the mean separation (statistically).
        #[test]
        fn prop_mmd_orders_small_vs_large_shift(seed in 0u64..500) {
            let p = sample(48, 3, 0.0, seed);
            let near = sample(48, 3, 0.5, seed + 1);
            let far = sample(48, 3, 4.0, seed + 2);
            let k = RbfKernel::median_heuristic(&p, &p);
            prop_assert!(mmd2_biased(&p, &far, &k) > mmd2_biased(&p, &near, &k));
        }
    }
}
