//! Alternative covariate-shift detectors.
//!
//! The paper selects MMD "because [it is] non-parametric and lightweight …
//! however, the framework itself is detector-agnostic and can readily
//! accommodate alternative choices if desired" (§3.2). This module provides
//! two drop-in alternatives with the same `(P, Q) → score` contract:
//!
//! * [`energy_distance`] — Székely–Rizzo energy distance, kernel-free;
//! * [`ks_max`] — the maximum per-dimension two-sample Kolmogorov–Smirnov
//!   statistic, sensitive to marginal changes and O(n log n) per dimension.

use shiftex_tensor::Matrix;

/// Squared energy distance between two samples:
/// `2·E‖x−y‖ − E‖x−x′‖ − E‖y−y′‖` (non-negative; 0 iff `P = Q`).
///
/// # Panics
///
/// Panics if either sample is empty or dimensions differ.
pub fn energy_distance(p: &Matrix, q: &Matrix) -> f32 {
    assert!(
        p.rows() > 0 && q.rows() > 0,
        "energy distance of empty sample"
    );
    assert_eq!(p.cols(), q.cols(), "dimension mismatch");
    let cross = mean_pair_dist(p, q);
    let within_p = mean_self_dist(p);
    let within_q = mean_self_dist(q);
    (2.0 * cross - within_p - within_q).max(0.0)
}

fn mean_pair_dist(a: &Matrix, b: &Matrix) -> f32 {
    let d2 = a.pairwise_sq_dists(b);
    let acc: f64 = d2.as_slice().iter().map(|&v| (v as f64).sqrt()).sum();
    (acc / (a.rows() as f64 * b.rows() as f64)) as f32
}

fn mean_self_dist(a: &Matrix) -> f32 {
    let n = a.rows();
    if n < 2 {
        return 0.0;
    }
    let d2 = a.pairwise_sq_dists(a);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += d2.row(i)[i + 1..]
            .iter()
            .map(|&v| (v as f64).sqrt())
            .sum::<f64>();
    }
    (acc / (n as f64 * (n as f64 - 1.0) / 2.0)) as f32
}

/// Maximum over dimensions of the two-sample Kolmogorov–Smirnov statistic
/// `sup_t |F_p(t) − F_q(t)|`, in `[0, 1]`.
///
/// # Panics
///
/// Panics if either sample is empty or dimensions differ.
pub fn ks_max(p: &Matrix, q: &Matrix) -> f32 {
    assert!(p.rows() > 0 && q.rows() > 0, "ks of empty sample");
    assert_eq!(p.cols(), q.cols(), "dimension mismatch");
    // One blocked transpose each, then every per-dimension sample is a
    // contiguous row — cheaper than gathering strided columns d times.
    let pt = p.transpose();
    let qt = q.transpose();
    let mut worst = 0.0f32;
    for d in 0..p.cols() {
        worst = worst.max(ks_1d(pt.row(d), qt.row(d)));
    }
    worst
}

/// One-dimensional two-sample KS statistic.
fn ks_1d(a: &[f32], b: &[f32]) -> f32 {
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    xb.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let (na, nb) = (xa.len() as f32, xb.len() as f32);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f32;
    while i < xa.len() && j < xb.len() {
        if xa[i] <= xb[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f32 / na - j as f32 / nb).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize, mean: f32, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::randn(n, 4, mean, 1.0, &mut rng)
    }

    #[test]
    fn energy_distance_zero_for_identical() {
        let p = sample(32, 0.0, 0);
        assert!(energy_distance(&p, &p) < 1e-4);
    }

    #[test]
    fn energy_distance_grows_with_shift() {
        let p = sample(48, 0.0, 1);
        let near = sample(48, 0.3, 2);
        let far = sample(48, 3.0, 3);
        assert!(energy_distance(&p, &far) > energy_distance(&p, &near));
    }

    #[test]
    fn ks_detects_mean_shift() {
        let p = sample(64, 0.0, 4);
        let q_same = sample(64, 0.0, 5);
        let q_far = sample(64, 2.0, 6);
        assert!(ks_max(&p, &q_far) > ks_max(&p, &q_same) * 2.0);
        assert!(ks_max(&p, &q_far) > 0.5);
    }

    #[test]
    fn ks_bounded_by_one() {
        let p = sample(16, -100.0, 7);
        let q = sample(16, 100.0, 8);
        let v = ks_max(&p, &q);
        assert!(
            v <= 1.0 + 1e-6 && v > 0.99,
            "disjoint samples should hit 1: {v}"
        );
    }

    #[test]
    fn detectors_agree_on_ordering() {
        // All three detector families must order a strong shift above a
        // weak one — the property that makes them interchangeable in
        // ShiftEx's thresholding pipeline.
        let p = sample(48, 0.0, 9);
        let weak = sample(48, 0.5, 10);
        let strong = sample(48, 4.0, 11);
        let kernel = crate::RbfKernel::median_heuristic(&p, &p);
        assert!(crate::mmd2_biased(&p, &strong, &kernel) > crate::mmd2_biased(&p, &weak, &kernel));
        assert!(energy_distance(&p, &strong) > energy_distance(&p, &weak));
        assert!(ks_max(&p, &strong) > ks_max(&p, &weak));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_energy_symmetric_nonnegative(sa in 0u64..500, sb in 0u64..500, m in -2.0f32..2.0) {
            let p = sample(12, 0.0, sa);
            let q = sample(12, m, sb);
            let d1 = energy_distance(&p, &q);
            let d2 = energy_distance(&q, &p);
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-3);
        }

        #[test]
        fn prop_ks_in_unit_interval(sa in 0u64..500, m in -5.0f32..5.0) {
            let p = sample(16, 0.0, sa);
            let q = sample(16, m, sa + 1);
            let v = ks_max(&p, &q);
            prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
        }
    }
}
