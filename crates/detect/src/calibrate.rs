//! Bootstrap threshold calibration (§5 of the paper).
//!
//! "The thresholds δ_cov and δ_label are derived during the bootstrap phase
//! from the null distributions of MMD and JSD scores. δ_cov is set via
//! p-value estimation from bootstrapped client feature representations
//! assuming no shift, while δ_label is based on JSD statistics between
//! predicted and prior label distributions under stable conditions."

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_tensor::{rngx, stats, Matrix};

use crate::divergence::jsd;
use crate::kernel::RbfKernel;
use crate::mmd::mmd2_biased;

/// Calibrated detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedThresholds {
    /// Covariate-shift threshold on MMD².
    pub delta_cov: f32,
    /// Label-shift threshold on JSD (nats).
    pub delta_label: f32,
}

/// Bootstrap calibrator: estimates null distributions under "no shift" and
/// places thresholds at the `1 − p_value` quantile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdCalibrator {
    /// Significance level (probability of a false shift alarm per test).
    pub p_value: f32,
    /// Number of bootstrap resamples.
    pub iterations: usize,
    /// Rows per split when bootstrapping MMD.
    pub split_size: usize,
}

impl Default for ThresholdCalibrator {
    fn default() -> Self {
        Self {
            p_value: 0.05,
            iterations: 100,
            split_size: 32,
        }
    }
}

impl ThresholdCalibrator {
    /// Creates a calibrator.
    ///
    /// # Panics
    ///
    /// Panics if `p_value ∉ (0, 1)` or `iterations == 0`.
    pub fn new(p_value: f32, iterations: usize, split_size: usize) -> Self {
        assert!(p_value > 0.0 && p_value < 1.0, "p_value must be in (0,1)");
        assert!(iterations > 0, "need at least one bootstrap iteration");
        assert!(split_size >= 2, "split_size must be >= 2");
        Self {
            p_value,
            iterations,
            split_size,
        }
    }

    /// Calibrates `δ_cov` from stable-period embeddings, returning the
    /// threshold **and the kernel it is valid for**.
    ///
    /// Repeatedly splits the pooled no-shift embeddings into two random
    /// halves and records the MMD² between them; since both halves come from
    /// the same distribution, these scores sample the null. The threshold is
    /// the `1 − p` quantile.
    ///
    /// The kernel bandwidth is fixed once here (median heuristic over the
    /// stable pool) and must be reused for every subsequent detection: MMD
    /// scores under different bandwidths are not comparable, and re-running
    /// the median heuristic on *shifted* pairs adaptively normalises the
    /// very shift being measured.
    ///
    /// # Panics
    ///
    /// Panics if `embeddings` has fewer than 4 rows.
    pub fn calibrate_cov(&self, embeddings: &Matrix, rng: &mut impl Rng) -> (f32, RbfKernel) {
        assert!(embeddings.rows() >= 4, "need >= 4 embeddings to calibrate");
        let n = embeddings.rows();
        let half = self.split_size.min(n / 2).max(2);
        let kernel = RbfKernel::median_heuristic(embeddings, embeddings);
        let mut nulls = Vec::with_capacity(self.iterations);
        for _ in 0..self.iterations {
            let idx = rngx::sample_without_replacement(rng, n, 2 * half);
            let a = embeddings.select_rows(&idx[..half]);
            let b = embeddings.select_rows(&idx[half..]);
            nulls.push(mmd2_biased(&a, &b, &kernel));
        }
        (stats::quantile(&nulls, 1.0 - self.p_value), kernel)
    }

    /// Calibrates `δ_label` from stable-period label histograms.
    ///
    /// For each bootstrap iteration a party histogram is chosen and a fresh
    /// multinomial sample of `count` draws is taken from it; the JSD between
    /// the histogram and its resample estimates the no-shift JSD noise floor.
    ///
    /// # Panics
    ///
    /// Panics if `histograms` is empty or `count == 0`.
    pub fn calibrate_label(
        &self,
        histograms: &[Vec<f32>],
        count: usize,
        rng: &mut impl Rng,
    ) -> f32 {
        assert!(!histograms.is_empty(), "need at least one histogram");
        assert!(count > 0, "resample count must be positive");
        let mut nulls = Vec::with_capacity(self.iterations);
        for _ in 0..self.iterations {
            let h = &histograms[rng.random_range(0..histograms.len())];
            let resampled = multinomial_histogram(h, count, rng);
            nulls.push(jsd(h, &resampled));
        }
        stats::quantile(&nulls, 1.0 - self.p_value)
    }

    /// Runs both calibrations, returning thresholds plus the fixed kernel.
    pub fn calibrate(
        &self,
        embeddings: &Matrix,
        histograms: &[Vec<f32>],
        label_count: usize,
        rng: &mut impl Rng,
    ) -> (CalibratedThresholds, RbfKernel) {
        let (delta_cov, kernel) = self.calibrate_cov(embeddings, rng);
        let delta_label = self.calibrate_label(histograms, label_count, rng);
        (
            CalibratedThresholds {
                delta_cov,
                delta_label,
            },
            kernel,
        )
    }
}

/// Draws `count` samples from the categorical distribution `probs` and
/// returns the normalised empirical histogram.
fn multinomial_histogram(probs: &[f32], count: usize, rng: &mut impl Rng) -> Vec<f32> {
    let mut counts = vec![0usize; probs.len()];
    for _ in 0..count {
        counts[rngx::categorical(rng, probs)] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f32 / count as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cov_threshold_separates_null_from_shift() {
        let mut rng = StdRng::seed_from_u64(0);
        let stable = Matrix::randn(128, 6, 0.0, 1.0, &mut rng);
        let cal = ThresholdCalibrator::default();
        let (delta, kernel) = cal.calibrate_cov(&stable, &mut rng);
        assert!(delta > 0.0);

        // A genuinely shifted sample must exceed the threshold.
        let shifted = Matrix::randn(64, 6, 3.0, 1.0, &mut rng);
        let score = mmd2_biased(&stable, &shifted, &kernel);
        assert!(score > delta, "shift score {score} <= threshold {delta}");

        // A same-distribution sample should usually stay below it.
        let same = Matrix::randn(64, 6, 0.0, 1.0, &mut rng);
        let score_same = mmd2_biased(
            &stable.select_rows(&(0..64).collect::<Vec<_>>()),
            &same,
            &kernel,
        );
        assert!(
            score_same < delta * 4.0,
            "null score {score_same} wildly exceeds threshold {delta}"
        );
    }

    #[test]
    fn label_threshold_separates_stable_from_shifted() {
        let mut rng = StdRng::seed_from_u64(1);
        let stable_hists = vec![vec![0.25; 4], vec![0.3, 0.2, 0.3, 0.2]];
        let cal = ThresholdCalibrator::default();
        let delta = cal.calibrate_label(&stable_hists, 100, &mut rng);
        assert!(delta > 0.0 && delta < crate::divergence::jsd_max());

        // A hard label shift must exceed the threshold.
        let shifted = vec![0.85, 0.05, 0.05, 0.05];
        assert!(jsd(&stable_hists[0], &shifted) > delta);
    }

    #[test]
    fn smaller_p_value_gives_larger_threshold() {
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(2);
        let stable = Matrix::randn(128, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(3));
        let (strict, _) = ThresholdCalibrator::new(0.01, 200, 32).calibrate_cov(&stable, &mut rng1);
        let (loose, _) = ThresholdCalibrator::new(0.25, 200, 32).calibrate_cov(&stable, &mut rng2);
        assert!(strict >= loose, "strict {strict} < loose {loose}");
    }

    #[test]
    #[should_panic(expected = "p_value must be in (0,1)")]
    fn rejects_bad_p_value() {
        let _ = ThresholdCalibrator::new(0.0, 10, 8);
    }
}
