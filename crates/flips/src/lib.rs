//! FLIPS — Federated Learning with Intelligent Participant Selection
//! (Bhope et al., Middleware 2023), the participant-selection subsystem
//! ShiftEx uses for bootstrap training and label-balanced expert updates
//! (§4.1, §5.2.3–5.2.4 of the ShiftEx paper).
//!
//! FLIPS clusters parties by their published label histograms and selects
//! each round's cohort *equitably across clusters*, so no label regime
//! dominates training. In ShiftEx's facility-location view this realises the
//! μ (label-imbalance) term of Eq. 2 without manual tuning.
//!
//! # Example
//!
//! ```
//! use shiftex_flips::FlipsSelector;
//! use shiftex_fl::{ParticipantSelector, PartyId, PartyInfo};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Two label regimes: class-0-heavy and class-1-heavy parties.
//! let infos: Vec<PartyInfo> = (0..8)
//!     .map(|i| PartyInfo {
//!         id: PartyId(i),
//!         num_samples: 10,
//!         label_hist: if i < 4 { vec![0.9, 0.1] } else { vec![0.1, 0.9] },
//!         last_loss: None,
//!     })
//!     .collect();
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut flips = FlipsSelector::fit(&infos, 4, &mut rng);
//! let cohort = flips.select(&infos, 4, &mut rng);
//! assert_eq!(cohort.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use shiftex_cluster::choose_k;
use shiftex_fl::{ParticipantSelector, PartyId, PartyInfo};
use shiftex_tensor::rngx;

/// Label-distribution clustering result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelClusters {
    /// Party ids per cluster.
    pub clusters: Vec<Vec<PartyId>>,
    /// Centroid label histogram per cluster.
    pub centroids: Vec<Vec<f32>>,
}

/// Clusters parties by label histogram with k chosen by Davies–Bouldin +
/// elbow (the same machinery ShiftEx uses for covariate clusters).
///
/// # Panics
///
/// Panics if `infos` is empty.
pub fn cluster_by_labels(infos: &[PartyInfo], k_max: usize, rng: &mut StdRng) -> LabelClusters {
    assert!(!infos.is_empty(), "cannot cluster an empty party set");
    let points: Vec<Vec<f32>> = infos.iter().map(|i| i.label_hist.clone()).collect();
    let selection = choose_k(&points, k_max.max(1), rng);
    let mut clusters = vec![Vec::new(); selection.result.centroids.len()];
    for (i, &c) in selection.result.assignment.iter().enumerate() {
        clusters[c].push(infos[i].id);
    }
    LabelClusters {
        clusters,
        centroids: selection.result.centroids,
    }
}

/// The FLIPS participant selector.
///
/// Holds the label-cluster structure and, per round, fills the cohort by
/// cycling over clusters round-robin so every label regime is represented
/// (equitable representation; §4.1 of the ShiftEx paper).
#[derive(Debug, Clone)]
pub struct FlipsSelector {
    clusters: LabelClusters,
    cursor: usize,
}

impl FlipsSelector {
    /// Fits FLIPS clusters to the given party metadata.
    ///
    /// # Panics
    ///
    /// Panics if `infos` is empty.
    pub fn fit(infos: &[PartyInfo], k_max: usize, rng: &mut StdRng) -> Self {
        Self {
            clusters: cluster_by_labels(infos, k_max, rng),
            cursor: 0,
        }
    }

    /// The fitted label clusters.
    pub fn clusters(&self) -> &LabelClusters {
        &self.clusters
    }

    /// Re-fits the clusters (parties' label distributions changed windows).
    pub fn refit(&mut self, infos: &[PartyInfo], k_max: usize, rng: &mut StdRng) {
        self.clusters = cluster_by_labels(infos, k_max, rng);
    }
}

impl ParticipantSelector for FlipsSelector {
    fn select(&mut self, pool: &[PartyInfo], m: usize, rng: &mut StdRng) -> Vec<PartyId> {
        let eligible: std::collections::BTreeSet<PartyId> = pool.iter().map(|p| p.id).collect();
        let m = m.min(pool.len());
        // Shuffle each cluster's eligible members, then deal round-robin.
        let mut decks: Vec<Vec<PartyId>> = self
            .clusters
            .clusters
            .iter()
            .map(|c| {
                let mut deck: Vec<PartyId> = c
                    .iter()
                    .copied()
                    .filter(|id| eligible.contains(id))
                    .collect();
                rngx::shuffle(rng, &mut deck);
                deck
            })
            .filter(|d| !d.is_empty())
            .collect();
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m && !decks.is_empty() {
            let idx = self.cursor % decks.len();
            if let Some(id) = decks[idx].pop() {
                chosen.push(id);
            }
            if decks[idx].is_empty() {
                decks.remove(idx);
            } else {
                self.cursor = self.cursor.wrapping_add(1);
            }
        }
        // Top up from the raw pool if clusters didn't cover everyone
        // (parties unseen at fit time).
        if chosen.len() < m {
            let have: std::collections::BTreeSet<PartyId> = chosen.iter().copied().collect();
            for p in pool {
                if chosen.len() >= m {
                    break;
                }
                if !have.contains(&p.id) {
                    chosen.push(p.id);
                }
            }
        }
        chosen
    }

    fn name(&self) -> &str {
        "flips"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn skewed_pool(n_per_regime: usize) -> Vec<PartyInfo> {
        let mut infos = Vec::new();
        for i in 0..n_per_regime {
            infos.push(PartyInfo {
                id: PartyId(i),
                num_samples: 10,
                label_hist: vec![0.85, 0.05, 0.05, 0.05],
                last_loss: None,
            });
        }
        for i in 0..n_per_regime {
            infos.push(PartyInfo {
                id: PartyId(n_per_regime + i),
                num_samples: 10,
                label_hist: vec![0.05, 0.05, 0.05, 0.85],
                last_loss: None,
            });
        }
        infos
    }

    #[test]
    fn clustering_separates_label_regimes() {
        let infos = skewed_pool(6);
        let mut rng = StdRng::seed_from_u64(0);
        let lc = cluster_by_labels(&infos, 4, &mut rng);
        assert_eq!(lc.clusters.len(), 2, "expected two label regimes");
        for cluster in &lc.clusters {
            let low: Vec<bool> = cluster.iter().map(|id| id.0 < 6).collect();
            assert!(
                low.iter().all(|&b| b == low[0]),
                "mixed cluster: {cluster:?}"
            );
        }
    }

    #[test]
    fn selection_is_balanced_across_clusters() {
        let infos = skewed_pool(10);
        let mut rng = StdRng::seed_from_u64(1);
        let mut flips = FlipsSelector::fit(&infos, 4, &mut rng);
        let cohort = flips.select(&infos, 10, &mut rng);
        let regime_a = cohort.iter().filter(|id| id.0 < 10).count();
        let regime_b = cohort.len() - regime_a;
        assert!(
            (regime_a as i64 - regime_b as i64).abs() <= 2,
            "imbalanced cohort: {regime_a} vs {regime_b}"
        );
    }

    #[test]
    fn selection_respects_eligible_subset() {
        let infos = skewed_pool(5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut flips = FlipsSelector::fit(&infos, 4, &mut rng);
        // Only regime-A parties eligible this round.
        let eligible: Vec<PartyInfo> = infos[..5].to_vec();
        let cohort = flips.select(&eligible, 3, &mut rng);
        assert_eq!(cohort.len(), 3);
        assert!(cohort.iter().all(|id| id.0 < 5));
    }

    #[test]
    fn handles_unseen_parties_via_topup() {
        let infos = skewed_pool(4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut flips = FlipsSelector::fit(&infos[..4], 3, &mut rng);
        // Pool contains parties FLIPS never clustered.
        let cohort = flips.select(&infos, 8, &mut rng);
        assert_eq!(cohort.len(), 8);
    }

    #[test]
    fn uniform_histograms_form_single_cluster() {
        let infos: Vec<PartyInfo> = (0..8)
            .map(|i| PartyInfo {
                id: PartyId(i),
                num_samples: 10,
                label_hist: vec![0.25; 4],
                last_loss: None,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        let lc = cluster_by_labels(&infos, 4, &mut rng);
        assert_eq!(lc.clusters.len(), 1);
    }

    #[test]
    fn selection_without_duplicates() {
        let infos = skewed_pool(8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut flips = FlipsSelector::fit(&infos, 4, &mut rng);
        let cohort = flips.select(&infos, 12, &mut rng);
        let mut ids: Vec<usize> = cohort.iter().map(|p| p.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }
}
