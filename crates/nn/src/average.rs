//! Parameter-space operations used by federated aggregation and expert
//! consolidation: weighted averaging (FedAvg), cosine similarity and L2
//! distance between flattened parameter vectors.

use shiftex_tensor::vector;

/// Federated averaging: sample-count-weighted mean of parameter vectors.
///
/// This is the aggregation rule of FedAvg (McMahan et al.) and the primitive
/// every strategy in this workspace builds on.
///
/// # Panics
///
/// Panics if inputs are empty, lengths differ, or all weights are zero.
pub fn fedavg(params: &[&[f32]], sample_counts: &[usize]) -> Vec<f32> {
    let weights: Vec<f32> = sample_counts.iter().map(|&c| c as f32).collect();
    vector::weighted_mean(params, &weights)
}

/// Weighted two-model merge used by expert consolidation
/// (`CONSOLIDATEEXPERTS` in Algorithm 2): `wa·a + wb·b`, weights normalised.
///
/// # Panics
///
/// Panics if lengths differ or both weights are zero.
pub fn weighted_merge(a: &[f32], b: &[f32], wa: f32, wb: f32) -> Vec<f32> {
    vector::weighted_mean(&[a, b], &[wa, wb])
}

/// Cosine similarity between two flattened parameter vectors — the
/// `MODELSIMILARITY` test of Algorithm 2 (`cos(θi, θj) > τ ⇒ merge`).
pub fn cosine_params(a: &[f32], b: &[f32]) -> f32 {
    vector::cosine_similarity(a, b)
}

/// Euclidean distance between two flattened parameter vectors.
pub fn param_l2_distance(a: &[f32], b: &[f32]) -> f32 {
    vector::l2_dist(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fedavg_identity_on_single_model() {
        let p = vec![1.0, 2.0, 3.0];
        assert_eq!(fedavg(&[&p], &[10]), p);
    }

    #[test]
    fn fedavg_weights_by_samples() {
        let a = vec![0.0];
        let b = vec![4.0];
        let avg = fedavg(&[&a, &b], &[1, 3]);
        assert!((avg[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fedavg_of_identical_models_is_identity() {
        let p = vec![0.5, -0.5, 2.0];
        let avg = fedavg(&[&p, &p, &p], &[5, 1, 7]);
        for (x, y) in avg.iter().zip(p.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn merge_is_convex_combination() {
        let m = weighted_merge(&[0.0], &[10.0], 1.0, 1.0);
        assert!((m[0] - 5.0).abs() < 1e-6);
        let m = weighted_merge(&[0.0], &[10.0], 3.0, 1.0);
        assert!((m[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_same_params_is_one() {
        let p = vec![1.0, -2.0, 0.5];
        assert!((cosine_params(&p, &p) - 1.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_fedavg_stays_in_hull(
            a in proptest::collection::vec(-5.0f32..5.0, 4),
            b in proptest::collection::vec(-5.0f32..5.0, 4),
            na in 1usize..100,
            nb in 1usize..100,
        ) {
            let avg = fedavg(&[&a, &b], &[na, nb]);
            for i in 0..4 {
                let lo = a[i].min(b[i]) - 1e-4;
                let hi = a[i].max(b[i]) + 1e-4;
                prop_assert!(avg[i] >= lo && avg[i] <= hi);
            }
        }
    }
}
