//! Individual network layers with explicit forward/backward passes.
//!
//! Layers operate on mini-batches stored as `(batch, features)` matrices;
//! spatial layers (conv / pool) interpret the feature axis as a flattened
//! `(channels, height, width)` volume whose dimensions are fixed at
//! construction time.

use serde::{Deserialize, Serialize};
use shiftex_tensor::{vector, Matrix};

/// A single differentiable layer.
///
/// The enum (rather than a trait object) keeps models `Clone + Serialize`,
/// which federated averaging and the expert registry rely on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected layer: `y = x·W + b` with `W: (in, out)`.
    Dense {
        /// Weight matrix of shape `(fan_in, fan_out)`.
        w: Matrix,
        /// Bias vector of length `fan_out`.
        b: Vec<f32>,
    },
    /// Rectified linear activation, elementwise `max(0, x)`.
    Relu,
    /// Hyperbolic tangent activation.
    Tanh,
    /// 2-D convolution with odd kernel, stride 1 and "same" zero padding.
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel side length (odd).
        k: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Filter bank of shape `(out_c, in_c * k * k)`.
        weight: Matrix,
        /// Per-output-channel bias.
        bias: Vec<f32>,
    },
    /// 2×2 max pooling with stride 2 over a `(c, h, w)` volume.
    MaxPool2d {
        /// Channels.
        c: usize,
        /// Input height (must be even).
        h: usize,
        /// Input width (must be even).
        w: usize,
    },
    /// Per-sample standardisation: each row is shifted/scaled to zero mean,
    /// unit variance. Placed at the input of every architecture — the
    /// equivalent of the per-image normalisation in standard vision
    /// pipelines, and what keeps local training stable when covariate
    /// shifts inflate input magnitudes.
    InstanceNorm,
}

/// Forward-pass state a layer needs to run its backward pass.
#[derive(Debug, Clone)]
pub enum LayerCache {
    /// Dense: the layer input.
    Dense(Matrix),
    /// ReLU: the layer output (used as the activity mask).
    Relu(Matrix),
    /// Tanh: the layer output.
    Tanh(Matrix),
    /// Conv: the layer input.
    Conv(Matrix),
    /// MaxPool: per-output flat index of the winning input element.
    Pool(Vec<usize>, usize),
    /// InstanceNorm: normalised output plus per-row std.
    Norm(Matrix, Vec<f32>),
}

/// Gradients with respect to a layer's parameters, in flatten order.
#[derive(Debug, Clone, Default)]
pub struct ParamGrad(pub Vec<f32>);

impl Layer {
    /// Number of trainable parameters in this layer.
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Dense { w, b } => w.len() + b.len(),
            Layer::Conv2d { weight, bias, .. } => weight.len() + bias.len(),
            _ => 0,
        }
    }

    /// Output feature width given this layer's configuration.
    pub fn out_dim(&self, in_dim: usize) -> usize {
        match self {
            Layer::Dense { w, .. } => w.cols(),
            Layer::Relu | Layer::Tanh => in_dim,
            Layer::Conv2d { out_c, h, w, .. } => out_c * h * w,
            Layer::MaxPool2d { c, h, w } => c * (h / 2) * (w / 2),
            Layer::InstanceNorm => in_dim,
        }
    }

    /// Appends this layer's parameters to `out` (row-major weights, then bias).
    pub fn extend_params(&self, out: &mut Vec<f32>) {
        match self {
            Layer::Dense { w, b } => {
                out.extend_from_slice(w.as_slice());
                out.extend_from_slice(b);
            }
            Layer::Conv2d { weight, bias, .. } => {
                out.extend_from_slice(weight.as_slice());
                out.extend_from_slice(bias);
            }
            _ => {}
        }
    }

    /// Loads this layer's parameters from `src`, returning how many were read.
    ///
    /// # Panics
    ///
    /// Panics if `src` is shorter than `num_params()`.
    pub fn load_params(&mut self, src: &[f32]) -> usize {
        match self {
            Layer::Dense { w, b } => {
                let wn = w.len();
                w.as_mut_slice().copy_from_slice(&src[..wn]);
                let bn = b.len();
                b.copy_from_slice(&src[wn..wn + bn]);
                wn + bn
            }
            Layer::Conv2d { weight, bias, .. } => {
                let wn = weight.len();
                weight.as_mut_slice().copy_from_slice(&src[..wn]);
                let bn = bias.len();
                bias.copy_from_slice(&src[wn..wn + bn]);
                wn + bn
            }
            _ => 0,
        }
    }

    /// Runs the forward pass, returning the output and the backward cache.
    pub fn forward(&self, input: &Matrix) -> (Matrix, LayerCache) {
        match self {
            Layer::Dense { w, b } => {
                let mut out = input.matmul(w);
                out.add_row_broadcast(b);
                (out, LayerCache::Dense(input.clone()))
            }
            Layer::Relu => {
                let out = input.map(|v| if v > 0.0 { v } else { 0.0 });
                (out.clone(), LayerCache::Relu(out))
            }
            Layer::Tanh => {
                let out = input.map(f32::tanh);
                (out.clone(), LayerCache::Tanh(out))
            }
            Layer::Conv2d {
                in_c,
                out_c,
                k,
                h,
                w,
                weight,
                bias,
            } => {
                let (out, _) = conv_forward(input, *in_c, *out_c, *k, *h, *w, weight, bias);
                (out, LayerCache::Conv(input.clone()))
            }
            Layer::MaxPool2d { c, h, w } => {
                let (out, idx) = pool_forward(input, *c, *h, *w);
                let in_dim = c * h * w;
                (out, LayerCache::Pool(idx, in_dim))
            }
            Layer::InstanceNorm => {
                let (out, stds) = norm_forward(input);
                (out.clone(), LayerCache::Norm(out, stds))
            }
        }
    }

    /// Inference-only forward pass (no cache allocation for stateless layers).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        match self {
            Layer::Dense { w, b } => {
                let mut out = input.matmul(w);
                out.add_row_broadcast(b);
                out
            }
            Layer::Relu => input.map(|v| if v > 0.0 { v } else { 0.0 }),
            Layer::Tanh => input.map(f32::tanh),
            Layer::Conv2d {
                in_c,
                out_c,
                k,
                h,
                w,
                weight,
                bias,
            } => conv_forward(input, *in_c, *out_c, *k, *h, *w, weight, bias).0,
            Layer::MaxPool2d { c, h, w } => pool_forward(input, *c, *h, *w).0,
            Layer::InstanceNorm => norm_forward(input).0,
        }
    }

    /// Runs the backward pass.
    ///
    /// Returns the gradient w.r.t. the layer input and, for parametric
    /// layers, the parameter gradients in flatten order.
    pub fn backward(&self, cache: &LayerCache, grad_out: &Matrix) -> (Matrix, ParamGrad) {
        match (self, cache) {
            (Layer::Dense { w, .. }, LayerCache::Dense(input)) => {
                let grad_w = input.t_matmul(grad_out);
                let grad_b = grad_out.col_sums();
                let grad_in = grad_out.matmul_t(w);
                let mut g = grad_w.into_vec();
                g.extend_from_slice(&grad_b);
                (grad_in, ParamGrad(g))
            }
            (Layer::Relu, LayerCache::Relu(out)) => {
                let grad_in = grad_out.zip_with(out, |g, o| if o > 0.0 { g } else { 0.0 });
                (grad_in, ParamGrad::default())
            }
            (Layer::Tanh, LayerCache::Tanh(out)) => {
                let grad_in = grad_out.zip_with(out, |g, o| g * (1.0 - o * o));
                (grad_in, ParamGrad::default())
            }
            (
                Layer::Conv2d {
                    in_c,
                    out_c,
                    k,
                    h,
                    w,
                    weight,
                    ..
                },
                LayerCache::Conv(input),
            ) => conv_backward(input, grad_out, *in_c, *out_c, *k, *h, *w, weight),
            (Layer::MaxPool2d { c, h, w }, LayerCache::Pool(idx, in_dim)) => {
                let out_dim = c * (h / 2) * (w / 2);
                let mut grad_in = Matrix::zeros(grad_out.rows(), *in_dim);
                for r in 0..grad_out.rows() {
                    let go = grad_out.row(r);
                    let gi = grad_in.row_mut(r);
                    let winners = &idx[r * out_dim..(r + 1) * out_dim];
                    for (&src, &g) in winners.iter().zip(go.iter()) {
                        gi[src] += g;
                    }
                }
                (grad_in, ParamGrad::default())
            }
            (Layer::InstanceNorm, LayerCache::Norm(out, stds)) => {
                // y = (x - mu) / sigma; dL/dx = (g - mean(g) - y*mean(g*y)) / sigma.
                let n = out.cols() as f32;
                let mut grad_in = Matrix::zeros(grad_out.rows(), grad_out.cols());
                for (r, &sigma) in stds.iter().enumerate() {
                    let g = grad_out.row(r);
                    let y = out.row(r);
                    let mean_g = vector::mean(g);
                    let mean_gy = vector::dot(g, y) / n;
                    let inv_sigma = 1.0 / sigma;
                    let row = grad_in.row_mut(r);
                    for ((o, &gv), &yv) in row.iter_mut().zip(g.iter()).zip(y.iter()) {
                        *o = (gv - mean_g - yv * mean_gy) * inv_sigma;
                    }
                }
                (grad_in, ParamGrad::default())
            }
            _ => unreachable!("layer/cache variant mismatch"),
        }
    }
}

/// Per-row standardisation; returns the output and per-row std (eps-floored).
fn norm_forward(input: &Matrix) -> (Matrix, Vec<f32>) {
    let n = input.cols().max(1) as f32;
    let mut out = input.clone();
    let mut stds = Vec::with_capacity(input.rows());
    for r in 0..input.rows() {
        let row = out.row_mut(r);
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let std = (var + 1e-5).sqrt();
        for v in row.iter_mut() {
            *v = (*v - mean) / std;
        }
        stds.push(std);
    }
    (out, stds)
}

/// Forward convolution; returns `(output, ())`. "Same" zero padding, stride 1.
#[allow(clippy::too_many_arguments)]
fn conv_forward(
    input: &Matrix,
    in_c: usize,
    out_c: usize,
    k: usize,
    h: usize,
    w: usize,
    weight: &Matrix,
    bias: &[f32],
) -> (Matrix, ()) {
    let pad = k / 2;
    let batch = input.rows();
    let mut out = Matrix::zeros(batch, out_c * h * w);
    for b in 0..batch {
        let x = input.row(b);
        let out_row = out.row_mut(b);
        for oc in 0..out_c {
            let wrow = weight.row(oc);
            for oy in 0..h {
                for ox in 0..w {
                    let mut acc = bias[oc];
                    for ic in 0..in_c {
                        let chan = &x[ic * h * w..(ic + 1) * h * w];
                        let wbase = ic * k * k;
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let iy = iy as usize;
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += chan[iy * w + ix as usize] * wrow[wbase + ky * k + kx];
                            }
                        }
                    }
                    out_row[oc * h * w + oy * w + ox] = acc;
                }
            }
        }
    }
    (out, ())
}

/// Backward convolution: gradients w.r.t. input, filters and bias.
#[allow(clippy::too_many_arguments)]
fn conv_backward(
    input: &Matrix,
    grad_out: &Matrix,
    in_c: usize,
    out_c: usize,
    k: usize,
    h: usize,
    w: usize,
    weight: &Matrix,
) -> (Matrix, ParamGrad) {
    let pad = k / 2;
    let batch = input.rows();
    let mut grad_in = Matrix::zeros(batch, in_c * h * w);
    let mut grad_w = vec![0.0f32; out_c * in_c * k * k];
    let mut grad_b = vec![0.0f32; out_c];
    for b in 0..batch {
        let x = input.row(b);
        let go = grad_out.row(b);
        let gi = grad_in.row_mut(b);
        for oc in 0..out_c {
            let wrow = weight.row(oc);
            let gw = &mut grad_w[oc * in_c * k * k..(oc + 1) * in_c * k * k];
            for oy in 0..h {
                for ox in 0..w {
                    let g = go[oc * h * w + oy * w + ox];
                    if g == 0.0 {
                        continue;
                    }
                    grad_b[oc] += g;
                    for ic in 0..in_c {
                        let cbase = ic * h * w;
                        let wbase = ic * k * k;
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let iy = iy as usize;
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let ix = ix as usize;
                                gw[wbase + ky * k + kx] += g * x[cbase + iy * w + ix];
                                gi[cbase + iy * w + ix] += g * wrow[wbase + ky * k + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    grad_w.extend_from_slice(&grad_b);
    (grad_in, ParamGrad(grad_w))
}

/// Forward 2×2/stride-2 max pooling; returns output and winner indices.
fn pool_forward(input: &Matrix, c: usize, h: usize, w: usize) -> (Matrix, Vec<usize>) {
    assert!(
        h.is_multiple_of(2) && w.is_multiple_of(2),
        "pooling requires even spatial dims, got {h}x{w}"
    );
    let (oh, ow) = (h / 2, w / 2);
    let batch = input.rows();
    let out_dim = c * oh * ow;
    let mut out = Matrix::zeros(batch, out_dim);
    let mut winners = vec![0usize; batch * out_dim];
    for b in 0..batch {
        let x = input.row(b);
        let out_row = out.row_mut(b);
        for ch in 0..c {
            let cbase = ch * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = cbase + (oy * 2 + dy) * w + ox * 2 + dx;
                            if x[idx] > best {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ch * oh * ow + oy * ow + ox;
                    out_row[o] = best;
                    winners[b * out_dim + o] = best_idx;
                }
            }
        }
    }
    (out, winners)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense(fan_in: usize, fan_out: usize, seed: u64) -> Layer {
        let mut rng = StdRng::seed_from_u64(seed);
        Layer::Dense {
            w: Matrix::xavier(fan_in, fan_out, &mut rng),
            b: vec![0.0; fan_out],
        }
    }

    #[test]
    fn dense_forward_shapes() {
        let layer = dense(4, 3, 0);
        let x = Matrix::ones(5, 4);
        let (y, _) = layer.forward(&x);
        assert_eq!(y.shape(), (5, 3));
    }

    #[test]
    fn relu_masks_negatives() {
        let layer = Layer::Relu;
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]);
        let (y, cache) = layer.forward(&x);
        assert_eq!(y.row(0), &[0.0, 2.0]);
        let g = Matrix::from_rows(&[&[1.0, 1.0]]);
        let (gi, _) = layer.backward(&cache, &g);
        assert_eq!(gi.row(0), &[0.0, 1.0]);
    }

    #[test]
    fn pool_selects_max_and_routes_grad() {
        let layer = Layer::MaxPool2d { c: 1, h: 2, w: 2 };
        let x = Matrix::from_rows(&[&[1.0, 5.0, 2.0, 3.0]]);
        let (y, cache) = layer.forward(&x);
        assert_eq!(y.row(0), &[5.0]);
        let (gi, _) = layer.backward(&cache, &Matrix::from_rows(&[&[7.0]]));
        assert_eq!(gi.row(0), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1 and bias 0 must be the identity map.
        let layer = Layer::Conv2d {
            in_c: 1,
            out_c: 1,
            k: 1,
            h: 3,
            w: 3,
            weight: Matrix::ones(1, 1),
            bias: vec![0.0],
        };
        let mut rng = StdRng::seed_from_u64(2);
        let x = Matrix::randn(2, 9, 0.0, 1.0, &mut rng);
        let (y, _) = layer.forward(&x);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    /// Central-difference gradient check on a small dense layer.
    #[test]
    fn dense_gradient_check() {
        let mut layer = dense(3, 2, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let x = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
        grad_check(&mut layer, &x, 1e-2);
    }

    /// Central-difference gradient check on a small conv layer.
    #[test]
    fn conv_gradient_check() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = Layer::Conv2d {
            in_c: 1,
            out_c: 2,
            k: 3,
            h: 4,
            w: 4,
            weight: Matrix::randn(2, 9, 0.0, 0.5, &mut rng),
            bias: vec![0.1, -0.1],
        };
        let x = Matrix::randn(2, 16, 0.0, 1.0, &mut rng);
        grad_check(&mut layer, &x, 5e-2);
    }

    /// Verifies analytic parameter gradients of `layer` against central
    /// differences of the scalar loss `sum(forward(x))`.
    fn grad_check(layer: &mut Layer, x: &Matrix, tol: f32) {
        let (out, cache) = layer.forward(x);
        let grad_out = Matrix::ones(out.rows(), out.cols());
        let (_, ParamGrad(analytic)) = layer.backward(&cache, &grad_out);

        let mut params = Vec::new();
        layer.extend_params(&mut params);
        let eps = 1e-2f32;
        for i in 0..params.len() {
            let mut plus = params.clone();
            plus[i] += eps;
            layer.load_params(&plus);
            let f_plus = layer.infer(x).sum();
            let mut minus = params.clone();
            minus[i] -= eps;
            layer.load_params(&minus);
            let f_minus = layer.infer(x).sum();
            layer.load_params(&params);
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < tol * numeric.abs().max(1.0),
                "param {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn instance_norm_standardises_rows() {
        let layer = Layer::InstanceNorm;
        let x = Matrix::from_rows(&[&[10.0, 12.0, 14.0, 16.0]]);
        let (y, _) = layer.forward(&x);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .row(0)
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn instance_norm_is_shift_and_scale_invariant() {
        let layer = Layer::InstanceNorm;
        let x = Matrix::from_rows(&[&[1.0, -2.0, 0.5, 3.0]]);
        let shifted = x.map(|v| v * 7.0 + 100.0);
        let (a, _) = layer.forward(&x);
        let (b, _) = layer.forward(&shifted);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-3, "{u} vs {v}");
        }
    }

    /// Central-difference check of the InstanceNorm input gradient.
    #[test]
    fn instance_norm_gradient_check() {
        let layer = Layer::InstanceNorm;
        let mut rng = StdRng::seed_from_u64(11);
        let x = Matrix::randn(2, 5, 1.0, 2.0, &mut rng);
        let (out, cache) = layer.forward(&x);
        // Scalar loss: sum of out^2 / 2, so dL/dout = out.
        let (grad_in, _) = layer.backward(&cache, &out);
        let eps = 1e-2f32;
        let loss = |m: &Matrix| -> f32 {
            let (o, _) = layer.forward(m);
            o.as_slice().iter().map(|v| v * v / 2.0).sum()
        };
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.get(r, c) + eps);
                let mut minus = x.clone();
                minus.set(r, c, x.get(r, c) - eps);
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                let analytic = grad_in.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 2e-2,
                    "({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn param_roundtrip() {
        let mut layer = dense(4, 4, 3);
        let mut before = Vec::new();
        layer.extend_params(&mut before);
        let consumed = layer.load_params(&before);
        assert_eq!(consumed, before.len());
        let mut after = Vec::new();
        layer.extend_params(&mut after);
        assert_eq!(before, after);
    }
}
