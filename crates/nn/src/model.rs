//! Sequential model: a layer stack with training, evaluation, embedding
//! extraction and flattened-parameter access.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_tensor::Matrix;

use crate::arch::{ArchSpec, InputShape, LayerSpec};
use crate::layer::{Layer, LayerCache};
use crate::loss::softmax_cross_entropy;
use crate::optim::Sgd;
use crate::trainer::TrainConfig;

/// Evaluation result: mean loss and top-1 accuracy over a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Number of evaluated samples.
    pub n: usize,
}

/// Report of one local `train` call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// Mean loss of the first epoch.
    pub initial_loss: f32,
    /// Mean loss of the last epoch.
    pub final_loss: f32,
    /// Number of optimizer steps taken.
    pub steps: usize,
}

/// A feed-forward layer stack ending in a `Dense(classes)` classifier.
///
/// The activation entering that final classifier is the **embedding** used
/// throughout ShiftEx for covariate-shift detection (`P_c_t(X)` in the
/// paper's Algorithm 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    spec: ArchSpec,
    layers: Vec<Layer>,
}

impl Sequential {
    /// Builds a freshly-initialised model from an architecture spec.
    ///
    /// Weights are Xavier-uniform, biases zero; all randomness comes from
    /// `rng` so builds are reproducible.
    pub fn build(spec: &ArchSpec, rng: &mut impl Rng) -> Self {
        let mut layers = Vec::with_capacity(spec.hidden.len() + 2);
        // Every architecture standardises its input per sample, matching
        // the per-image normalisation of standard vision pipelines and
        // keeping training stable under covariate shift.
        layers.push(Layer::InstanceNorm);
        let mut shape = spec.input;
        for ls in &spec.hidden {
            match *ls {
                LayerSpec::Dense(out) => {
                    let fan_in = shape.dim();
                    layers.push(Layer::Dense {
                        w: Matrix::xavier(fan_in, out, rng),
                        b: vec![0.0; out],
                    });
                    shape = InputShape::flat(out);
                }
                LayerSpec::Relu => layers.push(Layer::Relu),
                LayerSpec::Tanh => layers.push(Layer::Tanh),
                LayerSpec::Conv { out_c, k } => {
                    let fan_in = shape.c * k * k;
                    layers.push(Layer::Conv2d {
                        in_c: shape.c,
                        out_c,
                        k,
                        h: shape.h,
                        w: shape.w,
                        weight: Matrix::xavier(out_c.max(1), fan_in, rng)
                            .map(|v| v * (2.0 / fan_in as f32).sqrt()),
                        bias: vec![0.0; out_c],
                    });
                    // xavier() gives (rows=out_c, cols=fan_in) already:
                    shape = InputShape {
                        c: out_c,
                        h: shape.h,
                        w: shape.w,
                    };
                }
                LayerSpec::MaxPool => {
                    layers.push(Layer::MaxPool2d {
                        c: shape.c,
                        h: shape.h,
                        w: shape.w,
                    });
                    shape = InputShape {
                        c: shape.c,
                        h: shape.h / 2,
                        w: shape.w / 2,
                    };
                }
            }
        }
        // Final classifier.
        let fan_in = shape.dim();
        layers.push(Layer::Dense {
            w: Matrix::xavier(fan_in, spec.classes, rng),
            b: vec![0.0; spec.classes],
        });
        Self {
            spec: spec.clone(),
            layers,
        }
    }

    /// The architecture this model was built from.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Width of the embedding (penultimate-layer) activation.
    pub fn embed_dim(&self) -> usize {
        self.spec.embed_dim()
    }

    /// Flattens all parameters into one vector (layer order, weights then
    /// biases within each layer). This is the unit of federated exchange.
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            layer.extend_params(&mut out);
        }
        out
    }

    /// Loads parameters previously produced by [`Sequential::params_flat`].
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` does not match [`Sequential::num_params`].
    pub fn set_params_flat(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.num_params(),
            "parameter vector length mismatch: {} vs {}",
            params.len(),
            self.num_params()
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.load_params(&params[offset..]);
        }
    }

    /// Full forward pass, returning the class logits.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.infer(&h);
        }
        h
    }

    /// Forward pass that stops at the penultimate layer, returning the
    /// embedding matrix `(batch, embed_dim)` — the latent representation
    /// `φ(x)` of the paper's Algorithm 1.
    ///
    /// The input [`Layer::InstanceNorm`] is **skipped** on this path: that
    /// normalisation exists to stabilise training, but it cancels precisely
    /// the input-distribution changes (mean/contrast moves) that MMD-based
    /// covariate-shift detection monitors. Detection therefore sees the raw
    /// input distribution through the learned feature map, while
    /// classification uses the normalised path.
    pub fn embed(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers[..self.layers.len() - 1] {
            if matches!(layer, Layer::InstanceNorm) {
                continue;
            }
            h = layer.infer(&h);
        }
        h
    }

    /// Evaluates mean loss and top-1 accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    pub fn evaluate(&self, x: &Matrix, labels: &[usize]) -> EvalReport {
        if x.rows() == 0 {
            return EvalReport {
                loss: 0.0,
                accuracy: 0.0,
                n: 0,
            };
        }
        let logits = self.forward(x);
        let (loss, _) = softmax_cross_entropy(&logits, labels);
        let preds = logits.argmax_rows();
        let correct = preds
            .iter()
            .zip(labels.iter())
            .filter(|(p, l)| p == l)
            .count();
        EvalReport {
            loss,
            accuracy: correct as f32 / labels.len() as f32,
            n: labels.len(),
        }
    }

    /// One SGD step on a single mini-batch; returns the batch loss.
    ///
    /// When `prox` is provided, a FedProx proximal term
    /// `(mu/2)·‖w − w_global‖²` is added to the objective, i.e.
    /// `mu·(w − w_global)` to the gradient.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut Sgd,
        prox: Option<(&[f32], f32)>,
    ) -> f32 {
        // Forward with caches.
        let mut activations = x.clone();
        let mut caches: Vec<LayerCache> = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, cache) = layer.forward(&activations);
            activations = out;
            caches.push(cache);
        }
        let (loss, mut grad) = softmax_cross_entropy(&activations, labels);

        // Backward, collecting parameter gradients in flatten order.
        let mut grads_rev: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len());
        for (layer, cache) in self.layers.iter().zip(caches.iter()).rev() {
            let (grad_in, pgrad) = layer.backward(cache, &grad);
            grads_rev.push(pgrad.0);
            grad = grad_in;
        }
        let mut flat_grad = Vec::with_capacity(self.num_params());
        for g in grads_rev.into_iter().rev() {
            flat_grad.extend_from_slice(&g);
        }

        let mut params = self.params_flat();
        if let Some((global, mu)) = prox {
            assert_eq!(global.len(), params.len(), "prox anchor length mismatch");
            for ((g, &w), &wg) in flat_grad.iter_mut().zip(params.iter()).zip(global.iter()) {
                *g += mu * (w - wg);
            }
        }
        opt.step(&mut params, &flat_grad);
        self.set_params_flat(&params);
        loss
    }

    /// Trains for `cfg.epochs` epochs of shuffled mini-batches.
    ///
    /// Returns first/last epoch mean losses and the number of steps taken.
    pub fn train(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        cfg: &TrainConfig,
        rng: &mut impl Rng,
    ) -> FitReport {
        assert_eq!(x.rows(), labels.len(), "label count must match batch size");
        let n = x.rows();
        if n == 0 {
            return FitReport {
                initial_loss: 0.0,
                final_loss: 0.0,
                steps: 0,
            };
        }
        let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
        let anchor = cfg.prox_mu.map(|mu| (self.params_flat(), mu));
        let mut order: Vec<usize> = (0..n).collect();
        let mut first = f32::NAN;
        let mut last = 0.0;
        let mut steps = 0;
        for epoch in 0..cfg.epochs {
            shiftex_tensor::rngx::shuffle(rng, &mut order);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let bx = x.select_rows(chunk);
                let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let prox = anchor.as_ref().map(|(p, mu)| (p.as_slice(), *mu));
                epoch_loss += self.train_batch(&bx, &by, &mut opt, prox);
                batches += 1;
                steps += 1;
            }
            let mean = epoch_loss / batches.max(1) as f32;
            if epoch == 0 {
                first = mean;
            }
            last = mean;
        }
        FitReport {
            initial_loss: first,
            final_loss: last,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two well-separated *pattern* blobs (class 0 = +,-,+,-; class 1 =
    /// -,+,-,+) — separable even under the input InstanceNorm, which removes
    /// constant offsets.
    fn blobs(n: usize, rng: &mut StdRng) -> (Matrix, Vec<usize>) {
        let mut labels = Vec::with_capacity(n);
        let x = Matrix::from_fn(n, 4, |i, j| {
            let class = i % 2;
            if j == 0 {
                labels.push(class);
            }
            let sign = if (j % 2 == 0) == (class == 0) {
                2.0
            } else {
                -2.0
            };
            sign + shiftex_tensor::rngx::normal(rng, 0.0, 0.5)
        });
        (x, labels)
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = ArchSpec::mlp("t", 6, &[8, 4], 3);
        let mut model = Sequential::build(&spec, &mut rng);
        let p = model.params_flat();
        assert_eq!(p.len(), model.num_params());
        model.set_params_flat(&p);
        assert_eq!(model.params_flat(), p);
    }

    #[test]
    fn embed_dim_matches_spec() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = ArchSpec::mlp("t", 6, &[8, 4], 3);
        let model = Sequential::build(&spec, &mut rng);
        let x = Matrix::zeros(2, 6);
        assert_eq!(model.embed(&x).cols(), 4);
        assert_eq!(model.embed_dim(), 4);
    }

    #[test]
    fn training_fits_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let (x, y) = blobs(64, &mut rng);
        let spec = ArchSpec::mlp("blobs", 4, &[8], 2);
        let mut model = Sequential::build(&spec, &mut rng);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 0.1,
            ..TrainConfig::default()
        };
        let report = model.train(&x, &y, &cfg, &mut rng);
        assert!(report.final_loss < report.initial_loss);
        let eval = model.evaluate(&x, &y);
        assert!(eval.accuracy > 0.95, "accuracy {}", eval.accuracy);
    }

    #[test]
    fn fedprox_term_pulls_towards_anchor() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = blobs(32, &mut rng);
        let spec = ArchSpec::mlp("blobs", 4, &[4], 2);
        let base = Sequential::build(&spec, &mut rng);
        let anchor = base.params_flat();

        let run = |mu: Option<f32>, rng: &mut StdRng| {
            let mut m = base.clone();
            let cfg = TrainConfig {
                epochs: 10,
                batch_size: 8,
                lr: 0.1,
                prox_mu: mu,
                ..TrainConfig::default()
            };
            m.train(&x, &y, &cfg, rng);
            crate::average::param_l2_distance(&m.params_flat(), &anchor)
        };
        let free = run(None, &mut rng);
        let proxed = run(Some(10.0), &mut rng);
        assert!(
            proxed < free,
            "prox run should stay closer to anchor: {proxed} vs {free}"
        );
    }

    #[test]
    fn conv_model_trains() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = ArchSpec::lenet5_lite(InputShape { c: 1, h: 8, w: 8 }, 2, 16);
        let mut model = Sequential::build(&spec, &mut rng);
        // Class 0: bright left half. Class 1: bright right half.
        let n = 32;
        let mut labels = Vec::new();
        let x = Matrix::from_fn(n, 64, |i, j| {
            let class = i % 2;
            if j == 0 {
                labels.push(class);
            }
            let col = j % 8;
            let bright = if class == 0 { col < 4 } else { col >= 4 };
            if bright {
                1.0 + shiftex_tensor::rngx::normal(&mut rng, 0.0, 0.1)
            } else {
                shiftex_tensor::rngx::normal(&mut rng, 0.0, 0.1)
            }
        });
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 8,
            lr: 0.05,
            ..TrainConfig::default()
        };
        model.train(&x, &labels, &cfg, &mut rng);
        let eval = model.evaluate(&x, &labels);
        assert!(eval.accuracy > 0.9, "conv accuracy {}", eval.accuracy);
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = ArchSpec::mlp("t", 3, &[4], 2);
        let model = Sequential::build(&spec, &mut rng);
        let report = model.evaluate(&Matrix::zeros(0, 3), &[]);
        assert_eq!(report.n, 0);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let spec = ArchSpec::mlp("t", 5, &[7], 3);
        let a = Sequential::build(&spec, &mut StdRng::seed_from_u64(9));
        let b = Sequential::build(&spec, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.params_flat(), b.params_flat());
    }
}
