//! Stochastic gradient descent with momentum and weight decay.

use serde::{Deserialize, Serialize};

/// SGD optimizer state.
///
/// Operates on flattened parameter vectors (see
/// [`crate::Sequential::params_flat`]); velocity state is allocated lazily on
/// the first step so a fresh `Sgd` can be created per local-training call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`; `0` disables momentum.
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    /// Global-norm gradient clip; gradients with larger L2 norm are scaled
    /// down to this value. Keeps local training stable when covariate
    /// shifts inflate input magnitudes.
    pub clip_norm: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Default gradient clip (global L2 norm).
    pub const DEFAULT_CLIP: f32 = 5.0;

    /// Creates an optimizer with the default gradient clip.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `momentum ∉ [0,1)` or `weight_decay < 0`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self {
            lr,
            momentum,
            weight_decay,
            clip_norm: Self::DEFAULT_CLIP,
            velocity: Vec::new(),
        }
    }

    /// Applies one update: clip `g` to `clip_norm`, then
    /// `v = m·v + g + wd·w; w -= lr·v`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "gradient length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        let norm = grads
            .iter()
            .map(|g| (*g as f64) * (*g as f64))
            .sum::<f64>()
            .sqrt() as f32;
        let scale = if norm > self.clip_norm && norm > 0.0 {
            self.clip_norm / norm
        } else {
            1.0
        };
        for ((w, &g), v) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.velocity.iter_mut())
        {
            let g = g * scale + self.weight_decay * *w;
            *v = self.momentum * *v + g;
            *w -= self.lr * *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_descends_quadratic() {
        // Minimise f(w) = w² with gradient 2w.
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut w = [10.0f32];
        for _ in 0..100 {
            let g = [2.0 * w[0]];
            opt.step(&mut w, &g);
        }
        assert!(w[0].abs() < 1e-3, "w = {}", w[0]);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut opt = Sgd::new(0.01, momentum, 0.0);
            let mut w = [10.0f32];
            for _ in 0..50 {
                let g = [2.0 * w[0]];
                opt.step(&mut w, &g);
            }
            w[0].abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        let mut w = [1.0f32];
        opt.step(&mut w, &[0.0]);
        assert!(w[0] < 1.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0, 0.0, 0.0);
    }
}
