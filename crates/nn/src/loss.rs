//! Loss functions.

use shiftex_tensor::{vector, Matrix};

/// Softmax cross-entropy with integer class labels.
///
/// Returns `(mean_loss, grad_logits)` where `grad_logits` is the gradient of
/// the mean loss with respect to the raw logits — i.e. `(softmax - onehot)/N`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(
        logits.rows(),
        labels.len(),
        "label count must match batch size"
    );
    let n = logits.rows().max(1);
    let classes = logits.cols();
    let mut grad = Matrix::zeros(logits.rows(), classes);
    let mut total_loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let probs = vector::softmax(logits.row(r));
        total_loss += -(probs[label].max(1e-12)).ln();
        let grad_row = grad.row_mut(r);
        for (j, &p) in probs.iter().enumerate() {
            grad_row[j] = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (total_loss / n as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k_loss() {
        let logits = Matrix::zeros(2, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_matches_central_difference() {
        let base = Matrix::from_rows(&[&[0.3, -0.2, 0.5], &[-1.0, 0.4, 0.1]]);
        let labels = [2usize, 1];
        let (_, grad) = softmax_cross_entropy(&base, &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = base.clone();
                plus.set(r, c, base.get(r, c) + eps);
                let mut minus = base.clone();
                minus.set(r, c, base.get(r, c) - eps);
                let (lp, _) = softmax_cross_entropy(&plus, &labels);
                let (lm, _) = softmax_cross_entropy(&minus, &labels);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad.get(r, c)).abs() < 1e-3,
                    "grad mismatch at ({r},{c}): {numeric} vs {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let s: f32 = grad.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_label() {
        let logits = Matrix::zeros(1, 2);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }
}
