//! From-scratch neural-network library for the ShiftEx reproduction.
//!
//! The paper trains LeNet-5 / ResNet-18 / ResNet-50 / DenseNet-121 and
//! extracts **penultimate-layer embeddings** for covariate-shift detection.
//! This crate provides the same *interface* with compact architectures that
//! train on a CPU in seconds (see `DESIGN.md` §3 for the substitution
//! rationale): dense and convolutional layers, ReLU/Tanh activations, max
//! pooling, softmax cross-entropy, SGD with momentum and weight decay, an
//! optional FedProx proximal term, flattened-parameter access for federated
//! averaging, and embedding extraction from the pre-logit layer.
//!
//! # Example
//!
//! ```
//! use shiftex_nn::{ArchSpec, Sequential, TrainConfig};
//! use shiftex_tensor::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let spec = ArchSpec::mlp("demo", 4, &[8], 3);
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Sequential::build(&spec, &mut rng);
//! let x = Matrix::randn(16, 4, 0.0, 1.0, &mut rng);
//! let y: Vec<usize> = (0..16).map(|i| i % 3).collect();
//! let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
//! let report = model.train(&x, &y, &cfg, &mut rng);
//! assert!(report.final_loss.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod average;
mod layer;
mod loss;
mod model;
mod optim;
mod trainer;

pub use arch::{ArchName, ArchSpec, InputShape, LayerSpec};
pub use average::{cosine_params, fedavg, param_l2_distance, weighted_merge};
pub use layer::{Layer, LayerCache};
pub use loss::softmax_cross_entropy;
pub use model::{EvalReport, Sequential};
pub use optim::Sgd;
pub use trainer::{train_local_params, LocalFitReport, TrainConfig};
