//! Local-training entry point used by the federated runtime.
//!
//! A party receives global parameters, trains on its private window data and
//! returns updated parameters — this module packages that step so the FL
//! crate never touches layer internals.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shiftex_tensor::Matrix;

use crate::arch::ArchSpec;
use crate::model::Sequential;

/// Hyper-parameters for one local training call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the local data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// FedProx proximal coefficient μ; `None` gives plain FedAvg local SGD.
    pub prox_mu: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 2,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            prox_mu: None,
        }
    }
}

/// Result of [`train_local_params`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalFitReport {
    /// Updated flattened parameters.
    pub params: Vec<f32>,
    /// Mean training loss of the final epoch.
    pub final_loss: f32,
    /// Number of training samples used.
    pub num_samples: usize,
}

/// Trains a model that starts from `global_params` on `(x, labels)` and
/// returns the updated flat parameters.
///
/// This is the party-side work of one federated round. The model is
/// reconstructed from `spec` each call, which keeps the federated runtime
/// stateless with respect to layer internals.
///
/// # Panics
///
/// Panics if `global_params` does not match the architecture's parameter
/// count, or labels mismatch `x`.
pub fn train_local_params(
    spec: &ArchSpec,
    global_params: &[f32],
    x: &Matrix,
    labels: &[usize],
    cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> LocalFitReport {
    let mut model = Sequential::build(spec, rng);
    model.set_params_flat(global_params);
    let report = model.train(x, labels, cfg, rng);
    LocalFitReport {
        params: model.params_flat(),
        final_loss: report.final_loss,
        num_samples: x.rows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn local_training_improves_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = ArchSpec::mlp("t", 4, &[8], 2);
        let init = Sequential::build(&spec, &mut rng).params_flat();
        let mut labels = Vec::new();
        let x = Matrix::from_fn(40, 4, |i, j| {
            let c = i % 2;
            if j == 0 {
                labels.push(c);
            }
            // Alternating sign pattern per class (InstanceNorm-safe).
            if (j % 2 == 0) == (c == 0) {
                1.5
            } else {
                -1.5
            }
        });
        let cfg = TrainConfig {
            epochs: 20,
            lr: 0.1,
            ..TrainConfig::default()
        };
        let fit = train_local_params(&spec, &init, &x, &labels, &cfg, &mut rng);
        assert_eq!(fit.num_samples, 40);

        let mut trained = Sequential::build(&spec, &mut rng);
        trained.set_params_flat(&fit.params);
        let mut fresh = Sequential::build(&spec, &mut rng);
        fresh.set_params_flat(&init);
        assert!(trained.evaluate(&x, &labels).loss < fresh.evaluate(&x, &labels).loss);
    }

    #[test]
    fn zero_epochs_returns_global_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = ArchSpec::mlp("t", 4, &[4], 2);
        let init = Sequential::build(&spec, &mut rng).params_flat();
        let x = Matrix::zeros(4, 4);
        let cfg = TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        };
        let fit = train_local_params(&spec, &init, &x, &[0, 1, 0, 1], &cfg, &mut rng);
        assert_eq!(fit.params, init);
    }
}
